//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the API this workspace's property tests use:
//! [`strategy::Strategy`] with `prop_map` / `prop_recursive` / `boxed`,
//! [`strategy::Just`], tuple strategies, [`collection::vec`], the
//! [`prop_oneof!`], [`proptest!`], [`prop_assert!`], [`prop_assert_eq!`]
//! and [`prop_assert_ne!`] macros, and
//! [`test_runner::ProptestConfig::with_cases`].
//!
//! Differences from real proptest: generation only — failing cases are
//! reported with their `Debug`/`Display` rendering but are **not shrunk**
//! — and the per-test RNG is seeded deterministically from the test name,
//! so runs are reproducible.

pub mod collection;
pub mod strategy;
pub mod test_runner;

// Re-exported so the `proptest!` expansion can name the RNG through
// `$crate` without requiring `rand` at the call site.
#[doc(hidden)]
pub use rand;

pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
    // Real proptest's prelude aliases the crate as `prop` so tests can
    // say `prop::collection::vec(...)`.
    pub use crate as prop;
}

/// Deterministic per-test seed (FNV-1a over the test name).
pub fn seed_for(test_name: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in test_name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over `config.cases` generated
/// inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@funcs ($config) $($rest)*);
    };
    (@funcs ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            // A case count of 0 (e.g. `PROPTEST_CASES=0` to skip property
            // runs entirely) must not build strategies, seed the RNG, or
            // run a single generation pass.
            if config.cases == 0 {
                return;
            }
            let mut prop_rng =
                <$crate::rand::rngs::StdRng as $crate::rand::SeedableRng>::seed_from_u64(
                    $crate::seed_for(concat!(module_path!(), "::", stringify!($name))),
                );
            for prop_case_index in 0..config.cases {
                $(let $arg =
                    $crate::strategy::Strategy::generate(&($strategy), &mut prop_rng);)+
                // The immediately-called closure turns `prop_assert!`'s
                // early `return Err(..)` into a value without requiring
                // the test body to end in an expression.
                #[allow(clippy::redundant_closure_call)]
                let prop_result: ::std::result::Result<(), ::std::string::String> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(message) = prop_result {
                    panic!("case {}/{} failed: {}", prop_case_index + 1, config.cases, message);
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@funcs ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Fails the enclosing proptest case when the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Fails the enclosing proptest case when the two values differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (prop_lhs, prop_rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            prop_lhs == prop_rhs,
            "assertion failed: `{:?}` == `{:?}`", prop_lhs, prop_rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (prop_lhs, prop_rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            prop_lhs == prop_rhs,
            "{}: `{:?}` == `{:?}`", format!($($fmt)+), prop_lhs, prop_rhs
        );
    }};
}

/// Fails the enclosing proptest case when the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (prop_lhs, prop_rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            prop_lhs != prop_rhs,
            "assertion failed: `{:?}` != `{:?}`", prop_lhs, prop_rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (prop_lhs, prop_rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            prop_lhs != prop_rhs,
            "{}: `{:?}` != `{:?}`", format!($($fmt)+), prop_lhs, prop_rhs
        );
    }};
}

/// Uniform choice among strategies of the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small() -> impl Strategy<Value = u32> {
        prop_oneof![Just(1u32), Just(2u32), Just(3u32)]
    }

    #[derive(Clone, Debug)]
    enum Tree {
        Leaf(u32),
        Node(Box<Tree>, Box<Tree>),
    }

    impl Tree {
        fn size(&self) -> usize {
            match self {
                Tree::Leaf(_) => 1,
                Tree::Node(l, r) => 1 + l.size() + r.size(),
            }
        }

        fn leaf_max(&self) -> u32 {
            match self {
                Tree::Leaf(v) => *v,
                Tree::Node(l, r) => l.leaf_max().max(r.leaf_max()),
            }
        }
    }

    fn arb_tree() -> impl Strategy<Value = Tree> {
        small()
            .prop_map(Tree::Leaf)
            .prop_recursive(4, 16, 2, |inner| {
                (inner.clone(), inner).prop_map(|(l, r)| Tree::Node(Box::new(l), Box::new(r)))
            })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn leaves_in_range(x in small()) {
            prop_assert!((1..=3).contains(&x), "{x}");
        }

        #[test]
        fn tuples_and_maps(pair in (small(), small()).prop_map(|(a, b)| a + b)) {
            prop_assert!((2..=6).contains(&pair));
        }

        #[test]
        fn recursion_bounded(t in arb_tree()) {
            // Tower depth 4 with binary nodes: at most 2^5 - 1 nodes.
            prop_assert!(t.size() <= 31, "{t:?}");
            prop_assert!((1..=3).contains(&t.leaf_max()));
            prop_assert_eq!(t.size() % 2, 1);
            prop_assert_ne!(t.size(), 0, "size of {:?}", t);
        }

        #[test]
        fn three_tuples(v in (small(), small(), small()).prop_map(|(a, b, c)| a + b + c)) {
            prop_assert!((3..=9).contains(&v));
        }
    }

    #[test]
    fn determinism() {
        use crate::strategy::Strategy;
        use rand::SeedableRng;
        let strat = arb_tree();
        let mut a = rand::rngs::StdRng::seed_from_u64(1);
        let mut b = rand::rngs::StdRng::seed_from_u64(1);
        for _ in 0..32 {
            assert_eq!(
                format!("{:?}", strat.generate(&mut a)),
                format!("{:?}", strat.generate(&mut b))
            );
        }
    }

    #[test]
    fn zero_cases_runs_no_generation_pass() {
        // Regression: with a case count of 0 the body must never run —
        // not even once. The body panics, so a single pass would fail.
        proptest! {
            #![proptest_config(ProptestConfig { cases: 0 })]
            #[allow(unused)]
            fn inner(x in Just(1u32)) {
                panic!("a zero-case property must not generate inputs");
            }
        }
        inner();
    }

    #[test]
    #[should_panic(expected = "assertion failed")]
    fn failures_panic() {
        proptest! {
            #[allow(unused)]
            fn inner(x in Just(5u32)) {
                prop_assert!(x == 4);
            }
        }
        inner();
    }
}
