//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the API this workspace's property tests use:
//! [`strategy::Strategy`] with `prop_map` / `prop_recursive` / `boxed`,
//! [`strategy::Just`], tuple strategies, [`collection::vec`], the
//! [`prop_oneof!`], [`proptest!`], [`prop_assert!`], [`prop_assert_eq!`]
//! and [`prop_assert_ne!`] macros, and
//! [`test_runner::ProptestConfig::with_cases`].
//!
//! Like real proptest, generation produces **value trees**
//! ([`strategy::ValueTree`]): the value plus a lazy tower of shrink
//! candidates that remembers how the value was built. Integer ranges
//! halve toward their minimum, `collection::vec` drops and halves
//! elements, unions (including weighted `prop_oneof![w => s, …]`) fall
//! back to simpler alternatives before shrinking within the chosen one,
//! and `prop_map`ped strategies shrink their *source* and re-map — so
//! shrinking reaches through every combinator, `prop_recursive`
//! included. The per-test RNG is seeded deterministically from the test
//! name, so runs are reproducible.

pub mod collection;
pub mod strategy;
pub mod test_runner;

// Re-exported so the `proptest!` expansion can name the RNG through
// `$crate` without requiring `rand` at the call site.
#[doc(hidden)]
pub use rand;

pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union, ValueTree};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
    // Real proptest's prelude aliases the crate as `prop` so tests can
    // say `prop::collection::vec(...)`.
    pub use crate as prop;
}

/// Deterministic per-test seed (FNV-1a over the test name).
pub fn seed_for(test_name: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in test_name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The `proptest!` drive loop: generates `cases` inputs, runs `run` on a
/// clone of each, and on the first failure shrinks the input to a local
/// minimum (re-validated against `run` at every step) before panicking
/// with both the failure message and the minimal input.
pub fn run_cases<S: strategy::Strategy>(
    cases: u32,
    rng: &mut rand::rngs::StdRng,
    strategy: &S,
    mut run: impl FnMut(S::Value) -> Result<(), String>,
) where
    S::Value: std::fmt::Debug,
{
    for case_index in 0..cases {
        let tree = strategy.new_tree(rng);
        if let Err(message) = run(tree.value().clone()) {
            let (min, min_message, steps) = shrink_failure(tree, message, 1024, |candidate| {
                run(candidate.clone()).err()
            });
            panic!(
                "case {}/{} failed: {}\nminimal failing input after {} shrink steps: {:?}",
                case_index + 1,
                cases,
                min_message,
                steps,
                min,
            );
        }
    }
}

/// Greedily drives a failing value tree to a local minimum: repeatedly
/// adopts the first [`strategy::ValueTree::shrink`] candidate on which
/// `fails` still returns an error, until no candidate fails (or
/// `max_steps` accepted steps). By construction the returned value
/// **still fails** — its failure message is returned alongside — which
/// is the property the regression tests in this crate pin down.
pub fn shrink_failure<T: Clone + 'static>(
    mut tree: strategy::ValueTree<T>,
    mut message: String,
    max_steps: usize,
    mut fails: impl FnMut(&T) -> Option<String>,
) -> (T, String, usize) {
    let mut steps = 0;
    'progress: while steps < max_steps {
        for candidate in tree.shrink() {
            if let Some(new_message) = fails(candidate.value()) {
                tree = candidate;
                message = new_message;
                steps += 1;
                continue 'progress;
            }
        }
        break;
    }
    (tree.into_value(), message, steps)
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over `config.cases` generated
/// inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@funcs ($config) $($rest)*);
    };
    (@funcs ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            // A case count of 0 (e.g. `PROPTEST_CASES=0` to skip property
            // runs entirely) must not build strategies, seed the RNG, or
            // run a single generation pass.
            if config.cases == 0 {
                return;
            }
            let mut prop_rng =
                <$crate::rand::rngs::StdRng as $crate::rand::SeedableRng>::seed_from_u64(
                    $crate::seed_for(concat!(module_path!(), "::", stringify!($name))),
                );
            // All argument strategies fuse into one tuple strategy, so a
            // failing input can be re-run as a whole during shrinking.
            // Generation order (hence the value stream per seed) is
            // unchanged from the per-argument version. `prop_assert!`'s
            // early `return Err(..)` needs the closure boundary; the same
            // closure re-runs shrink candidates inside `run_cases`.
            let prop_strategy = ($(($strategy),)+);
            $crate::run_cases(config.cases, &mut prop_rng, &prop_strategy, |prop_input| {
                let ($($arg,)+) = prop_input;
                $body
                ::std::result::Result::Ok(())
            });
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@funcs ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Fails the enclosing proptest case when the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Fails the enclosing proptest case when the two values differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (prop_lhs, prop_rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            prop_lhs == prop_rhs,
            "assertion failed: `{:?}` == `{:?}`", prop_lhs, prop_rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (prop_lhs, prop_rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            prop_lhs == prop_rhs,
            "{}: `{:?}` == `{:?}`", format!($($fmt)+), prop_lhs, prop_rhs
        );
    }};
}

/// Fails the enclosing proptest case when the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (prop_lhs, prop_rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            prop_lhs != prop_rhs,
            "assertion failed: `{:?}` != `{:?}`", prop_lhs, prop_rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (prop_lhs, prop_rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            prop_lhs != prop_rhs,
            "{}: `{:?}` != `{:?}`", format!($($fmt)+), prop_lhs, prop_rhs
        );
    }};
}

/// Choice among strategies of the same value type: uniform
/// (`prop_oneof![a, b]`) or weighted (`prop_oneof![3 => a, 1 => b]`,
/// real proptest's weighted-union syntax).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $(($weight, $crate::strategy::Strategy::boxed($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small() -> impl Strategy<Value = u32> {
        prop_oneof![Just(1u32), Just(2u32), Just(3u32)]
    }

    #[derive(Clone, Debug)]
    enum Tree {
        Leaf(u32),
        Node(Box<Tree>, Box<Tree>),
    }

    impl Tree {
        fn size(&self) -> usize {
            match self {
                Tree::Leaf(_) => 1,
                Tree::Node(l, r) => 1 + l.size() + r.size(),
            }
        }

        fn leaf_max(&self) -> u32 {
            match self {
                Tree::Leaf(v) => *v,
                Tree::Node(l, r) => l.leaf_max().max(r.leaf_max()),
            }
        }
    }

    fn arb_tree() -> impl Strategy<Value = Tree> {
        small()
            .prop_map(Tree::Leaf)
            .prop_recursive(4, 16, 2, |inner| {
                (inner.clone(), inner).prop_map(|(l, r)| Tree::Node(Box::new(l), Box::new(r)))
            })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn leaves_in_range(x in small()) {
            prop_assert!((1..=3).contains(&x), "{x}");
        }

        #[test]
        fn tuples_and_maps(pair in (small(), small()).prop_map(|(a, b)| a + b)) {
            prop_assert!((2..=6).contains(&pair));
        }

        #[test]
        fn recursion_bounded(t in arb_tree()) {
            // Tower depth 4 with binary nodes: at most 2^5 - 1 nodes.
            prop_assert!(t.size() <= 31, "{t:?}");
            prop_assert!((1..=3).contains(&t.leaf_max()));
            prop_assert_eq!(t.size() % 2, 1);
            prop_assert_ne!(t.size(), 0, "size of {:?}", t);
        }

        #[test]
        fn three_tuples(v in (small(), small(), small()).prop_map(|(a, b, c)| a + b + c)) {
            prop_assert!((3..=9).contains(&v));
        }
    }

    #[test]
    fn determinism() {
        use crate::strategy::Strategy;
        use rand::SeedableRng;
        let strat = arb_tree();
        let mut a = rand::rngs::StdRng::seed_from_u64(1);
        let mut b = rand::rngs::StdRng::seed_from_u64(1);
        for _ in 0..32 {
            assert_eq!(
                format!("{:?}", strat.generate(&mut a)),
                format!("{:?}", strat.generate(&mut b))
            );
        }
    }

    #[test]
    fn zero_cases_runs_no_generation_pass() {
        // Regression: with a case count of 0 the body must never run —
        // not even once. The body panics, so a single pass would fail.
        proptest! {
            #![proptest_config(ProptestConfig { cases: 0 })]
            #[allow(unused)]
            fn inner(x in Just(1u32)) {
                panic!("a zero-case property must not generate inputs");
            }
        }
        inner();
    }

    #[test]
    #[should_panic(expected = "assertion failed")]
    fn failures_panic() {
        proptest! {
            #[allow(unused)]
            fn inner(x in Just(5u32)) {
                prop_assert!(x == 4);
            }
        }
        inner();
    }

    // ------------------------------------------------------- shrinking

    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Generates trees until one's value fails the predicate — the
    /// shrink tests need a failing starting point and, with value
    /// trees, a value can only be shrunk from the tree that built it.
    fn failing_tree<S: Strategy>(
        strategy: &S,
        seed: u64,
        fails: impl Fn(&S::Value) -> bool,
    ) -> ValueTree<S::Value> {
        let mut rng = StdRng::seed_from_u64(seed);
        loop {
            let tree = strategy.new_tree(&mut rng);
            if fails(tree.value()) {
                return tree;
            }
        }
    }

    /// The core shrinking guarantee: whatever `shrink_failure` returns
    /// still fails the predicate it was given.
    #[test]
    fn shrunk_integer_still_fails_and_is_minimal() {
        let strategy = 0..100_000u32;
        let fails = |v: &u32| (*v >= 37).then(|| format!("{v} too big"));
        let tree = failing_tree(&strategy, 17, |v| fails(v).is_some());
        let (min, message, steps) = crate::shrink_failure(tree, String::new(), 1024, fails);
        assert!(fails(&min).is_some(), "shrunk value no longer fails");
        assert_eq!(min, 37, "halving ladder must reach the boundary");
        assert!(message.contains("too big"));
        assert!(steps > 0 && steps < 64, "O(log n) steps, got {steps}");
    }

    #[test]
    fn shrunk_vec_still_fails_and_drops_noise() {
        let strategy = crate::collection::vec(0..100u32, 0..20);
        // Failure: the vector contains at least one element >= 50.
        let fails = |v: &Vec<u32>| {
            v.iter()
                .any(|&x| x >= 50)
                .then(|| "has a big element".to_owned())
        };
        let tree = failing_tree(&strategy, 23, |v| fails(v).is_some());
        let (min, _, _) = crate::shrink_failure(tree, String::new(), 1024, fails);
        assert!(fails(&min).is_some(), "shrunk vec no longer fails");
        // Element-drop removes everything below 50; element shrinking
        // halves the survivor down to the boundary.
        assert_eq!(min, vec![50]);
    }

    #[test]
    fn shrunk_union_value_still_fails() {
        let strategy = prop_oneof![3 => 0..1000u32, 1 => Just(999u32)];
        let fails = |v: &u32| (*v >= 37).then(|| "boom".to_owned());
        let tree = failing_tree(&strategy, 29, |v| fails(v).is_some());
        let (min, _, _) = crate::shrink_failure(tree, String::new(), 1024, fails);
        assert!(fails(&min).is_some(), "shrunk union value no longer fails");
        assert_eq!(min, 37, "the range alternative descends to the boundary");
    }

    /// The satellite the value-tree rework exists for: a `prop_map`'d
    /// *structure* shrinks by shrinking its source, so a recursive tree
    /// built entirely from maps, tuples, and unions collapses toward a
    /// minimal failing shape instead of being returned unshrunk.
    #[test]
    fn shrunk_recursive_structure_still_fails_and_gets_smaller() {
        let strategy = arb_tree();
        let fails = |t: &Tree| (t.leaf_max() == 3).then(|| "contains a 3".to_owned());
        let tree = failing_tree(&strategy, 31, |t| fails(t).is_some() && t.size() > 1);
        let start_size = tree.value().size();
        let (min, _, steps) = crate::shrink_failure(tree, String::new(), 4096, fails);
        assert!(fails(&min).is_some(), "shrunk tree no longer fails");
        assert!(steps > 0, "a compound failing tree must shrink at all");
        assert!(
            min.size() < start_size,
            "expected a smaller tree than the {start_size}-node start, got {min:?}"
        );
    }

    #[test]
    fn shrinking_respects_the_step_budget() {
        let strategy = 0..u32::MAX;
        let fails = |v: &u32| (*v > 0).then(String::new);
        let tree = failing_tree(&strategy, 37, |v| *v > 0);
        let (_, _, steps) = crate::shrink_failure(tree, String::new(), 2, fails);
        assert_eq!(steps, 2);
    }

    #[test]
    #[should_panic(expected = "minimal failing input")]
    fn macro_reports_the_shrunk_input() {
        proptest! {
            #[allow(unused)]
            fn inner(x in 0..10_000u32) {
                prop_assert!(x < 5, "{x} not below 5");
            }
        }
        inner();
    }
}
