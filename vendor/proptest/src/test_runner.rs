//! Test-runner configuration (the only part of proptest's runner this
//! stand-in needs: the case count).

/// Configuration for a `proptest!` block.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated inputs per property.
    pub cases: u32,
}

fn env_cases() -> Option<u32> {
    std::env::var("PROPTEST_CASES").ok()?.parse().ok()
}

impl ProptestConfig {
    /// Requests `cases` inputs per property. Unlike real proptest, a
    /// `PROPTEST_CASES` environment variable *caps* even explicit
    /// requests, so CI can shorten property runs without patching each
    /// test file.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig {
            cases: match env_cases() {
                Some(cap) => cases.min(cap),
                None => cases,
            },
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        // Real proptest also defaults to 256.
        ProptestConfig {
            cases: env_cases().unwrap_or(256),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::ProptestConfig;

    #[test]
    fn with_cases_uses_request_without_env() {
        // Serialized with the other env test by cargo's default
        // single-binary test threading only if run single-threaded, so
        // avoid mutating the env here: just check the no-env behavior
        // when the variable is absent in the test environment.
        if std::env::var("PROPTEST_CASES").is_err() {
            assert_eq!(ProptestConfig::with_cases(123).cases, 123);
            assert_eq!(ProptestConfig::default().cases, 256);
        }
    }
}
