//! Test-runner configuration (the only part of proptest's runner this
//! stand-in needs: the case count).

/// Configuration for a `proptest!` block.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated inputs per property.
    pub cases: u32,
}

fn env_cases() -> Option<u32> {
    parse_cases(&std::env::var("PROPTEST_CASES").ok()?)
}

/// Parses a `PROPTEST_CASES` value. Tolerates surrounding whitespace;
/// `Some(0)` is a valid result meaning "run no property cases at all".
fn parse_cases(raw: &str) -> Option<u32> {
    raw.trim().parse().ok()
}

impl ProptestConfig {
    /// Requests `cases` inputs per property. Unlike real proptest, a
    /// `PROPTEST_CASES` environment variable *caps* even explicit
    /// requests, so CI can shorten property runs without patching each
    /// test file.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig {
            cases: match env_cases() {
                Some(cap) => cases.min(cap),
                None => cases,
            },
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        // Real proptest also defaults to 256.
        ProptestConfig {
            cases: env_cases().unwrap_or(256),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::{parse_cases, ProptestConfig};

    #[test]
    fn with_cases_uses_request_without_env() {
        // Serialized with the other env test by cargo's default
        // single-binary test threading only if run single-threaded, so
        // avoid mutating the env here: just check the no-env behavior
        // when the variable is absent in the test environment.
        if std::env::var("PROPTEST_CASES").is_err() {
            assert_eq!(ProptestConfig::with_cases(123).cases, 123);
            assert_eq!(ProptestConfig::default().cases, 256);
        }
    }

    #[test]
    fn parse_cases_accepts_zero_and_trims() {
        // Regression: `PROPTEST_CASES=0` must parse to Some(0) — a real
        // cap meaning "skip" — not fall through to the default, and
        // sloppy values like " 8 " must not be silently ignored.
        assert_eq!(parse_cases("0"), Some(0));
        assert_eq!(parse_cases(" 8 "), Some(8));
        assert_eq!(parse_cases("256"), Some(256));
        assert_eq!(parse_cases("nope"), None);
        assert_eq!(parse_cases("-1"), None);
    }

    #[test]
    fn explicit_zero_caps_any_request() {
        let cfg = ProptestConfig { cases: 0 };
        assert_eq!(cfg.cases, 0);
    }
}
