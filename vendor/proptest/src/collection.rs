//! Collection strategies: `vec(element, size_range)` with real
//! proptest's call shape.

use crate::strategy::{Strategy, ValueTree};
use rand::rngs::StdRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// The element-count specification accepted by [`vec()`] — a subset of
/// real proptest's `SizeRange` conversions.
#[derive(Clone, Debug)]
pub struct SizeRange {
    min: usize,
    /// Inclusive upper bound.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// A strategy producing `Vec`s of `element`-generated values with a
/// length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// The result of [`vec()`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_tree(&self, rng: &mut StdRng) -> ValueTree<Self::Value> {
        let len = rng.gen_range(self.size.min..=self.size.max);
        let elements = (0..len).map(|_| self.element.new_tree(rng)).collect();
        vec_tree(elements, self.size.min)
    }
}

/// A tree over a vector of element trees. Shrinks in three passes, most
/// aggressive first: halve the length (front half, then back half),
/// drop one element at a time, then shrink elements in place via their
/// own trees. The length never goes below the configured minimum.
fn vec_tree<T: Clone + 'static>(elements: Vec<ValueTree<T>>, min: usize) -> ValueTree<Vec<T>> {
    let value: Vec<T> = elements.iter().map(|t| t.value().clone()).collect();
    ValueTree::with_children(value, move || {
        let mut out = Vec::new();
        let half = (elements.len() / 2).max(min);
        if half < elements.len() {
            out.push(vec_tree(elements[..half].to_vec(), min));
            out.push(vec_tree(elements[elements.len() - half..].to_vec(), min));
        }
        if elements.len() > min {
            for drop_ix in 0..elements.len() {
                let mut shorter = elements.clone();
                shorter.remove(drop_ix);
                out.push(vec_tree(shorter, min));
            }
        }
        for (ix, element) in elements.iter().enumerate() {
            for candidate in element.shrink().into_iter().take(3) {
                let mut patched = elements.clone();
                patched[ix] = candidate;
                out.push(vec_tree(patched, min));
            }
        }
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn lengths_respect_the_range(v in vec(Just(7u8), 2..5)) {
            prop_assert!((2..=4).contains(&v.len()), "{v:?}");
            prop_assert!(v.iter().all(|&x| x == 7));
        }

        #[test]
        fn inclusive_and_exact_sizes(v in vec(Just(1u8), 3), w in vec(Just(2u8), 1..=2)) {
            prop_assert_eq!(v.len(), 3);
            prop_assert!((1..=2).contains(&w.len()));
        }
    }
}
