//! Strategies: each strategy is a recipe for producing values from an
//! RNG, plus a *shrinker* proposing smaller variants of a failing value.
//!
//! Unlike real proptest there are no value trees: shrinking is a
//! standalone pass over the final value ([`Strategy::shrink`]), driven to
//! a fixpoint by [`crate::shrink_failure`]. Strategies that cannot invert
//! their construction (notably [`Map`]) simply propose nothing.

use rand::rngs::StdRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A recipe for generating values of type [`Strategy::Value`].
pub trait Strategy {
    type Value;

    /// Produces one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Proposes *smaller* candidate values derived from `value`, most
    /// aggressive first. Candidates need not satisfy any property — the
    /// shrink driver re-validates each against the failing test. The
    /// default proposes nothing (no shrinking).
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }

    /// Applies `map` to every generated value. Mapped strategies do not
    /// shrink (the construction cannot be inverted without value trees).
    fn prop_map<O, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, map }
    }

    /// Builds recursive values: `recurse` receives a strategy for smaller
    /// values and returns a strategy for one-level-larger ones. `depth`
    /// bounds the nesting; `desired_size` and `expected_branch_size` are
    /// accepted for proptest compatibility but unused (depth alone bounds
    /// the output here, as there is no size-driven generation).
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut tower = leaf.clone();
        for _ in 0..depth {
            // Mix the leaf back in at every level so expected output size
            // stays bounded well below the worst-case full tree.
            tower = Union::new(vec![leaf.clone(), recurse(tower).boxed()]).boxed();
        }
        tower
    }

    /// Erases the strategy type. The result is cheaply cloneable and
    /// keeps the underlying shrinker.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        let strategy = Rc::new(self);
        let gen_strategy = Rc::clone(&strategy);
        BoxedStrategy {
            generate: Rc::new(move |rng| gen_strategy.generate(rng)),
            shrink: Rc::new(move |v| strategy.shrink(v)),
        }
    }
}

/// A type-erased, cheaply cloneable strategy.
pub struct BoxedStrategy<T> {
    #[allow(clippy::type_complexity)]
    generate: Rc<dyn Fn(&mut StdRng) -> T>,
    #[allow(clippy::type_complexity)]
    shrink: Rc<dyn Fn(&T) -> Vec<T>>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            generate: Rc::clone(&self.generate),
            shrink: Rc::clone(&self.shrink),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        (self.generate)(rng)
    }

    fn shrink(&self, value: &T) -> Vec<T> {
        (self.shrink)(value)
    }
}

/// Always yields a clone of the given value. Already minimal — never
/// shrinks.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    base: S,
    map: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.map)(self.base.generate(rng))
    }
}

/// Choice among strategies of the same value type; built by
/// [`crate::prop_oneof!`], uniformly or weighted (`weight => strategy`).
pub struct Union<T> {
    options: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u64,
}

impl<T> Union<T> {
    /// Uniform choice (every option has weight 1).
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        Union::new_weighted(options.into_iter().map(|s| (1, s)).collect())
    }

    /// Weighted choice: an option with weight `2w` is generated twice as
    /// often as one with weight `w`. Weights must not all be zero.
    pub fn new_weighted(options: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        let total_weight: u64 = options.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total_weight > 0, "prop_oneof! weights must not all be zero");
        Union {
            options,
            total_weight,
        }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            options: self.options.clone(),
            total_weight: self.total_weight,
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        let mut roll = rng.gen_range(0..self.total_weight);
        for (weight, option) in &self.options {
            let weight = u64::from(*weight);
            if roll < weight {
                return option.generate(rng);
            }
            roll -= weight;
        }
        unreachable!("roll bounded by the weight total")
    }

    /// A union cannot know which alternative produced `value`, so it
    /// pools every alternative's proposals; the shrink driver discards
    /// the ones that don't reproduce the failure.
    fn shrink(&self, value: &T) -> Vec<T> {
        self.options
            .iter()
            .flat_map(|(_, option)| option.shrink(value))
            .collect()
    }
}

// ------------------------------------------------------------- integers

/// Halving shrink for an integer generated from `low..`: the minimum
/// first (biggest jump), then the midpoint, then the predecessor — the
/// classic bisection ladder, which converges to the smallest failing
/// value in O(log n) accepted steps.
macro_rules! impl_int_range_strategy {
    ($($t:ty),+ $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                int_ladder!($t, self.start, *value)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                int_ladder!($t, *self.start(), *value)
            }
        }
    )+};
}

/// The candidates `low`, `low + (v-low)/2`, `v - 1` (deduplicated,
/// strictly below `v`). The ladder is monotone, so `dedup` suffices.
macro_rules! int_ladder {
    ($t:ty, $low:expr, $value:expr) => {{
        let (low, v): ($t, $t) = ($low, $value);
        if v <= low {
            Vec::new()
        } else {
            // `v - low` can overflow a signed type spanning both ends of
            // its domain; fall back to the minimum alone in that case.
            let mid = match v.checked_sub(low) {
                Some(d) => low + d / 2,
                None => low,
            };
            let mut out = vec![low, mid, v - 1];
            out.dedup();
            out.retain(|c| *c < v);
            out
        }
    }};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// --------------------------------------------------------------- tuples

impl<A: Strategy> Strategy for (A,) {
    type Value = (A::Value,);

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (self.0.generate(rng),)
    }

    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        self.0.shrink(&value.0).into_iter().map(|a| (a,)).collect()
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B)
where
    A::Value: Clone,
    B::Value: Clone,
{
    type Value = (A::Value, B::Value);

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }

    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        let mut out: Vec<Self::Value> = self
            .0
            .shrink(&value.0)
            .into_iter()
            .map(|a| (a, value.1.clone()))
            .collect();
        out.extend(
            self.1
                .shrink(&value.1)
                .into_iter()
                .map(|b| (value.0.clone(), b)),
        );
        out
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C)
where
    A::Value: Clone,
    B::Value: Clone,
    C::Value: Clone,
{
    type Value = (A::Value, B::Value, C::Value);

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }

    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        let (a, b, c) = value;
        let mut out: Vec<Self::Value> = self
            .0
            .shrink(a)
            .into_iter()
            .map(|x| (x, b.clone(), c.clone()))
            .collect();
        out.extend(
            self.1
                .shrink(b)
                .into_iter()
                .map(|x| (a.clone(), x, c.clone())),
        );
        out.extend(
            self.2
                .shrink(c)
                .into_iter()
                .map(|x| (a.clone(), b.clone(), x)),
        );
        out
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D)
where
    A::Value: Clone,
    B::Value: Clone,
    C::Value: Clone,
    D::Value: Clone,
{
    type Value = (A::Value, B::Value, C::Value, D::Value);

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
            self.3.generate(rng),
        )
    }

    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        let (a, b, c, d) = value;
        let mut out: Vec<Self::Value> = self
            .0
            .shrink(a)
            .into_iter()
            .map(|x| (x, b.clone(), c.clone(), d.clone()))
            .collect();
        out.extend(
            self.1
                .shrink(b)
                .into_iter()
                .map(|x| (a.clone(), x, c.clone(), d.clone())),
        );
        out.extend(
            self.2
                .shrink(c)
                .into_iter()
                .map(|x| (a.clone(), b.clone(), x, d.clone())),
        );
        out.extend(
            self.3
                .shrink(d)
                .into_iter()
                .map(|x| (a.clone(), b.clone(), c.clone(), x)),
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn int_ranges_generate_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..200 {
            let v = (5..20u32).generate(&mut rng);
            assert!((5..20).contains(&v));
            let w = (-4..=4i64).generate(&mut rng);
            assert!((-4..=4).contains(&w));
        }
    }

    #[test]
    fn int_shrink_halves_toward_the_minimum() {
        let candidates = (0..1000u32).shrink(&800);
        assert_eq!(candidates, vec![0, 400, 799]);
        assert!((0..1000u32).shrink(&0).is_empty());
        let candidates = (-8..=8i32).shrink(&8);
        assert_eq!(candidates, vec![-8, 0, 7]);
    }

    #[test]
    fn weighted_union_respects_weights() {
        let u = Union::new_weighted(vec![(9, Just(1u8).boxed()), (1, Just(2u8).boxed())]);
        let mut rng = StdRng::seed_from_u64(11);
        let ones = (0..1000).filter(|_| u.generate(&mut rng) == 1).count();
        assert!(
            (750..1000).contains(&ones),
            "expected ~900 ones from a 9:1 weighting, got {ones}"
        );
    }

    #[test]
    fn union_shrink_pools_all_options() {
        let u = Union::new(vec![(0..100u32).boxed(), Just(7u32).boxed()]);
        let candidates = u.shrink(&50);
        assert_eq!(candidates, vec![0, 25, 49]); // Just contributes nothing
    }

    #[test]
    fn tuple_shrink_varies_one_component_at_a_time() {
        let s = ((0..10u32), (0..10u32));
        let candidates = s.shrink(&(4, 6));
        assert!(candidates.contains(&(0, 6)));
        assert!(candidates.contains(&(4, 0)));
        assert!(candidates.iter().all(|&(a, b)| a == 4 || b == 6));
    }
}
