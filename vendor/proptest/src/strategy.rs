//! Strategies: each strategy is a recipe for producing a *value tree* —
//! a generated value plus a lazy tower of shrink candidates that
//! remembers how the value was built.
//!
//! The tree is what lets [`Strategy::prop_map`] shrink: a mapped
//! strategy shrinks its **source** tree and re-applies the mapping to
//! every candidate, so shrunk values always stay in the map's image.
//! Unions remember which alternative produced the value and propose
//! simpler (lower-indexed) alternatives before shrinking within the
//! chosen one — which is how `prop_recursive` structures collapse
//! toward their leaves.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A generated value plus a lazy enumeration of shrink candidates,
/// most aggressive first. Candidates are themselves trees, so the
/// shrink driver can keep descending; nothing below the current node is
/// materialized until [`ValueTree::shrink`] is called.
pub struct ValueTree<T> {
    value: T,
    children: Rc<dyn Fn() -> Vec<ValueTree<T>>>,
}

/// A shared by-reference mapping function, as passed to
/// [`ValueTree::map`]. `Rc` so a single closure can be re-applied to
/// every lazily materialized shrink candidate.
pub type MapFn<T, O> = Rc<dyn Fn(&T) -> O>;

impl<T: Clone> Clone for ValueTree<T> {
    fn clone(&self) -> Self {
        ValueTree {
            value: self.value.clone(),
            children: Rc::clone(&self.children),
        }
    }
}

impl<T: Clone + 'static> ValueTree<T> {
    /// A tree with no shrink candidates (the value is already minimal).
    pub fn leaf(value: T) -> ValueTree<T> {
        ValueTree {
            value,
            children: Rc::new(Vec::new),
        }
    }

    /// A tree whose candidates are produced on demand by `children`.
    pub fn with_children(
        value: T,
        children: impl Fn() -> Vec<ValueTree<T>> + 'static,
    ) -> ValueTree<T> {
        ValueTree {
            value,
            children: Rc::new(children),
        }
    }

    pub fn value(&self) -> &T {
        &self.value
    }

    pub fn into_value(self) -> T {
        self.value
    }

    /// Materializes this node's shrink candidates, most aggressive
    /// first. Candidates need not satisfy any property — the shrink
    /// driver re-validates each against the failing test.
    pub fn shrink(&self) -> Vec<ValueTree<T>> {
        (self.children)()
    }

    /// Applies `map` to this tree's value and, lazily, to every shrink
    /// candidate below it — the mechanism behind `prop_map` shrinking.
    pub fn map<O: Clone + 'static>(&self, map: MapFn<T, O>) -> ValueTree<O> {
        let value = map(&self.value);
        let source = self.clone();
        ValueTree::with_children(value, move || {
            source
                .shrink()
                .iter()
                .map(|candidate| candidate.map(Rc::clone(&map)))
                .collect()
        })
    }
}

/// A recipe for generating values of type [`Strategy::Value`].
pub trait Strategy {
    type Value: Clone + 'static;

    /// Produces one value tree: the value plus its shrink tower.
    fn new_tree(&self, rng: &mut StdRng) -> ValueTree<Self::Value>;

    /// Produces one value, discarding the shrink tower.
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        self.new_tree(rng).into_value()
    }

    /// Applies `map` to every generated value. The mapped strategy
    /// shrinks by shrinking the *source* value and re-mapping, so
    /// shrunk values stay in the image of `map`.
    fn prop_map<O, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        O: Clone + 'static,
        F: Fn(Self::Value) -> O + 'static,
    {
        Map {
            base: self,
            map: Rc::new(map),
        }
    }

    /// Builds recursive values: `recurse` receives a strategy for smaller
    /// values and returns a strategy for one-level-larger ones. `depth`
    /// bounds the nesting; `desired_size` and `expected_branch_size` are
    /// accepted for proptest compatibility but unused (depth alone bounds
    /// the output here, as there is no size-driven generation).
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut tower = leaf.clone();
        for _ in 0..depth {
            // Mix the leaf back in at every level so expected output size
            // stays bounded well below the worst-case full tree — and so
            // every level's union can shrink a branch down to a leaf.
            tower = Union::new(vec![leaf.clone(), recurse(tower).boxed()]).boxed();
        }
        tower
    }

    /// Erases the strategy type. The result is cheaply cloneable and
    /// keeps the underlying shrink tower.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        let strategy = Rc::new(self);
        BoxedStrategy {
            new_tree: Rc::new(move |rng| strategy.new_tree(rng)),
        }
    }
}

/// A type-erased, cheaply cloneable strategy.
pub struct BoxedStrategy<T> {
    #[allow(clippy::type_complexity)]
    new_tree: Rc<dyn Fn(&mut StdRng) -> ValueTree<T>>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            new_tree: Rc::clone(&self.new_tree),
        }
    }
}

impl<T: Clone + 'static> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn new_tree(&self, rng: &mut StdRng) -> ValueTree<T> {
        (self.new_tree)(rng)
    }
}

/// Always yields a clone of the given value. Already minimal — never
/// shrinks.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone + 'static> Strategy for Just<T> {
    type Value = T;

    fn new_tree(&self, _rng: &mut StdRng) -> ValueTree<T> {
        ValueTree::leaf(self.0.clone())
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    map: Rc<F>,
}

impl<S: Clone, F> Clone for Map<S, F> {
    fn clone(&self) -> Self {
        Map {
            base: self.base.clone(),
            map: Rc::clone(&self.map),
        }
    }
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: Clone + 'static,
    F: Fn(S::Value) -> O + 'static,
{
    type Value = O;

    fn new_tree(&self, rng: &mut StdRng) -> ValueTree<O> {
        let map = Rc::clone(&self.map);
        let by_ref: MapFn<S::Value, O> = Rc::new(move |v| map(v.clone()));
        self.base.new_tree(rng).map(by_ref)
    }
}

/// Choice among strategies of the same value type; built by
/// [`crate::prop_oneof!`], uniformly or weighted (`weight => strategy`).
pub struct Union<T> {
    options: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u64,
}

impl<T> Union<T> {
    /// Uniform choice (every option has weight 1).
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        Union::new_weighted(options.into_iter().map(|s| (1, s)).collect())
    }

    /// Weighted choice: an option with weight `2w` is generated twice as
    /// often as one with weight `w`. Weights must not all be zero.
    pub fn new_weighted(options: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        let total_weight: u64 = options.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total_weight > 0, "prop_oneof! weights must not all be zero");
        Union {
            options,
            total_weight,
        }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            options: self.options.clone(),
            total_weight: self.total_weight,
        }
    }
}

impl<T: Clone + 'static> Strategy for Union<T> {
    type Value = T;

    /// Generates from one weighted alternative and *remembers* the
    /// choice: shrink candidates are values from simpler (lower-indexed)
    /// alternatives — generated lazily from a seed drawn now, so the
    /// happy path costs nothing — followed by the chosen alternative's
    /// own shrinks.
    fn new_tree(&self, rng: &mut StdRng) -> ValueTree<T> {
        let mut roll = rng.gen_range(0..self.total_weight);
        let mut chosen = self.options.len() - 1;
        for (index, (weight, _)) in self.options.iter().enumerate() {
            let weight = u64::from(*weight);
            if roll < weight {
                chosen = index;
                break;
            }
            roll -= weight;
        }
        let alternative_seed: u64 = rng.gen();
        let tree = self.options[chosen].1.new_tree(rng);
        if chosen == 0 {
            // The simplest alternative already — nothing to fall back to.
            return tree;
        }
        let alternatives: Vec<BoxedStrategy<T>> = self.options[..chosen]
            .iter()
            .map(|(_, option)| option.clone())
            .collect();
        let value = tree.value().clone();
        ValueTree::with_children(value, move || {
            let mut alt_rng = StdRng::seed_from_u64(alternative_seed);
            let mut out: Vec<ValueTree<T>> = alternatives
                .iter()
                .map(|option| option.new_tree(&mut alt_rng))
                .collect();
            out.extend(tree.shrink());
            out
        })
    }
}

// ------------------------------------------------------------- integers

/// Halving shrink for an integer generated from `low..`: the minimum
/// first (biggest jump), then the midpoint, then the predecessor — the
/// classic bisection ladder, which converges to the smallest failing
/// value in O(log n) accepted steps. Each candidate is a full tree, so
/// the ladder restarts from whichever candidate the driver adopts.
macro_rules! impl_int_range_strategy {
    ($($t:ty),+ $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_tree(&self, rng: &mut StdRng) -> ValueTree<$t> {
                int_tree!($t, self.start, rng.gen_range(self.clone()))
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn new_tree(&self, rng: &mut StdRng) -> ValueTree<$t> {
                int_tree!($t, *self.start(), rng.gen_range(self.clone()))
            }
        }
    )+};
}

/// A tree for integer `$value` whose candidates are the ladder `low`,
/// `low + (v-low)/2`, `v - 1` (deduplicated, strictly below `v`), each
/// again a ladder tree rooted at that candidate.
macro_rules! int_tree {
    ($t:ty, $low:expr, $value:expr) => {{
        fn tree(low: $t, v: $t) -> ValueTree<$t> {
            ValueTree::with_children(v, move || {
                if v <= low {
                    return Vec::new();
                }
                // `v - low` can overflow a signed type spanning both ends
                // of its domain; fall back to the minimum alone then.
                let mid = match v.checked_sub(low) {
                    Some(d) => low + d / 2,
                    None => low,
                };
                let mut ladder = vec![low, mid, v - 1];
                ladder.dedup();
                ladder.retain(|c| *c < v);
                ladder.into_iter().map(|c| tree(low, c)).collect()
            })
        }
        tree($low, $value)
    }};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// --------------------------------------------------------------- tuples

/// Joins two trees into a pair tree that shrinks one component at a
/// time, left first.
pub(crate) fn join2<A: Clone + 'static, B: Clone + 'static>(
    a: ValueTree<A>,
    b: ValueTree<B>,
) -> ValueTree<(A, B)> {
    let value = (a.value().clone(), b.value().clone());
    ValueTree::with_children(value, move || {
        let mut out: Vec<ValueTree<(A, B)>> = a
            .shrink()
            .into_iter()
            .map(|a2| join2(a2, b.clone()))
            .collect();
        out.extend(b.shrink().into_iter().map(|b2| join2(a.clone(), b2)));
        out
    })
}

impl<A: Strategy> Strategy for (A,) {
    type Value = (A::Value,);

    fn new_tree(&self, rng: &mut StdRng) -> ValueTree<Self::Value> {
        self.0
            .new_tree(rng)
            .map(Rc::new(|a: &A::Value| (a.clone(),)))
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn new_tree(&self, rng: &mut StdRng) -> ValueTree<Self::Value> {
        join2(self.0.new_tree(rng), self.1.new_tree(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn new_tree(&self, rng: &mut StdRng) -> ValueTree<Self::Value> {
        let ab = join2(self.0.new_tree(rng), self.1.new_tree(rng));
        join2(ab, self.2.new_tree(rng)).map(Rc::new(
            |((a, b), c): &((A::Value, B::Value), C::Value)| (a.clone(), b.clone(), c.clone()),
        ))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
    type Value = (A::Value, B::Value, C::Value, D::Value);

    fn new_tree(&self, rng: &mut StdRng) -> ValueTree<Self::Value> {
        let ab = join2(self.0.new_tree(rng), self.1.new_tree(rng));
        let cd = join2(self.2.new_tree(rng), self.3.new_tree(rng));
        join2(ab, cd).map(Rc::new(
            #[allow(clippy::type_complexity)]
            |((a, b), (c, d)): &((A::Value, B::Value), (C::Value, D::Value))| {
                (a.clone(), b.clone(), c.clone(), d.clone())
            },
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn int_ranges_generate_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..200 {
            let v = (5..20u32).generate(&mut rng);
            assert!((5..20).contains(&v));
            let w = (-4..=4i64).generate(&mut rng);
            assert!((-4..=4).contains(&w));
        }
    }

    #[test]
    fn int_trees_shrink_down_the_halving_ladder() {
        let tree = int_tree!(u32, 0, 800);
        let ladder: Vec<u32> = tree.shrink().iter().map(|t| *t.value()).collect();
        assert_eq!(ladder, vec![0, 400, 799]);
        assert!(int_tree!(u32, 0, 0).shrink().is_empty());
        let ladder: Vec<i32> = int_tree!(i32, -8, 8)
            .shrink()
            .iter()
            .map(|t| *t.value())
            .collect();
        assert_eq!(ladder, vec![-8, 0, 7]);
    }

    #[test]
    fn weighted_union_respects_weights() {
        let u = Union::new_weighted(vec![(9, Just(1u8).boxed()), (1, Just(2u8).boxed())]);
        let mut rng = StdRng::seed_from_u64(11);
        let ones = (0..1000).filter(|_| u.generate(&mut rng) == 1).count();
        assert!(
            (750..1000).contains(&ones),
            "expected ~900 ones from a 9:1 weighting, got {ones}"
        );
    }

    #[test]
    fn union_trees_fall_back_to_simpler_alternatives() {
        // Force the second alternative, then check its shrink candidates
        // lead with a value from the first.
        let u = Union::new_weighted(vec![(0, Just(7u32).boxed()), (1, (50..100u32).boxed())]);
        let mut rng = StdRng::seed_from_u64(5);
        let tree = u.new_tree(&mut rng);
        assert!((50..100).contains(tree.value()));
        let candidates: Vec<u32> = tree.shrink().iter().map(|t| *t.value()).collect();
        assert_eq!(candidates[0], 7, "simpler alternative proposed first");
        assert!(
            candidates[1..].iter().all(|c| *c < 100),
            "chosen alternative's own ladder follows"
        );
    }

    #[test]
    fn tuple_trees_vary_one_component_at_a_time() {
        let mut rng = StdRng::seed_from_u64(8);
        let tree = ((0..10u32), (0..10u32)).new_tree(&mut rng);
        let (a, b) = *tree.value();
        for candidate in tree.shrink() {
            let (ca, cb) = *candidate.value();
            assert!(ca == a || cb == b, "({ca},{cb}) changed both of ({a},{b})");
        }
    }

    #[test]
    fn mapped_trees_shrink_through_the_map() {
        // The whole point of value trees: a prop_map'd strategy shrinks
        // by shrinking its source, so candidates stay in the map's image.
        let strategy = (0..1000u32).prop_map(|n| n * 2 + 1);
        let mut rng = StdRng::seed_from_u64(13);
        let tree = loop {
            let t = strategy.new_tree(&mut rng);
            if *t.value() >= 101 {
                break t;
            }
        };
        let fails = |v: &u32| (*v >= 101).then(|| format!("{v} too big"));
        let (min, _, steps) = crate::shrink_failure(tree, String::new(), 1024, fails);
        assert_eq!(
            min, 101,
            "halving lifted through the map reaches the boundary"
        );
        assert!(steps > 0, "shrinking must actually run");
    }
}
