//! Generation-only strategies: each strategy is a recipe for producing
//! values from an RNG. No value trees, no shrinking.

use rand::rngs::StdRng;
use rand::Rng;
use std::rc::Rc;

/// A recipe for generating values of type [`Strategy::Value`].
pub trait Strategy {
    type Value;

    /// Produces one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Applies `map` to every generated value.
    fn prop_map<O, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, map }
    }

    /// Builds recursive values: `recurse` receives a strategy for smaller
    /// values and returns a strategy for one-level-larger ones. `depth`
    /// bounds the nesting; `desired_size` and `expected_branch_size` are
    /// accepted for proptest compatibility but unused (depth alone bounds
    /// the output here, as there is no size-driven generation).
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut tower = leaf.clone();
        for _ in 0..depth {
            // Mix the leaf back in at every level so expected output size
            // stays bounded well below the worst-case full tree.
            tower = Union::new(vec![leaf.clone(), recurse(tower).boxed()]).boxed();
        }
        tower
    }

    /// Erases the strategy type. The result is cheaply cloneable.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy {
            generate: Rc::new(move |rng| self.generate(rng)),
        }
    }
}

/// A type-erased, cheaply cloneable strategy.
pub struct BoxedStrategy<T> {
    #[allow(clippy::type_complexity)]
    generate: Rc<dyn Fn(&mut StdRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            generate: Rc::clone(&self.generate),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        (self.generate)(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    base: S,
    map: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.map)(self.base.generate(rng))
    }
}

/// Uniform choice among strategies; built by [`crate::prop_oneof!`].
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            options: self.options.clone(),
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        let index = rng.gen_range(0..self.options.len());
        self.options[index].generate(rng)
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
    type Value = (A::Value, B::Value, C::Value, D::Value);

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
            self.3.generate(rng),
        )
    }
}
