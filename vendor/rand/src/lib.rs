//! Offline stand-in for the `rand` crate.
//!
//! The container this workspace builds in has no access to the crates.io
//! registry, so the handful of `rand` APIs the workspace uses are
//! implemented here: [`Rng::gen_range`] over `Range`/`RangeInclusive`,
//! [`Rng::gen_bool`], and [`rngs::StdRng`] seeded via
//! [`SeedableRng::seed_from_u64`].
//!
//! The generator is xoshiro256** seeded through SplitMix64 — not the
//! ChaCha12 of the real `StdRng`, so streams differ from upstream `rand`,
//! but they are deterministic per seed, which is all the benchmark
//! generators require.

pub mod rngs {
    pub use crate::std_rng::StdRng;
}

mod std_rng {
    use crate::SeedableRng;

    /// Deterministic PRNG (xoshiro256**) with the `StdRng` interface.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        pub(crate) fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl crate::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            StdRng::next_u64(self)
        }
    }
}

/// Seeding interface; only `seed_from_u64` is provided.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// The raw-output layer of the generator, object-safe so `&mut dyn` works.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    fn sample(self, rng: &mut (impl RngCore + ?Sized)) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample(self, rng: &mut (impl RngCore + ?Sized)) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut (impl RngCore + ?Sized)) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range on empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return start + rng.next_u64() as $t;
                }
                start + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_sample_range_uint!(usize, u64, u32, u16, u8);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample(self, rng: &mut (impl RngCore + ?Sized)) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut (impl RngCore + ?Sized)) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range on empty range");
                let span = (end as i128 - start as i128) as u64;
                if span == u64::MAX {
                    return (start as i128 + rng.next_u64() as i128) as $t;
                }
                (start as i128 + (rng.next_u64() % (span + 1)) as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(i64, i32, i16, i8, isize);

/// Types [`Rng::gen`] can produce with a uniform distribution.
pub trait Standard: Sized {
    fn from_rng(rng: &mut (impl RngCore + ?Sized)) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn from_rng(rng: &mut (impl RngCore + ?Sized)) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn from_rng(rng: &mut (impl RngCore + ?Sized)) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn from_rng(rng: &mut (impl RngCore + ?Sized)) -> f64 {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// The user-facing sampling interface (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform sample from a half-open or inclusive range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// Uniform sample over a type's whole value range.
    fn gen<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Bernoulli sample: `true` with probability `p` (clamped to [0, 1]).
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        // 53 random mantissa bits give a uniform float in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000usize), b.gen_range(0..1000usize));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3..17usize);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-5..=5i64);
            assert!((-5..=5).contains(&y));
            let z = rng.gen_range(1..=1u32);
            assert_eq!(z, 1);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "p=0.25 gave {hits}/10000");
    }

    #[test]
    fn works_through_mut_ref() {
        fn takes_impl(rng: &mut impl super::Rng) -> usize {
            rng.gen_range(0..10usize)
        }
        let mut rng = StdRng::seed_from_u64(3);
        let _ = takes_impl(&mut rng);
        let _ = takes_impl(&mut &mut rng);
    }
}
