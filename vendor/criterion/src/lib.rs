//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset of the API the workspace benches use —
//! [`criterion_group!`]/[`criterion_main!`], [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_with_input`], [`Bencher::iter`],
//! [`BenchmarkId`], [`Throughput`] — with plain wall-clock measurement:
//! each benchmark is warmed up, sampled `sample_size` times, and reported
//! as median / mean per iteration on stdout. No statistics machinery, no
//! HTML reports; enough to register, compile, and smoke-run the benches
//! and to eyeball relative numbers.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Benchmark identifier: an optional function name plus a parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// Throughput annotation; recorded and echoed, not otherwise analysed.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// The per-benchmark measurement driver passed to bench closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, collecting `sample_size` samples; each sample
    /// averages over enough iterations to be clock-resolvable.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and per-sample iteration-count calibration.
        let mut iters: u32 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(1) || iters >= 1 << 20 {
                break;
            }
            iters = iters.saturating_mul(4);
        }
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            self.samples.push(start.elapsed() / iters);
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 1, "sample size must be at least 1");
        self.sample_size = n;
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        self.report(&id.to_string(), &bencher.samples);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    pub fn finish(&mut self) {}

    fn report(&self, id: &str, samples: &[Duration]) {
        let full = format!("{}/{}", self.name, id);
        if samples.is_empty() {
            println!("{full:<48} (no samples collected)");
            return;
        }
        let mut sorted: Vec<Duration> = samples.to_vec();
        sorted.sort_unstable();
        let median = sorted[sorted.len() / 2];
        let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if median > Duration::ZERO => {
                format!("  {:.0} elem/s", n as f64 / median.as_secs_f64())
            }
            Some(Throughput::Bytes(n)) if median > Duration::ZERO => {
                format!("  {:.0} B/s", n as f64 / median.as_secs_f64())
            }
            _ => String::new(),
        };
        println!(
            "{full:<48} median {median:>12?}  mean {mean:>12?}  ({} samples){rate}",
            sorted.len()
        );
        let _ = &self.criterion;
    }
}

/// Top-level driver handed to `criterion_group!` target functions.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n-- {name} --");
        BenchmarkGroup {
            criterion: self,
            name,
            sample_size: 10,
            throughput: None,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Defines a function that runs each listed benchmark target.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Defines `main` running each `criterion_group!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.throughput(Throughput::Elements(1));
        group.bench_with_input(BenchmarkId::new("add", 2), &2u64, |b, &x| b.iter(|| x + 1));
        group.bench_function(BenchmarkId::from_parameter("plain"), |b| b.iter(|| 1 + 1));
        group.finish();
    }

    #[test]
    fn group_runs() {
        let mut c = Criterion::default();
        trivial(&mut c);
    }

    criterion_group!(benches, trivial);

    #[test]
    fn macros_expand() {
        benches();
    }
}
