//! Offline stand-in for the `crossbeam` crate: just [`channel`], the only
//! module this workspace uses.

pub mod channel;
