//! Bounded multi-producer multi-consumer channels with the
//! `crossbeam-channel` API surface used by this workspace: [`bounded`],
//! cloneable [`Sender`]/[`Receiver`], [`Receiver::recv_timeout`].
//!
//! Capacity 0 gives rendezvous semantics — `send` blocks until a receiver
//! has actually taken the message — matching crossbeam's zero-capacity
//! channels (and the paper runtime's synchronous `MVar`-pair reading).
//! Capacity n > 0 gives a bounded FIFO queue.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Error returned by [`Sender::send`] when all receivers are gone; carries
/// the unsent message like crossbeam's.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sending on a disconnected channel")
    }
}

/// Error returned by [`Receiver::recv`] when the channel is empty and all
/// senders are gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "receiving on an empty and disconnected channel")
    }
}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    Timeout,
    Disconnected,
}

impl fmt::Display for RecvTimeoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecvTimeoutError::Timeout => write!(f, "timed out waiting on channel"),
            RecvTimeoutError::Disconnected => {
                write!(f, "receiving on an empty and disconnected channel")
            }
        }
    }
}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// The channel is currently empty (but senders remain).
    Empty,
    /// The channel is empty and every sender has been dropped.
    Disconnected,
}

impl fmt::Display for TryRecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TryRecvError::Empty => write!(f, "receiving on an empty channel"),
            TryRecvError::Disconnected => {
                write!(f, "receiving on an empty and disconnected channel")
            }
        }
    }
}

struct State<T> {
    /// Queued messages, each tagged with its sender's ticket. Tickets are
    /// strictly increasing along the queue (assigned from `pushed`), and
    /// stay stable even when a rendezvous sender reclaims its message
    /// from the middle of the queue on receiver disconnect.
    queue: VecDeque<(u64, T)>,
    senders: usize,
    receivers: usize,
    /// Next ticket to assign.
    pushed: u64,
    /// One past the highest ticket a receiver has consumed. Receivers pop
    /// from the front (the smallest remaining ticket), so a rendezvous
    /// sender is released exactly when `popped > ticket`.
    popped: u64,
    /// Senders currently blocked on `not_full` (for queue room or a
    /// rendezvous handoff). Every pop frees a slot, so a pop wakes one
    /// of them whenever this is nonzero — gating on "queue was exactly
    /// full" instead loses wakeups when one receiver drains several
    /// messages back-to-back (only the first pop would notify, stranding
    /// the remaining blocked senders).
    waiting_senders: usize,
    /// Receivers currently blocked on `not_empty`; lets a send into a
    /// busy (nobody-parked) consumer pool skip the futex syscall.
    waiting_receivers: usize,
}

struct Shared<T> {
    capacity: usize,
    state: Mutex<State<T>>,
    /// Waited on by receivers; signalled per message pushed (one waiter —
    /// one message, one wakeup) and broadcast on sender disconnect. Split
    /// from `not_full` so a send never wakes the whole worker pool: with
    /// one shared condvar, every push `notify_all`ed N blocked consumers
    /// to deliver one message — a thundering herd that serialized
    /// multi-worker engines on small hosts.
    not_empty: Condvar,
    /// Waited on by senders: for queue room (capacity > 0) or for their
    /// ticket to be consumed (rendezvous). Room frees one slot, so one
    /// wakeup; a rendezvous pop must broadcast, because the wakeup is for
    /// one *specific* sender and `notify_one` could pick another.
    not_full: Condvar,
}

impl<T> Shared<T> {
    fn lock(&self) -> MutexGuard<'_, State<T>> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Wakes the sender(s) a pop may unblock. `st` is the post-pop state.
    fn wake_senders_after_pop(&self, st: &State<T>) {
        if st.waiting_senders == 0 {
            // Nobody parked: keep the uncontended pop syscall-free.
            return;
        }
        if self.capacity == 0 {
            // The wakeup targets the one sender whose ticket was just
            // consumed; notify_one could pick a different rendezvous
            // sender, which would re-sleep and strand the right one.
            self.not_full.notify_all();
        } else {
            // The pop freed one slot (post-pop length is always below
            // capacity), so exactly one blocked sender can proceed.
            self.not_full.notify_one();
        }
    }
}

/// The sending half of a channel. Cloneable; the channel disconnects for
/// receivers when the last clone is dropped.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half of a channel. Cloneable; the channel disconnects for
/// senders when the last clone is dropped.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Creates a bounded channel. `capacity == 0` is a rendezvous channel:
/// each `send` blocks until its message has been received.
pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        capacity,
        state: Mutex::new(State {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
            pushed: 0,
            popped: 0,
            waiting_senders: 0,
            waiting_receivers: 0,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    /// Blocks until the message is enqueued (capacity > 0) or received
    /// (capacity 0). Fails only when every receiver has been dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let shared = &*self.shared;
        let mut st = shared.lock();

        // Wait for queue room (for capacity 0 the queue itself is
        // unbounded and the rendezvous wait below does the blocking).
        while shared.capacity > 0 && st.queue.len() >= shared.capacity {
            if st.receivers == 0 {
                return Err(SendError(value));
            }
            st.waiting_senders += 1;
            st = shared.not_full.wait(st).unwrap_or_else(|e| e.into_inner());
            st.waiting_senders -= 1;
        }
        if st.receivers == 0 {
            return Err(SendError(value));
        }

        let ticket = st.pushed;
        st.queue.push_back((ticket, value));
        st.pushed += 1;
        // One message, one consumer: wake exactly one blocked receiver.
        // (A receiver that never parks finds the message by checking the
        // queue under the mutex before waiting, so no syscall is needed
        // when nobody is parked.)
        if st.waiting_receivers > 0 {
            shared.not_empty.notify_one();
        }

        if shared.capacity == 0 {
            // Rendezvous: stay until our message has been popped.
            while st.popped <= ticket {
                if st.receivers == 0 {
                    // Reclaim the message (still queued, since popped is
                    // at most our ticket) so the caller gets it back, as
                    // crossbeam's SendError does. Other blocked senders'
                    // tickets are unaffected (and were all woken by the
                    // receiver-disconnect broadcast already).
                    let index = st
                        .queue
                        .iter()
                        .position(|(t, _)| *t == ticket)
                        .expect("unpopped message present");
                    let (_, value) = st.queue.remove(index).expect("index just found");
                    return Err(SendError(value));
                }
                st.waiting_senders += 1;
                st = shared.not_full.wait(st).unwrap_or_else(|e| e.into_inner());
                st.waiting_senders -= 1;
            }
        }
        Ok(())
    }
}

impl<T> Receiver<T> {
    /// Blocks until a message arrives; fails when the channel is empty and
    /// every sender has been dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        let shared = &*self.shared;
        let mut st = shared.lock();
        loop {
            if let Some((ticket, value)) = st.queue.pop_front() {
                st.popped = ticket + 1;
                shared.wake_senders_after_pop(&st);
                return Ok(value);
            }
            if st.senders == 0 {
                return Err(RecvError);
            }
            st.waiting_receivers += 1;
            st = shared.not_empty.wait(st).unwrap_or_else(|e| e.into_inner());
            st.waiting_receivers -= 1;
        }
    }

    /// Non-blocking [`Receiver::recv`]: pops an already-queued message
    /// or returns immediately with why it could not.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let shared = &*self.shared;
        let mut st = shared.lock();
        if let Some((ticket, value)) = st.queue.pop_front() {
            st.popped = ticket + 1;
            shared.wake_senders_after_pop(&st);
            return Ok(value);
        }
        if st.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Like [`Receiver::recv`] but gives up after `timeout`.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let shared = &*self.shared;
        let mut st = shared.lock();
        loop {
            if let Some((ticket, value)) = st.queue.pop_front() {
                st.popped = ticket + 1;
                shared.wake_senders_after_pop(&st);
                return Ok(value);
            }
            if st.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            st.waiting_receivers += 1;
            let (guard, _) = shared
                .not_empty
                .wait_timeout(st, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            st = guard;
            st.waiting_receivers -= 1;
        }
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Sender<T> {
        self.shared.lock().senders += 1;
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Receiver<T> {
        self.shared.lock().receivers += 1;
        Receiver {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut st = self.shared.lock();
        st.senders -= 1;
        if st.senders == 0 {
            // Blocked receivers must observe the disconnect.
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut st = self.shared.lock();
        st.receivers -= 1;
        if st.receivers == 0 {
            // Blocked senders (room waiters and rendezvous waiters alike)
            // must observe the disconnect.
            self.shared.not_full.notify_all();
        }
    }
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Sender {{ .. }}")
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Receiver {{ .. }}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::thread;

    #[test]
    fn bounded_queue_buffers() {
        let (tx, rx) = bounded(3);
        for i in 0..3 {
            tx.send(i).unwrap();
        }
        for i in 0..3 {
            assert_eq!(rx.recv().unwrap(), i);
        }
    }

    #[test]
    fn every_blocked_receiver_gets_a_message() {
        // One notify per push must reach every blocked consumer: with 8
        // receivers parked before any send, 8 sends must unblock all 8
        // (guards the notify_one wakeup accounting against lost wakeups).
        let (tx, rx) = bounded(8);
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let rx = rx.clone();
                thread::spawn(move || rx.recv().unwrap())
            })
            .collect();
        thread::sleep(Duration::from_millis(30)); // let them park
        for i in 0..8 {
            tx.send(i).unwrap();
        }
        let mut got: Vec<i32> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        got.sort_unstable();
        assert_eq!(got, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn pops_unblock_senders_waiting_for_room() {
        // One receiver draining a capacity-2 queue back-to-back must
        // unblock EVERY parked sender, not just the one woken by the
        // full→non-full transition (regression: gating the not_full
        // notify on "queue was exactly full" stranded the rest).
        let (tx, rx) = bounded(2);
        tx.send(0).unwrap();
        tx.send(1).unwrap(); // fill the queue
        let handles: Vec<_> = (2..=5)
            .map(|i| {
                let tx = tx.clone();
                thread::spawn(move || tx.send(i).unwrap())
            })
            .collect();
        thread::sleep(Duration::from_millis(30)); // all four block on room
        let mut got = Vec::new();
        for _ in 0..6 {
            got.push(rx.recv().unwrap());
        }
        for h in handles {
            h.join().unwrap();
        }
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn rendezvous_blocks_until_received() {
        let (tx, rx) = bounded(0);
        let received = Arc::new(AtomicBool::new(false));
        let received2 = Arc::clone(&received);
        let t = thread::spawn(move || {
            tx.send(7).unwrap();
            // send returning means the receiver has the message.
            assert!(received2.load(Ordering::SeqCst));
        });
        thread::sleep(Duration::from_millis(30));
        received.store(true, Ordering::SeqCst);
        assert_eq!(rx.recv().unwrap(), 7);
        t.join().unwrap();
    }

    #[test]
    fn send_fails_when_receivers_gone() {
        let (tx, rx) = bounded(1);
        drop(rx);
        assert_eq!(tx.send(1), Err(SendError(1)));
    }

    #[test]
    fn rendezvous_send_unblocks_on_receiver_drop() {
        let (tx, rx) = bounded(0);
        let t = thread::spawn(move || tx.send(9));
        thread::sleep(Duration::from_millis(30));
        drop(rx);
        assert_eq!(t.join().unwrap(), Err(SendError(9)));
    }

    #[test]
    fn multiple_blocked_rendezvous_senders_all_reclaim_on_receiver_drop() {
        let (tx, rx) = bounded(0);
        let threads: Vec<_> = (0..3)
            .map(|i| {
                let tx = tx.clone();
                thread::spawn(move || tx.send(i))
            })
            .collect();
        thread::sleep(Duration::from_millis(50));
        drop(rx);
        // Every sender must get its own message back — regardless of the
        // order the woken threads reclaim from the queue.
        let mut reclaimed: Vec<i32> = threads
            .into_iter()
            .map(|t| match t.join().unwrap() {
                Err(SendError(v)) => v,
                Ok(()) => panic!("send succeeded with no receiver"),
            })
            .collect();
        reclaimed.sort_unstable();
        assert_eq!(reclaimed, vec![0, 1, 2]);
    }

    #[test]
    fn rendezvous_mixed_receive_and_reclaim() {
        let (tx, rx) = bounded(0);
        let threads: Vec<_> = (0..3)
            .map(|i| {
                let tx = tx.clone();
                thread::spawn(move || tx.send(i))
            })
            .collect();
        thread::sleep(Duration::from_millis(50));
        // Receive one message, then disconnect: one sender returns Ok,
        // the other two reclaim their own values.
        let got = rx.recv().unwrap();
        drop(rx);
        let mut ok = Vec::new();
        let mut reclaimed = Vec::new();
        for t in threads {
            match t.join().unwrap() {
                Ok(()) => ok.push(()),
                Err(SendError(v)) => reclaimed.push(v),
            }
        }
        assert_eq!(ok.len(), 1);
        assert_eq!(reclaimed.len(), 2);
        let mut all = reclaimed;
        all.push(got);
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2]);
    }

    #[test]
    fn recv_fails_when_senders_gone() {
        let (tx, rx) = bounded::<i32>(1);
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn recv_drains_before_disconnect() {
        let (tx, rx) = bounded(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn try_recv_pops_or_reports_state() {
        let (tx, rx) = bounded(2);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        tx.send(1).unwrap();
        assert_eq!(rx.try_recv(), Ok(1));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn try_recv_unblocks_a_sender_waiting_for_room() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let t = thread::spawn(move || tx.send(2));
        thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.try_recv(), Ok(1));
        t.join().unwrap().unwrap();
        assert_eq!(rx.recv().unwrap(), 2);
    }

    #[test]
    fn recv_timeout_times_out() {
        let (_tx, rx) = bounded::<i32>(1);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(20)),
            Err(RecvTimeoutError::Timeout)
        );
    }

    #[test]
    fn recv_timeout_gets_late_message() {
        let (tx, rx) = bounded(1);
        let t = thread::spawn(move || {
            thread::sleep(Duration::from_millis(20));
            tx.send(5).unwrap();
        });
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)), Ok(5));
        t.join().unwrap();
    }

    #[test]
    fn full_queue_send_unblocks_after_recv() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let t = thread::spawn(move || tx.send(2));
        thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv().unwrap(), 1);
        t.join().unwrap().unwrap();
        assert_eq!(rx.recv().unwrap(), 2);
    }

    #[test]
    fn mpmc_clones_work() {
        let (tx, rx) = bounded(16);
        let tx2 = tx.clone();
        let rx2 = rx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        let mut got = vec![rx.recv().unwrap(), rx2.recv().unwrap()];
        got.sort_unstable();
        assert_eq!(got, vec![1, 2]);
    }
}
