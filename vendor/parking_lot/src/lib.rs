//! Offline stand-in for `parking_lot`: a [`Mutex`] with the
//! guard-returning (non-poisoning) `lock()` signature, implemented over
//! `std::sync::Mutex`. Poisoning is deliberately ignored — like
//! `parking_lot`, a panic while holding the lock leaves the data
//! accessible to later lockers.

use std::sync::MutexGuard;

/// A mutual-exclusion primitive whose `lock` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;
    use std::sync::Arc;

    #[test]
    fn lock_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn survives_panicking_holder() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison the std mutex");
        })
        .join();
        *m.lock() += 5;
        assert_eq!(*m.lock(), 5);
    }
}
