//! Offline stand-in for `parking_lot`: a [`Mutex`] and an [`RwLock`]
//! with the guard-returning (non-poisoning) `lock()`/`read()`/`write()`
//! signatures, implemented over their `std::sync` counterparts.
//! Poisoning is deliberately ignored — like `parking_lot`, a panic while
//! holding a lock leaves the data accessible to later lockers.

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion primitive whose `lock` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Attempts the lock without blocking; `None` if held elsewhere.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// A reader-writer lock whose `read`/`write` return guards directly
/// (no poisoning). The sharded concurrent type store takes read locks on
/// every warm lookup, so the non-poisoning fast path matters there.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::{Mutex, RwLock};
    use std::sync::Arc;

    #[test]
    fn lock_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn survives_panicking_holder() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison the std mutex");
        })
        .join();
        *m.lock() += 5;
        assert_eq!(*m.lock(), 5);
    }

    #[test]
    fn rwlock_readers_share_writers_exclude() {
        let l = Arc::new(RwLock::new(0));
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 0);
        }
        *l.write() += 3;
        assert_eq!(*l.read(), 3);
    }

    #[test]
    fn rwlock_survives_panicking_writer() {
        let l = Arc::new(RwLock::new(1));
        let l2 = Arc::clone(&l);
        let _ = std::thread::spawn(move || {
            let _guard = l2.write();
            panic!("poison the std rwlock");
        })
        .join();
        *l.write() += 1;
        assert_eq!(*l.read(), 2);
    }
}
