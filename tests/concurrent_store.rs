//! End-to-end concurrency soak: the full Fig. 10 gen suites checked
//! from 8 threads simultaneously through one shared store, verdicts
//! held against the suites' by-construction ground truth and the
//! single-threaded tree oracle.

use algst::core::normalize::nrm_pos;
use algst::core::shared::{SharedStore, StoreObs};
use algst::gen::suite::{build_suite, SuiteKind};
use algst::gen::workload::equiv_workload;
use algst::obs::{Level, LocalHistogram, Registry, Span, TraceSink};
use std::sync::Arc;

const THREADS: usize = 8;

#[test]
fn suites_checked_from_eight_threads_agree_with_the_oracle() {
    let eq = build_suite(SuiteKind::Equivalent, 24, 101);
    let ne = build_suite(SuiteKind::NonEquivalent, 24, 102);
    let cases: Vec<(&algst::core::types::Type, &algst::core::types::Type, bool)> = eq
        .cases
        .iter()
        .chain(&ne.cases)
        .map(|c| (&c.instance.ty, &c.other, c.equivalent))
        .collect();

    // Tree oracle once, up front (no store of any kind).
    for &(t, u, expected) in &cases {
        assert_eq!(
            nrm_pos(t).alpha_eq(&nrm_pos(u)),
            expected,
            "tree oracle disagrees with ground truth on {t} vs {u}"
        );
    }

    let shared = SharedStore::new_arc();
    std::thread::scope(|scope| {
        for ti in 0..THREADS {
            let shared = &shared;
            let cases = &cases;
            scope.spawn(move || {
                let mut w = shared.worker();
                // Stagger direction per thread so interning races cover
                // both sides of every pair from the first instant.
                let flip = ti % 2 == 1;
                for (ci, &(t, u, expected)) in cases.iter().enumerate() {
                    let (x, y) = if flip { (u, t) } else { (t, u) };
                    let a = w.intern(x);
                    let b = w.intern(y);
                    assert!(w.equivalent_ids(a, a), "reflexivity");
                    assert_eq!(
                        w.equivalent_ids(a, b),
                        w.equivalent_ids(b, a),
                        "symmetry on {t} vs {u}"
                    );
                    assert_eq!(
                        w.equivalent_ids(a, b),
                        expected,
                        "thread {ti} verdict on {t} vs {u}"
                    );
                    // Publish with the same cadence the server engine
                    // uses (after every batch), so one thread's normal
                    // forms warm the others mid-run.
                    if ci % 8 == 7 {
                        w.publish();
                    }
                }
            });
        }
    });

    let stats = shared.stats();
    assert_eq!(stats.workers, THREADS as u64);
    assert!(stats.nodes > 0);
    // 8 threads × 48 pairs, but each distinct normal form is computed a
    // bounded number of times (races at worst double-compute): the hit
    // rate must dominate.
    assert!(
        stats.nrm_hit_rate() > 0.5,
        "expected a warm-dominated run, got hit rate {:.3} ({stats:?})",
        stats.nrm_hit_rate()
    );
}

/// The contention-free warm path, end to end — **with observability
/// enabled the whole time**: after one worker has computed and
/// published everything a 200K-request workload needs, a fresh worker
/// replaying the entire stream acquires **zero** locks on the shared
/// store (ISSUE 7 acceptance criterion), while per-request latencies
/// land in a worker-local histogram folded into a shared registry at
/// batch boundaries (ISSUE 8: metrics must not reintroduce locks).
#[test]
fn fully_warm_200k_request_replay_takes_zero_locks() {
    let eq = build_suite(SuiteKind::Equivalent, 16, 105);
    let ne = build_suite(SuiteKind::NonEquivalent, 16, 106);
    let workload = equiv_workload(&[&eq, &ne], 200_000, 17);

    let shared = SharedStore::new_arc();
    // Observability on from the first cold intern: store slow-path and
    // install histograms, plus a Debug-level buffer sink capturing
    // `snapshot_install` events.
    let registry = Arc::new(Registry::new());
    let slow_hist = registry.histogram("store_slow_path_ns");
    let (sink, trace) = TraceSink::to_buffer(Level::Debug);
    assert!(shared.install_obs(StoreObs {
        slow_path_ns: Arc::clone(&slow_hist),
        install_ns: registry.histogram("snapshot_install_ns"),
        sink: Arc::new(sink),
    }));

    {
        let mut w = shared.worker();
        for i in 0..workload.len() {
            let (lhs, rhs, expected) = workload.request(i);
            let a = w.intern(lhs);
            let b = w.intern(rhs);
            assert_eq!(w.equivalent_ids(a, b), expected, "warm-up request {i}");
        }
        w.publish();
    }
    // The cold warm-up exercised the instrumented slow path and emitted
    // install events through the sink.
    assert!(slow_hist.snapshot().count > 0, "cold interns were recorded");
    assert!(
        String::from_utf8(trace.lock().unwrap().clone())
            .unwrap()
            .contains("\"ev\":\"snapshot_install\""),
        "warm-up published at least one instrumented snapshot install"
    );

    let mut w = shared.worker(); // attach before the baseline
    let baseline = shared.stats();
    let slow_samples = slow_hist.snapshot().count;
    let trace_bytes = trace.lock().unwrap().len();
    // Replay with the engine's warm-path recording pattern: one local
    // (lock-free) histogram record per request, folded into the shared
    // registry every 256 requests — the engine's batch cadence.
    let request_ns = registry.histogram("request_service_ns");
    let mut local = LocalHistogram::default();
    for i in 0..workload.len() {
        let span = Span::begin();
        let (lhs, rhs, expected) = workload.request(i);
        let a = w.intern(lhs);
        let b = w.intern(rhs);
        assert_eq!(w.equivalent_ids(a, b), expected, "replay request {i}");
        span.record(&mut local);
        if i % 256 == 255 {
            request_ns.fold(&mut local);
        }
    }
    request_ns.fold(&mut local);
    w.publish();
    let after = shared.stats();
    assert_eq!(
        after.lock_acquisitions,
        baseline.lock_acquisitions,
        "a fully-warm 200K-request replay must be lock-free (took {} locks)",
        after.lock_acquisitions - baseline.lock_acquisitions
    );
    assert_eq!(after.slow_path, baseline.slow_path);
    assert_eq!(after.generation, baseline.generation);
    // Metrics account for every request, and the warm replay added no
    // slow-path samples and no trace events.
    assert_eq!(request_ns.snapshot().count, workload.len() as u64);
    assert_eq!(slow_hist.snapshot().count, slow_samples);
    assert_eq!(trace.lock().unwrap().len(), trace_bytes);
}

/// After a compaction that retains the workload's whole root set, a
/// fresh worker replaying the stream is exactly as lock-free as before
/// the compaction: the rebuilt snapshot carries every live node in its
/// intern map and every memoized normal form the replay consults
/// (ISSUE 9 acceptance criterion).
#[test]
fn fully_warm_replay_after_compaction_takes_zero_locks() {
    let eq = build_suite(SuiteKind::Equivalent, 12, 109);
    let ne = build_suite(SuiteKind::NonEquivalent, 12, 110);
    let workload = equiv_workload(&[&eq, &ne], 50_000, 29);

    let shared = SharedStore::new_arc();
    let mut roots = Vec::new();
    {
        let mut w = shared.worker();
        for i in 0..workload.len() {
            let (lhs, rhs, expected) = workload.request(i);
            let a = w.intern(lhs);
            let b = w.intern(rhs);
            assert_eq!(w.equivalent_ids(a, b), expected, "warm-up request {i}");
            roots.push(a);
            roots.push(b);
        }
        w.publish();
    }
    let outcome = shared.compact(&roots);
    assert_eq!(outcome.epoch, 1);
    assert!(outcome.nodes_after <= outcome.nodes_before);

    let mut w = shared.worker(); // attaches to the compacted epoch
    let baseline = shared.stats();
    for i in 0..workload.len() {
        let (lhs, rhs, expected) = workload.request(i);
        let a = w.intern(lhs);
        let b = w.intern(rhs);
        assert_eq!(
            w.equivalent_ids(a, b),
            expected,
            "post-compaction request {i}"
        );
    }
    w.publish();
    let after = shared.stats();
    assert_eq!(
        after.lock_acquisitions,
        baseline.lock_acquisitions,
        "a fully-warm replay over a compacted store must stay lock-free (took {} locks)",
        after.lock_acquisitions - baseline.lock_acquisitions
    );
    assert_eq!(after.slow_path, baseline.slow_path);
    assert_eq!(after.generation, baseline.generation);
    assert_eq!(after.epoch, 1);
}

/// Eight threads answer equivalence queries while a ninth repeatedly
/// compacts the store out from under them with a near-empty root set.
/// Workers repin at batch boundaries (the engine's cadence); between
/// repins they answer from their pinned epoch. Every verdict must stay
/// correct, and within one pin every id a worker has seen must stay
/// stable — a remapped id is never observed torn.
#[test]
fn compaction_under_load_preserves_verdicts_and_id_stability() {
    use std::sync::atomic::{AtomicUsize, Ordering};

    let eq = build_suite(SuiteKind::Equivalent, 12, 107);
    let ne = build_suite(SuiteKind::NonEquivalent, 12, 108);
    let workload = equiv_workload(&[&eq, &ne], 480, 23);

    // Counts finished workers even when one panics (the guard fires on
    // unwind), so the compactor loop below always terminates and a
    // verdict failure surfaces as a panic rather than a hang.
    struct DoneGuard<'a>(&'a AtomicUsize);
    impl Drop for DoneGuard<'_> {
        fn drop(&mut self) {
            self.0.fetch_add(1, Ordering::Release);
        }
    }

    let shared = SharedStore::new_arc();
    let done = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            let shared = &shared;
            let workload = &workload;
            let done = &done;
            scope.spawn(move || {
                let _done = DoneGuard(done);
                let mut w = shared.worker();
                // (request index, lhs id, rhs id) seen under the current
                // pin; cleared whenever repin adopts a new epoch.
                let mut seen = Vec::new();
                for round in 0..3 {
                    for start in (0..workload.len()).step_by(8) {
                        if w.repin() {
                            seen.clear();
                        }
                        for i in start..(start + 8).min(workload.len()) {
                            let (lhs, rhs, expected) = workload.request(i);
                            let a = w.intern(lhs);
                            let b = w.intern(rhs);
                            assert_eq!(
                                w.equivalent_ids(a, b),
                                expected,
                                "round {round} request {i} (stale: {})",
                                w.is_stale()
                            );
                            seen.push((i, a, b));
                        }
                        // Prefix consistency across any concurrent
                        // compaction: until the next repin, re-interning
                        // resolves to the very same ids.
                        for &(i, a, b) in seen.iter().rev().take(4) {
                            let (lhs, rhs, _) = workload.request(i);
                            assert_eq!(w.intern(lhs), a, "id torn within a pin");
                            assert_eq!(w.intern(rhs), b, "id torn within a pin");
                        }
                        w.publish();
                    }
                }
            });
        }
        // The compactor: pin, keep one root alive, compact, repeat.
        let shared = &shared;
        let workload = &workload;
        let done = &done;
        scope.spawn(move || {
            let mut c = shared.worker();
            let (keep, _, _) = workload.request(0);
            while done.load(Ordering::Acquire) < THREADS {
                c.repin();
                let root = c.intern(keep);
                c.publish();
                shared.compact(&[root]);
                std::thread::yield_now();
            }
        });
    });

    let stats = shared.stats();
    assert!(stats.compactions >= 1, "the compactor must have run");
    assert!(stats.epoch >= 1);
    assert_eq!(stats.workers, THREADS as u64 + 1);
}

#[test]
fn workload_replay_from_many_threads_is_deterministic() {
    let eq = build_suite(SuiteKind::Equivalent, 12, 103);
    let ne = build_suite(SuiteKind::NonEquivalent, 12, 104);
    let workload = equiv_workload(&[&eq, &ne], 240, 9);

    let shared = SharedStore::new_arc();
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            let shared = &shared;
            let workload = &workload;
            scope.spawn(move || {
                let mut w = shared.worker();
                for i in 0..workload.len() {
                    let (lhs, rhs, expected) = workload.request(i);
                    let a = w.intern(lhs);
                    let b = w.intern(rhs);
                    assert_eq!(w.equivalent_ids(a, b), expected, "request {i}");
                }
            });
        }
    });
}
