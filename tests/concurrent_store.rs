//! End-to-end concurrency soak: the full Fig. 10 gen suites checked
//! from 8 threads simultaneously through one shared store, verdicts
//! held against the suites' by-construction ground truth and the
//! single-threaded tree oracle.

use algst::core::normalize::nrm_pos;
use algst::core::shared::SharedStore;
use algst::gen::suite::{build_suite, SuiteKind};
use algst::gen::workload::equiv_workload;

const THREADS: usize = 8;

#[test]
fn suites_checked_from_eight_threads_agree_with_the_oracle() {
    let eq = build_suite(SuiteKind::Equivalent, 24, 101);
    let ne = build_suite(SuiteKind::NonEquivalent, 24, 102);
    let cases: Vec<(&algst::core::types::Type, &algst::core::types::Type, bool)> = eq
        .cases
        .iter()
        .chain(&ne.cases)
        .map(|c| (&c.instance.ty, &c.other, c.equivalent))
        .collect();

    // Tree oracle once, up front (no store of any kind).
    for &(t, u, expected) in &cases {
        assert_eq!(
            nrm_pos(t).alpha_eq(&nrm_pos(u)),
            expected,
            "tree oracle disagrees with ground truth on {t} vs {u}"
        );
    }

    let shared = SharedStore::new_arc();
    std::thread::scope(|scope| {
        for ti in 0..THREADS {
            let shared = &shared;
            let cases = &cases;
            scope.spawn(move || {
                let mut w = shared.worker();
                // Stagger direction per thread so interning races cover
                // both sides of every pair from the first instant.
                let flip = ti % 2 == 1;
                for (ci, &(t, u, expected)) in cases.iter().enumerate() {
                    let (x, y) = if flip { (u, t) } else { (t, u) };
                    let a = w.intern(x);
                    let b = w.intern(y);
                    assert!(w.equivalent_ids(a, a), "reflexivity");
                    assert_eq!(
                        w.equivalent_ids(a, b),
                        w.equivalent_ids(b, a),
                        "symmetry on {t} vs {u}"
                    );
                    assert_eq!(
                        w.equivalent_ids(a, b),
                        expected,
                        "thread {ti} verdict on {t} vs {u}"
                    );
                    // Publish with the same cadence the server engine
                    // uses (after every batch), so one thread's normal
                    // forms warm the others mid-run.
                    if ci % 8 == 7 {
                        w.publish();
                    }
                }
            });
        }
    });

    let stats = shared.stats();
    assert_eq!(stats.workers, THREADS as u64);
    assert!(stats.nodes > 0);
    // 8 threads × 48 pairs, but each distinct normal form is computed a
    // bounded number of times (races at worst double-compute): the hit
    // rate must dominate.
    assert!(
        stats.nrm_hit_rate() > 0.5,
        "expected a warm-dominated run, got hit rate {:.3} ({stats:?})",
        stats.nrm_hit_rate()
    );
}

/// The contention-free warm path, end to end: after one worker has
/// computed and published everything a 200K-request workload needs, a
/// fresh worker replaying the entire stream acquires **zero** locks on
/// the shared store (ISSUE 7 acceptance criterion).
#[test]
fn fully_warm_200k_request_replay_takes_zero_locks() {
    let eq = build_suite(SuiteKind::Equivalent, 16, 105);
    let ne = build_suite(SuiteKind::NonEquivalent, 16, 106);
    let workload = equiv_workload(&[&eq, &ne], 200_000, 17);

    let shared = SharedStore::new_arc();
    {
        let mut w = shared.worker();
        for i in 0..workload.len() {
            let (lhs, rhs, expected) = workload.request(i);
            let a = w.intern(lhs);
            let b = w.intern(rhs);
            assert_eq!(w.equivalent_ids(a, b), expected, "warm-up request {i}");
        }
        w.publish();
    }

    let mut w = shared.worker(); // attach before the baseline
    let baseline = shared.stats();
    for i in 0..workload.len() {
        let (lhs, rhs, expected) = workload.request(i);
        let a = w.intern(lhs);
        let b = w.intern(rhs);
        assert_eq!(w.equivalent_ids(a, b), expected, "replay request {i}");
    }
    w.publish();
    let after = shared.stats();
    assert_eq!(
        after.lock_acquisitions,
        baseline.lock_acquisitions,
        "a fully-warm 200K-request replay must be lock-free (took {} locks)",
        after.lock_acquisitions - baseline.lock_acquisitions
    );
    assert_eq!(after.slow_path, baseline.slow_path);
    assert_eq!(after.generation, baseline.generation);
}

#[test]
fn workload_replay_from_many_threads_is_deterministic() {
    let eq = build_suite(SuiteKind::Equivalent, 12, 103);
    let ne = build_suite(SuiteKind::NonEquivalent, 12, 104);
    let workload = equiv_workload(&[&eq, &ne], 240, 9);

    let shared = SharedStore::new_arc();
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            let shared = &shared;
            let workload = &workload;
            scope.spawn(move || {
                let mut w = shared.worker();
                for i in 0..workload.len() {
                    let (lhs, rhs, expected) = workload.request(i);
                    let a = w.intern(lhs);
                    let b = w.intern(rhs);
                    assert_eq!(w.equivalent_ids(a, b), expected, "request {i}");
                }
            });
        }
    });
}
