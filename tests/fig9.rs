//! Golden test for the paper's **Figure 9**: an AlgST type instance, its
//! FreeST counterpart, and the displayed equivalent / non-equivalent
//! AlgST variants.
//!
//! ```text
//! --- protocol and type in AlgST syntax ---
//! protocol Repeat x = More x (Repeat x) | Quit
//! ?Repeat Int . !(Char, End!) . End!
//!
//! --- corresponding type in FreeST syntax ---
//! (rec repeat0 : 1S . &{More: ?Int; repeat0; Skip, Quit: Skip}); (!(Char, End); End)
//!
//! --- example of an equivalent AlgST type ---
//! Dual (!Repeat Int. ?(Char, End!). Dual End!)
//!
//! --- example of a non-equivalent AlgST type ---
//! ?Repeat String . !(Char, End!) . End!
//! ```
//!
//! The generator's benchmark fragment uses unparameterized protocols, so
//! `Repeat Int` is declared at the instantiated payload.

use algst::core::protocol::{Ctor, Declarations, ProtocolDecl};
use algst::core::symbol::Symbol;
use algst::core::types::Type;
use algst::freest::{equivalent_types, BisimResult};
use algst::gen::to_freest::to_freest;
use algst::syntax::parse_type;
use algst::Session;

fn fig9_decls() -> Declarations {
    let mut d = Declarations::new();
    d.add_protocol(ProtocolDecl {
        name: Symbol::intern("RepeatG9"),
        params: vec![],
        ctors: vec![
            Ctor::new("MoreG9", vec![Type::int(), Type::proto("RepeatG9", vec![])]),
            Ctor::new("QuitG9", vec![]),
        ],
    })
    .expect("fresh names");
    d.validate().expect("well-kinded");
    d
}

fn fig9_type() -> Type {
    Type::input(
        Type::proto("RepeatG9", vec![]),
        Type::output(Type::pair(Type::char(), Type::EndOut), Type::EndOut),
    )
}

#[test]
fn algst_type_parses_as_displayed() {
    // The exact concrete syntax of the figure (modulo the renamed
    // protocol) parses to the instance type.
    let parsed = parse_type("?RepeatG9 . !(Char, End!) . End!").expect("parses");
    assert_eq!(parsed.to_string(), "?RepeatG9.!(Char, End!).End!");
}

#[test]
fn freest_counterpart_matches_figure() {
    let mut s = Session::new();
    let cf = to_freest(&mut s, &fig9_decls(), &fig9_type()).expect("translatable");
    let s = cf.to_string();
    // rec binder over an external choice with the More/Quit branches,
    // then the (Char, End!) transmission and the End.
    assert!(s.contains("rec repeatg9_i"), "{s}");
    assert!(s.contains("MoreG9: ?Int; repeatg9_i"), "{s}");
    assert!(s.contains("QuitG9: Skip"), "{s}");
    assert!(s.contains("!(Char, End!)"), "{s}");
    assert!(s.ends_with("End!"), "{s}");
}

#[test]
fn equivalent_variant_is_equivalent_in_both_systems() {
    let decls = fig9_decls();
    let ty = fig9_type();
    // Dual (!Repeat. ?(Char, End!). Dual End!)
    let variant = Type::dual(Type::output(
        Type::proto("RepeatG9", vec![]),
        Type::input(
            Type::pair(Type::char(), Type::EndOut),
            Type::dual(Type::EndOut),
        ),
    ));
    let mut s = Session::new();
    assert!(
        s.equivalent(&ty, &variant),
        "AlgST must identify the variant"
    );

    let cf1 = to_freest(&mut s, &decls, &ty).expect("translatable");
    let cf2 = to_freest(&mut s, &decls, &variant).expect("translatable");
    assert_eq!(
        equivalent_types(&cf1, &cf2, 1_000_000),
        BisimResult::Equivalent,
        "FreeST must identify the translated variant"
    );
}

#[test]
fn nonequivalent_variant_is_rejected_in_both_systems() {
    let decls = fig9_decls();
    let ty = fig9_type();
    // ?Repeat String …: the figure's non-equivalent example changes the
    // payload of the transmission after the protocol. In the
    // unparameterized rendering, the corresponding mutation changes the
    // pair payload instead.
    let mutant = Type::input(
        Type::proto("RepeatG9", vec![]),
        Type::output(Type::pair(Type::string(), Type::EndOut), Type::EndOut),
    );
    let mut s = Session::new();
    assert!(!s.equivalent(&ty, &mutant));

    let cf1 = to_freest(&mut s, &decls, &ty).expect("translatable");
    let cf2 = to_freest(&mut s, &decls, &mutant).expect("translatable");
    assert_eq!(
        equivalent_types(&cf1, &cf2, 1_000_000),
        BisimResult::NotEquivalent
    );
}

#[test]
fn parameterized_repeat_checks_in_full_algst() {
    // Outside the benchmark fragment, the *parameterized* declaration of
    // the figure type-checks as written in the paper.
    let module = algst::check::check_source(
        r#"
protocol RepeatP x = MoreP x (RepeatP x) | QuitP

useIt : ?RepeatP Int . !(Char, End!) . End! -> Unit
useIt c = consume c

consume : ?RepeatP Int . !(Char, End!) . End! -> Unit
consume c = match c with {
  MoreP c -> let (x, c) = receiveInt [?RepeatP Int . !(Char, End!) . End!] c in
             consume c,
  QuitP c -> let (e1, e2) = new [End!] in
             let c = send [(Char, End!), End!] ('x', e1) c in
             let _ = terminate c in
             wait e2 }

main : Unit
main = ()
"#,
    );
    match module {
        Ok(_) => {}
        Err(e) => panic!("Fig. 9 parameterized protocol does not check: {e}"),
    }
}
