//! Whole-pipeline integration tests spanning all crates: parse → kind
//! check → elaborate → type check → run, plus the benchmark pipeline
//! (generate → mutate → translate → decide).

use algst::check::check_source;
use algst::core::kind::Kind;
use algst::gen::generate::{generate_instance, GenConfig};
use algst::gen::mutate::{equivalent_variant, nonequivalent_mutant};
use algst::gen::to_freest::to_freest;
use algst::runtime::Interp;
use algst::Session;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

/// A program exercising most language features at once: parameterized
/// protocols, negation, generic servers, datatypes, delegation and
/// recursion — checked and executed.
#[test]
fn kitchen_sink_program_runs() {
    let module = check_source(
        r#"
data Shape = Circle Int | Rect Int Int

protocol ShapeP = CircleP Int | RectP Int Int
protocol Feed a = Item a (Feed a) | Stop -Int

area : Shape -> Int
area s = case s of {
  Circle r -> 3 * r * r,
  Rect w h -> w * h }

sendShape : Shape -> forall (s:S). !ShapeP.s -> s
sendShape v [s] c = case v of {
  Circle r -> select CircleP [s] c |> sendInt [s] r,
  Rect w h -> select RectP [s] c |> sendInt [!Int.s] w |> sendInt [s] h }

recvShape : forall (s:S). ?ShapeP.s -> (Shape, s)
recvShape [s] c = match c with {
  CircleP c -> let (r, c) = receiveInt [s] c in (Circle r, c),
  RectP c -> let (w, c) = receiveInt [?Int.s] c in
             let (h, c) = receiveInt [s] c in (Rect w h, c) }

producer : !Feed ShapeP.End! -> Unit
producer c =
  let c = select Item [ShapeP, End!] c in
  let c = sendShape (Rect 6 7) [!Feed ShapeP.End!] c in
  let c = select Item [ShapeP, End!] c in
  let c = sendShape (Circle 2) [!Feed ShapeP.End!] c in
  let c = select Stop [ShapeP, End!] c in
  let (total, c) = receiveInt [End!] c in
  let _ = printInt total in
  terminate c

consumer : Int -> ?Feed ShapeP.End? -> Unit
consumer acc c = match c with {
  Item c -> let (v, c) = recvShape [?Feed ShapeP.End?] c in
            consumer (acc + area v) c,
  Stop c -> sendInt [End?] acc c |> wait }

main : Unit
main =
  let (p, q) = new [!Feed ShapeP.End!] in
  let _ = fork (\u -> producer p) in
  consumer 0 q
"#,
    )
    .unwrap_or_else(|e| panic!("kitchen sink does not check: {e}"));

    let interp = Interp::new(&module);
    interp
        .run_timeout("main", Duration::from_secs(10))
        .unwrap_or_else(|e| panic!("kitchen sink run failed: {e}"));
    assert_eq!(interp.output(), vec!["54"]); // 6*7 + 3*2*2
}

/// The `Stop -Int` branch flips direction mid-protocol: after the
/// consumer *receives* Stop it *sends* the total back.
#[test]
fn negative_polarity_in_branch_observed_at_runtime() {
    // Covered by `kitchen_sink_program_runs`'s Stop branch; this test
    // checks the corresponding types explicitly.
    let module = check_source(
        r#"
protocol Fin = Done -Int

answer : ?Fin.End? -> Unit
answer c = match c with {
  Done c -> sendInt [End?] 42 c |> wait }

ask : !Fin.End! -> Int
ask c =
  let c = select Done [End!] c in
  let (x, c) = receiveInt [End!] c in
  let _ = terminate c in
  x

main : Unit
main =
  let (p, q) = new [!Fin.End!] in
  let _ = fork (\u -> answer q) in
  printInt (ask p)
"#,
    )
    .unwrap_or_else(|e| panic!("{e}"));
    let interp = Interp::new(&module);
    interp.run_timeout("main", Duration::from_secs(10)).unwrap();
    assert_eq!(interp.output(), vec!["42"]);
}

/// Benchmark pipeline end to end: generation is well-kinded, variants
/// and mutants have the right verdicts, translation succeeds, and the
/// AlgST verdict is stable under normalization of either side.
#[test]
fn benchmark_pipeline_is_consistent() {
    let mut rng = StdRng::seed_from_u64(31415);
    let mut session = Session::new();
    for size in [6usize, 20, 40, 70, 100] {
        let inst = generate_instance(&mut rng, &GenConfig::sized(size));
        let variant = equivalent_variant(&mut rng, &inst.decls, &inst.ty, Kind::Value, 12);
        assert!(session.equivalent(&inst.ty, &variant));
        let mutant = nonequivalent_mutant(&mut rng, &inst.ty).expect("mutable");
        assert!(!session.equivalent(&inst.ty, &mutant));

        let cf = to_freest(&mut session, &inst.decls, &inst.ty).expect("translatable");
        assert!(cf.is_contractive());

        // Verdicts survive normalization (the checker may be handed
        // either form).
        let n = algst::core::nrm_pos(&inst.ty);
        assert!(session.equivalent(&n, &variant));
        assert!(!session.equivalent(&n, &mutant));
    }
}

/// The interpreter refuses nothing the checker accepted: run a batch of
/// small accepted programs and require clean termination.
#[test]
fn checked_programs_do_not_go_wrong() {
    let programs = [
        // plain computation
        "main : Unit\nmain = printInt (2 + 2 * 20)",
        // channel round trip via prelude helpers
        "main : Unit\nmain =\n  let (a, b) = new [!Bool.End!] in\n  let _ = fork (\\u -> let (x, b) = receiveBool [End?] b in wait b) in\n  sendBool [End!] True a |> terminate",
        // data + case
        "data Box = MkBox Int\nopen : Box -> Int\nopen b = case b of { MkBox n -> n }\nmain : Unit\nmain = printInt (open (MkBox 9))",
        // if/else with channels consumed in both branches
        "main : Unit\nmain =\n  let (a, b) = new [End!] in\n  let _ = fork (\\u -> wait b) in\n  if True then terminate a else terminate a",
    ];
    for (i, src) in programs.iter().enumerate() {
        let module = check_source(src).unwrap_or_else(|e| panic!("program {i}: {e}"));
        let interp = Interp::new(&module);
        interp
            .run_timeout("main", Duration::from_secs(10))
            .unwrap_or_else(|e| panic!("program {i} failed at runtime: {e}"));
    }
}

/// Theorem 5 is "progress possibly leading to deadlock": the type system
/// accepts deadlocking programs, and the runtime detects them by timeout
/// rather than by crashing.
#[test]
fn welltyped_deadlock_times_out_cleanly() {
    let module = check_source(
        r#"
main : Unit
main =
  let (a, b) = new [!Int.End!] in
  let (x, b2) = receiveInt [End?] b in
  let _ = wait b2 in
  sendInt [End!] x a |> terminate
"#,
    )
    .expect("self-deadlock is well-typed");
    let interp = Interp::new(&module);
    assert!(matches!(
        interp.run_timeout("main", Duration::from_millis(300)),
        Err(algst::runtime::RuntimeError::Timeout)
    ));
}
