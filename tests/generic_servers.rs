//! Integration test for the App. A.6 claim: the generic-server toolbox
//! (§2.3) pays a measurable tagging overhead over the hand-written server
//! (§2.2), while both compute the same answers.

use algst_check::check_source;
use algst_runtime::Interp;
use std::sync::atomic::Ordering;
use std::time::Duration;

const DIRECT: &str = r#"
protocol Reps = MoreR AOp Reps | QuitR
protocol AOp = AddOp Int Int -Int

serveOp : forall (s:S). ?AOp.s -> s
serveOp [s] c = match c with {
  AddOp c -> let (x, c) = receiveInt [?Int.!Int.s] c in
             let (y, c) = receiveInt [!Int.s] c in
             sendInt [s] (x + y) c }

server : ?Reps.End? -> Unit
server c = match c with {
  QuitR c -> wait c,
  MoreR c -> serveOp [?Reps.End?] c |> server }

client : Int -> !Reps.End! -> Unit
client n c =
  if n == 0 then select QuitR [End!] c |> terminate
  else let c = select MoreR [End!] c in
       let c = select AddOp [!Reps.End!] c in
       let c = sendInt [!Int.?Int.!Reps.End!] n c in
       let c = sendInt [?Int.!Reps.End!] n c in
       let (r, c) = receiveInt [!Reps.End!] c in
       let _ = printInt r in
       client (n - 1) c

main : Unit
main =
  let (p, q) = new [!Reps.End!] in
  let _ = fork (\u -> server q) in
  client 3 p
"#;

const TOOLBOX: &str = r#"
protocol SeqT a b = SeqTC a b
protocol RepT a = MoreT a (RepT a) | QuitT

type AddT = SeqT Int (SeqT Int -Int)
type Service a = forall (s:S). ?a.s -> s

serveAdd : Service AddT
serveAdd [s] c = match c with {
  SeqTC c -> let (x, c) = receiveInt [?SeqT Int -Int.s] c in
             match c with {
               SeqTC c -> let (y, c) = receiveInt [!Int.s] c in
                          sendInt [s] (x + y) c }}

repeatS : forall (p:P). Service p -> Service (RepT p)
repeatS [p] sp [s] c = match c with {
  QuitT c -> c,
  MoreT c -> sp [?RepT p.s] c |> repeatS [p] sp [s] }

server : ?RepT AddT.End? -> Unit
server c = repeatS [AddT] serveAdd [End?] c |> wait

client : Int -> !RepT AddT.End! -> Unit
client n c =
  if n == 0 then select QuitT [AddT, End!] c |> terminate
  else let c = select MoreT [AddT, End!] c in
       let c = select SeqTC [Int, SeqT Int -Int, !RepT AddT.End!] c in
       let c = sendInt [!SeqT Int -Int.!RepT AddT.End!] n c in
       let c = select SeqTC [Int, -Int, !RepT AddT.End!] c in
       let c = sendInt [?Int.!RepT AddT.End!] n c in
       let (r, c) = receiveInt [!RepT AddT.End!] c in
       let _ = printInt r in
       client (n - 1) c

main : Unit
main =
  let (p, q) = new [!RepT AddT.End!] in
  let _ = fork (\u -> server q) in
  client 3 p
"#;

fn run(src: &str) -> Interp {
    let module = check_source(src).unwrap_or_else(|e| panic!("{e}"));
    let interp = Interp::new(&module);
    interp
        .run_timeout("main", Duration::from_secs(15))
        .unwrap_or_else(|e| panic!("{e}"));
    interp
}

#[test]
fn toolbox_and_direct_agree_but_toolbox_tags_more() {
    let direct = run(DIRECT);
    let toolbox = run(TOOLBOX);

    // Same results: 3+3, 2+2, 1+1.
    assert_eq!(direct.output(), vec!["6", "4", "2"]);
    assert_eq!(toolbox.output(), vec!["6", "4", "2"]);

    let dt = direct.stats().tags_sent.load(Ordering::Relaxed);
    let tt = toolbox.stats().tags_sent.load(Ordering::Relaxed);
    // Direct: MoreR + AddOp per request (+ final QuitR) = 7.
    // Toolbox: MoreT + SeqTC + SeqTC per request (+ final QuitT) = 10.
    assert_eq!(dt, 7, "direct server tag count");
    assert_eq!(tt, 10, "toolbox server tag count");
    assert!(
        tt > dt,
        "App. A.6: composing generic parts costs extra tags"
    );

    // Payload traffic is identical.
    let dv = direct.stats().values_sent.load(Ordering::Relaxed);
    let tv = toolbox.stats().values_sent.load(Ordering::Relaxed);
    assert_eq!(dv, tv);
}
