//! A miniature of the paper's Figure 10: compare AlgST's linear-time type
//! equivalence against FreeST-style bisimilarity on a small sweep of
//! generated instances, and walk through the Fig. 9 example.
//!
//! ```text
//! cargo run --release --example type_equivalence
//! ```
//!
//! (The full 324-case harness is `cargo run --release -p algst-bench --bin fig10`.)

use algst::core::kind::Kind;
use algst::core::protocol::{Ctor, Declarations, ProtocolDecl};
use algst::core::symbol::Symbol;
use algst::core::types::Type;
use algst::freest::{bisimilar_with, BisimResult, Grammar};
use algst::gen::generate::{generate_instance, GenConfig};
use algst::gen::mutate::equivalent_variant;
use algst::gen::to_freest::to_freest;
use algst::gen::to_grammar::to_grammar;
use algst::Session;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};

fn main() {
    // One explicit session carries the whole example: every intern,
    // normalization and verdict lands in this handle and nowhere else.
    let mut session = Session::new();
    fig9_walkthrough(&mut session);
    mini_sweep(&mut session);
}

/// The paper's Fig. 9 instance, spelled out.
fn fig9_walkthrough(session: &mut Session) {
    let mut decls = Declarations::new();
    decls
        .add_protocol(ProtocolDecl {
            name: Symbol::intern("Repeat"),
            params: vec![],
            ctors: vec![
                Ctor::new("More", vec![Type::int(), Type::proto("Repeat", vec![])]),
                Ctor::new("Quit", vec![]),
            ],
        })
        .expect("fresh");
    decls.validate().expect("well-kinded");

    // ?Repeat Int . !(Char, End!) . End!
    let ty = Type::input(
        Type::proto("Repeat", vec![]),
        Type::output(Type::pair(Type::char(), Type::EndOut), Type::EndOut),
    );
    println!("== paper Fig. 9 ==");
    println!("AlgST type:          {ty}");
    println!(
        "FreeST counterpart:  {}",
        to_freest(session, &decls, &ty).expect("translatable")
    );

    // Dual (!Repeat Int. ?(Char, End!). Dual End!) — the equivalent variant.
    let equiv_variant = Type::dual(Type::output(
        Type::proto("Repeat", vec![]),
        Type::input(
            Type::pair(Type::char(), Type::EndOut),
            Type::dual(Type::EndOut),
        ),
    ));
    println!("equivalent variant:  {equiv_variant}");
    println!(
        "  AlgST ≡ in linear time: {}",
        session.equivalent(&ty, &equiv_variant)
    );

    // ?Repeat String … — the non-equivalent variant (payload changed).
    let non_equiv = Type::input(
        Type::proto("Repeat", vec![]),
        Type::output(Type::pair(Type::string(), Type::EndOut), Type::EndOut),
    );
    println!("non-equivalent:      {non_equiv}");
    println!("  AlgST ≡: {}", session.equivalent(&ty, &non_equiv));
    println!();
}

fn mini_sweep(session: &mut Session) {
    println!("== mini Figure 10 sweep (see `fig10` binary for the real thing) ==");
    println!(
        "{:>6} | {:>12} | {:>14}",
        "nodes", "AlgST (µs)", "FreeST (µs)"
    );
    let mut rng = StdRng::seed_from_u64(2024);
    for size in [8usize, 16, 32, 64, 96] {
        let inst = generate_instance(&mut rng, &GenConfig::sized(size));
        let variant = equivalent_variant(&mut rng, &inst.decls, &inst.ty, Kind::Value, 8);

        let start = Instant::now();
        let mut verdict = true;
        for _ in 0..1000 {
            verdict &= session.equivalent(&inst.ty, &variant);
        }
        let algst_us = start.elapsed().as_secs_f64() * 1e6 / 1000.0;
        assert!(verdict, "conversion walk must preserve equivalence");

        let start = Instant::now();
        let mut g = Grammar::new();
        let w1 = to_grammar(session, &inst.decls, &inst.ty, &mut g).expect("translatable");
        let w2 = to_grammar(session, &inst.decls, &variant, &mut g).expect("translatable");
        let res = bisimilar_with(&mut g, &w1, &w2, u64::MAX, Some(Duration::from_secs(2)));
        let freest_us = start.elapsed().as_secs_f64() * 1e6;

        println!(
            "{:>6} | {:>12.2} | {:>14}",
            inst.node_count(),
            algst_us,
            match res {
                BisimResult::Budget => "timeout".to_owned(),
                _ => format!("{freest_us:.2}"),
            }
        );
    }
    println!("\nAlgST stays flat (linear); FreeST climbs steeply — the paper's Figure 10 shape.");
}
