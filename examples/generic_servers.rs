//! Section 2.3 of the paper: **parameterized protocols and modularity**.
//! Builds the toolbox (`Seq`, `Either`, `Repeat`), composes the
//! arithmetic service out of generic parts, and runs a `Repeat Arith`
//! session end-to-end — including the polarity trick (`Service -Int`)
//! behind active servers.
//!
//! ```text
//! cargo run --example generic_servers
//! ```

use algst::check::check_source;
use algst::runtime::Interp;
use std::time::Duration;

const PROGRAM: &str = r#"
protocol Seq a b = SeqC a b                      -- product
protocol Either a b = Left a | Right b           -- sum
protocol Repeat a = More a (Repeat a) | Quit     -- iteration

type Service a = forall (s:S). ?a.s -> s

type NegT = Seq Int -Int
type AddT = Seq Int (Seq Int -Int)
type ArithT = Either NegT AddT

-- Generic sum-of-services.
either : forall (a:P). Service a -> forall (b:P). Service b -> Service (Either a b)
either [a] sa [b] sb [s] c = match c with {
  Left c -> sa [s] c,
  Right c -> sb [s] c }

-- Generic iteration.
repeat : forall (p:P). Service p -> Service (Repeat p)
repeat [p] serveP [s] c = match c with {
  Quit c -> c,
  More c -> serveP [?Repeat p.s] c |> repeat [p] serveP [s] }

serveNeg : Service NegT
serveNeg [s] c = match c with {
  SeqC c -> let (x, c) = receiveInt [!Int.s] c in
            sendInt [s] (0 - x) c }

serveAdd : Service AddT
serveAdd [s] c = match c with {
  SeqC c -> let (x, c) = receiveInt [?Seq Int -Int.s] c in
            match c with {
              SeqC c -> let (y, c) = receiveInt [!Int.s] c in
                        sendInt [s] (x + y) c }}

serveArith : Service ArithT
serveArith = either [NegT] serveNeg [AddT] serveAdd

serveAriths : Service (Repeat ArithT)
serveAriths = repeat [ArithT] serveArith

-- Client: two adds, one neg, quit. Note the tag overhead the paper
-- discusses in App. A.6: More, Right, Seq, Seq … per request.
askAdd : Int -> Int -> !Repeat ArithT.End! -> (Int, !Repeat ArithT.End!)
askAdd x y c =
  let c = select More [ArithT, End!] c in
  let c = select Right [NegT, AddT, !Repeat ArithT.End!] c in
  let c = select SeqC [Int, Seq Int -Int, !Repeat ArithT.End!] c in
  let c = sendInt [!Seq Int -Int.!Repeat ArithT.End!] x c in
  let c = select SeqC [Int, -Int, !Repeat ArithT.End!] c in
  let c = sendInt [?Int.!Repeat ArithT.End!] y c in
  receiveInt [!Repeat ArithT.End!] c

askNeg : Int -> !Repeat ArithT.End! -> (Int, !Repeat ArithT.End!)
askNeg x c =
  let c = select More [ArithT, End!] c in
  let c = select Left [NegT, AddT, !Repeat ArithT.End!] c in
  let c = select SeqC [Int, -Int, !Repeat ArithT.End!] c in
  let c = sendInt [?Int.!Repeat ArithT.End!] x c in
  receiveInt [!Repeat ArithT.End!] c

main : Unit
main =
  let (client, srv) = new [!Repeat ArithT.End!] in
  let _ = fork (\u -> serveAriths [End?] srv |> wait) in
  let (a, client) = askAdd 20 22 client in
  let _ = printInt a in
  let (b, client) = askNeg a client in
  let _ = printInt b in
  let (s, client) = askAdd a b client in
  let _ = printInt s in
  select Quit [ArithT, End!] client |> terminate
"#;

fn main() {
    let module = check_source(PROGRAM).unwrap_or_else(|e| {
        eprintln!("type error: {e}");
        std::process::exit(1);
    });
    println!("generic servers type-checked:");
    for name in ["either", "repeat", "serveArith", "serveAriths"] {
        println!("  {name} : {}", module.sig(name).expect("declared"));
    }
    let interp = Interp::new(&module).echo(true);
    interp
        .run_timeout("main", Duration::from_secs(10))
        .unwrap_or_else(|e| {
            eprintln!("runtime error: {e}");
            std::process::exit(1);
        });
    let stats = interp.stats();
    println!("expected: 42, -42, 0");
    println!(
        "tag messages: {} (the App. A.6 overhead of composing generic parts)",
        stats.tags_sent.load(std::sync::atomic::Ordering::Relaxed)
    );
}
