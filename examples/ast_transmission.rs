//! Section 2.1 of the paper: transmit abstract syntax trees — a protocol
//! **beyond regular session types** (the recursion is not tail recursion),
//! yet type checked here in linear time thanks to nominal algebraic
//! protocols.
//!
//! ```text
//! cargo run --example ast_transmission
//! ```

use algst::check::check_source;
use algst::runtime::Interp;
use std::time::Duration;

const PROGRAM: &str = r#"
data Ast = Con Int | Add Ast Ast
protocol AstP = ConP Int | AddP AstP AstP

sendAst : Ast -> forall (s:S). !AstP.s -> s
sendAst t [s] c = case t of {
  Con x -> select ConP [s] c |> sendInt [s] x,
  Add l r -> select AddP [s] c |> sendAst l [!AstP.s] |> sendAst r [s] }

recvAst : forall (s:S). ?AstP.s -> (Ast, s)
recvAst [s] c = match c with {
  ConP c -> let (x, c) = receiveInt [s] c in (Con x, c),
  AddP c -> let (tl, c) = recvAst [?AstP.s] c in
            let (tr, c) = recvAst [s] c in (Add tl tr, c) }

eval : Ast -> Int
eval t = case t of {
  Con x -> x,
  Add l r -> eval l + eval r }

-- ((1+2)+(3+4)) + 5
sample : Ast
sample = Add (Add (Add (Con 1) (Con 2)) (Add (Con 3) (Con 4))) (Con 5)

main : Unit
main =
  let (tx, rx) = new [!AstP.End!] in
  let _ = fork (\u -> sendAst sample [End!] tx |> terminate) in
  let (tree, rx) = recvAst [End?] rx in
  let _ = printInt (eval tree) in
  wait rx
"#;

fn main() {
    let module = check_source(PROGRAM).unwrap_or_else(|e| {
        eprintln!("type error: {e}");
        std::process::exit(1);
    });
    println!("sendAst : {}", module.sig("sendAst").expect("declared"));
    println!("recvAst : {}", module.sig("recvAst").expect("declared"));
    let interp = Interp::new(&module).echo(true);
    interp
        .run_timeout("main", Duration::from_secs(10))
        .unwrap_or_else(|e| {
            eprintln!("runtime error: {e}");
            std::process::exit(1);
        });
    println!("expected: 15");
    println!(
        "(every AddP tag pushes *two* subtree transmissions on the channel type — \
         non-tail recursion in the protocol)"
    );
}
