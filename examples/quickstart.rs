//! Quickstart: declare an algebraic protocol, type check a program
//! against it, and run it on the thread-and-channel runtime.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use algst::check::check_source;
use algst::runtime::Interp;
use std::time::Duration;

const PROGRAM: &str = r#"
-- The introduction's IntList protocol: a finite sequence of integers.
protocol IntListP = Nil | Cons Int IntListP

-- Sender: counts n down to 1 over the channel.
sendRange : Int -> forall (s:S). !IntListP.s -> s
sendRange n [s] c =
  if n == 0 then select Nil [s] c
  else select Cons [s] c |> sendInt [!IntListP.s] n |> sendRange (n - 1) [s]

-- Receiver: sums the sequence.
sumList : Int -> forall (s:S). ?IntListP.s -> (Int, s)
sumList acc [s] c = match c with {
  Nil c -> (acc, c),
  Cons c -> let (x, c) = receiveInt [?IntListP.s] c in
            sumList (acc + x) [s] c }

main : Unit
main =
  let (tx, rx) = new [!IntListP.End!] in
  let _ = fork (\u -> sendRange 10 [End!] tx |> terminate) in
  let (total, rx) = sumList 0 [End?] rx in
  let _ = printInt total in
  wait rx
"#;

fn main() {
    let module = check_source(PROGRAM).unwrap_or_else(|e| {
        eprintln!("type error: {e}");
        std::process::exit(1);
    });
    println!(
        "type of sendRange: {}",
        module.sig("sendRange").expect("declared")
    );
    println!(
        "type of sumList:   {}",
        module.sig("sumList").expect("declared")
    );

    let interp = Interp::new(&module).echo(true);
    match interp.run_timeout("main", Duration::from_secs(10)) {
        Ok(_) => println!("done: 10+9+…+1 = 55 expected above"),
        Err(e) => {
            eprintln!("runtime error: {e}");
            std::process::exit(1);
        }
    }
}
