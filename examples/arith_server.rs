//! The arithmetic server of paper Section 2.2: a protocol with
//! *polarities* (`Neg Int -Int | Add Int Int -Int`), its server, and a
//! client, running over real channels.
//!
//! ```text
//! cargo run --example arith_server
//! ```

use algst::check::check_source;
use algst::runtime::Interp;
use std::time::Duration;

const PROGRAM: &str = r#"
-- `-Int` flips the direction: the server *sends* the result.
protocol Arith = Neg Int -Int | Add Int Int -Int

-- A wrapper protocol so one session can carry many requests.
protocol Calls = Call Arith Calls | Hangup

serveArith : forall (s:S). ?Arith.s -> s
serveArith [s] c = match c with {
  Neg c -> let (x, c) = receiveInt [!Int.s] c in
           sendInt [s] (0 - x) c,
  Add c -> let (x, c) = receiveInt [?Int.!Int.s] c in
           let (y, c) = receiveInt [!Int.s] c in
           sendInt [s] (x + y) c }

server : ?Calls.End? -> Unit
server c = match c with {
  Hangup c -> wait c,
  Call c -> serveArith [?Calls.End?] c |> server }

askNeg : Int -> !Calls.End! -> (Int, !Calls.End!)
askNeg x c =
  let c = select Call [End!] c in
  let c = select Neg [!Calls.End!] c in
  let c = sendInt [?Int.!Calls.End!] x c in
  receiveInt [!Calls.End!] c

askAdd : Int -> Int -> !Calls.End! -> (Int, !Calls.End!)
askAdd x y c =
  let c = select Call [End!] c in
  let c = select Add [!Calls.End!] c in
  let c = sendInt [!Int.?Int.!Calls.End!] x c in
  let c = sendInt [?Int.!Calls.End!] y c in
  receiveInt [!Calls.End!] c

main : Unit
main =
  let (client, srv) = new [!Calls.End!] in
  let _ = fork (\u -> server srv) in
  let (a, client) = askAdd 30 12 client in
  let _ = printInt a in
  let (b, client) = askNeg a client in
  let _ = printInt b in
  let (cc, client) = askAdd a b client in
  let _ = printInt cc in
  select Hangup [End!] client |> terminate
"#;

fn main() {
    let module = check_source(PROGRAM).unwrap_or_else(|e| {
        eprintln!("type error: {e}");
        std::process::exit(1);
    });
    println!("Arith session, as seen by the client after `select Neg`:");
    println!("  select Neg [s] : !Arith.s -> !Int.?Int.s   (polarity flips the reply)");
    let interp = Interp::new(&module).echo(true);
    interp
        .run_timeout("main", Duration::from_secs(10))
        .unwrap_or_else(|e| {
            eprintln!("runtime error: {e}");
            std::process::exit(1);
        });
    println!("expected: 42, -42, 0");
}
