//! The interpreter (paper Figs. 6 and 7, Section 5 "Interpretation").
//!
//! * Expressions reduce call-by-value, mirroring the labelled transition
//!   system of Fig. 6 (β-reductions are ordinary evaluation; session
//!   actions hit real channels).
//! * Processes are mapped to OS threads: `fork` spawns a thread running
//!   `v *` (rule Act-Fork); `new [T]` creates a channel and returns the
//!   pair of its endpoints (rule Act-New).
//! * Types are erased: `Λα.v` evaluates to `v`, `e[T]` to `e` — except for
//!   `new [T]`, whose reduction *is* the type application.

use crate::channel::{channel_pair, ChanError};
use crate::value::{Env, PrimHead, Value};
use algst_check::Module;
use algst_core::expr::{Builtin, Const, Expr};
use algst_core::symbol::Symbol;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A run-time failure. For well-typed programs only [`RuntimeError::Timeout`]
/// (from [`Interp::run_timeout`]) and I/O-ish conditions can occur; the
/// rest are dynamic checks guarding the interpreter itself.
#[derive(Clone, Debug)]
pub enum RuntimeError {
    Unbound(Symbol),
    NotAFunction(&'static str),
    NotAPair(&'static str),
    NotABool(&'static str),
    NotAChannel(&'static str),
    NoSuchArm(Symbol),
    Channel(ChanError),
    DivisionByZero,
    /// `run_timeout` expired — the process network is deadlocked or
    /// diverging.
    Timeout,
    ThreadPanic,
    NoSuchGlobal(Symbol),
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::Unbound(x) => write!(f, "unbound variable {x} at run time"),
            RuntimeError::NotAFunction(d) => write!(f, "cannot apply {d}"),
            RuntimeError::NotAPair(d) => write!(f, "cannot destructure {d} as a pair"),
            RuntimeError::NotABool(d) => write!(f, "condition evaluated to {d}"),
            RuntimeError::NotAChannel(d) => write!(f, "session operation on {d}"),
            RuntimeError::NoSuchArm(t) => write!(f, "no arm for tag {t}"),
            RuntimeError::Channel(e) => write!(f, "{e}"),
            RuntimeError::DivisionByZero => write!(f, "division by zero"),
            RuntimeError::Timeout => write!(f, "timeout: deadlocked or diverging process network"),
            RuntimeError::ThreadPanic => write!(f, "a forked thread panicked"),
            RuntimeError::NoSuchGlobal(x) => write!(f, "no definition named {x}"),
        }
    }
}

impl std::error::Error for RuntimeError {}

impl From<ChanError> for RuntimeError {
    fn from(e: ChanError) -> Self {
        RuntimeError::Channel(e)
    }
}

/// Counters for the dynamic behaviour of a run. Used by the paper-adjacent
/// experiments (App. A.6 tagging overhead; sync vs. async throughput).
#[derive(Debug, Default)]
pub struct RuntimeStats {
    pub values_sent: AtomicU64,
    pub tags_sent: AtomicU64,
    pub closes_sent: AtomicU64,
    pub channels_created: AtomicU64,
    pub threads_spawned: AtomicU64,
}

impl RuntimeStats {
    /// Total number of messages of any kind.
    pub fn messages(&self) -> u64 {
        self.values_sent.load(Ordering::Relaxed)
            + self.tags_sent.load(Ordering::Relaxed)
            + self.closes_sent.load(Ordering::Relaxed)
    }
}

type Handles = Arc<Mutex<Vec<JoinHandle<Result<(), RuntimeError>>>>>;

/// The interpreter for a checked [`Module`].
///
/// Cloning an `Interp` is cheap (all state is shared); forked threads run
/// on clones.
#[derive(Clone)]
pub struct Interp {
    globals: Arc<HashMap<Symbol, Arc<Expr>>>,
    handles: Handles,
    stats: Arc<RuntimeStats>,
    output: Arc<Mutex<Vec<String>>>,
    /// Channel capacity: 0 = synchronous rendezvous (paper default),
    /// n > 0 = asynchronous bounded queues.
    capacity: usize,
    /// Echo `printInt`/`printStr` to stdout in addition to capturing.
    echo: bool,
}

impl Interp {
    /// Builds an interpreter with synchronous channels.
    pub fn new(module: &Module) -> Interp {
        Interp::with_capacity(module, 0)
    }

    /// Builds an interpreter with the given channel capacity
    /// (0 = rendezvous).
    pub fn with_capacity(module: &Module, capacity: usize) -> Interp {
        Interp {
            globals: Arc::new(module.globals()),
            handles: Arc::new(Mutex::new(Vec::new())),
            stats: Arc::new(RuntimeStats::default()),
            output: Arc::new(Mutex::new(Vec::new())),
            capacity,
            echo: false,
        }
    }

    /// Enables echoing of `printInt`/`printStr` to stdout.
    pub fn echo(mut self, on: bool) -> Interp {
        self.echo = on;
        self
    }

    /// Counters collected during the run.
    pub fn stats(&self) -> &RuntimeStats {
        &self.stats
    }

    /// Lines produced by `printInt`/`printStr`.
    pub fn output(&self) -> Vec<String> {
        self.output.lock().clone()
    }

    /// Evaluates the global `name` (usually `main`) and joins all forked
    /// threads.
    ///
    /// # Errors
    /// Propagates run-time errors from the main expression or any forked
    /// thread.
    pub fn run(&self, name: &str) -> Result<Value, RuntimeError> {
        let sym = Symbol::intern(name);
        let expr = self
            .globals
            .get(&sym)
            .cloned()
            .ok_or(RuntimeError::NoSuchGlobal(sym))?;
        let v = self.eval(&Env::empty(), &expr)?;
        self.join_all()?;
        Ok(v)
    }

    /// Like [`Interp::run`], but gives up after `timeout` — the safety net
    /// the paper's deadlock-permitting progress theorem (Theorem 5) makes
    /// advisable.
    pub fn run_timeout(&self, name: &str, timeout: Duration) -> Result<Value, RuntimeError> {
        let me = self.clone();
        let name = name.to_owned();
        let (tx, rx) = crossbeam::channel::bounded(1);
        std::thread::spawn(move || {
            let _ = tx.send(me.run(&name));
        });
        rx.recv_timeout(timeout)
            .unwrap_or(Err(RuntimeError::Timeout))
    }

    fn join_all(&self) -> Result<(), RuntimeError> {
        loop {
            let handle = {
                let mut hs = self.handles.lock();
                match hs.pop() {
                    Some(h) => h,
                    None => return Ok(()),
                }
            };
            match handle.join() {
                Ok(r) => r?,
                Err(_) => return Err(RuntimeError::ThreadPanic),
            }
        }
    }

    // -------------------------------------------------------------- eval

    /// Call-by-value evaluation.
    pub fn eval(&self, env: &Env, e: &Expr) -> Result<Value, RuntimeError> {
        match e {
            Expr::Lit(l) => Ok(match l {
                algst_core::expr::Lit::Unit => Value::Unit,
                algst_core::expr::Lit::Int(n) => Value::Int(*n),
                algst_core::expr::Lit::Bool(b) => Value::Bool(*b),
                algst_core::expr::Lit::Char(c) => Value::Char(*c),
                algst_core::expr::Lit::Str(s) => Value::Str(s.clone()),
            }),
            Expr::Const(c) => Ok(Value::Prim(PrimHead::Const(*c), Vec::new())),
            Expr::Builtin(b) => Ok(Value::Prim(PrimHead::Builtin(*b), Vec::new())),
            Expr::Var(x) => {
                if let Some(v) = env.lookup(*x) {
                    return Ok(v.clone());
                }
                match self.globals.get(x) {
                    Some(def) => self.eval(&Env::empty(), def),
                    None => Err(RuntimeError::Unbound(*x)),
                }
            }
            Expr::Abs(param, _, body) | Expr::AbsU(param, body) => Ok(Value::Closure {
                env: env.clone(),
                param: *param,
                body: body.clone(),
            }),
            Expr::App(f, a) => {
                let fv = self.eval(env, f)?;
                let av = self.eval(env, a)?;
                self.apply(fv, av)
            }
            // Type erasure (Λ and [T]) — except Act-New, which fires here.
            Expr::TAbs(_, _, v) => self.eval(env, v),
            Expr::TApp(f, _) => {
                let fv = self.eval(env, f)?;
                if let Value::Prim(PrimHead::Const(Const::New), args) = &fv {
                    debug_assert!(args.is_empty());
                    let (a, b) = channel_pair(self.capacity);
                    self.stats.channels_created.fetch_add(1, Ordering::Relaxed);
                    return Ok(Value::pair(Value::Chan(a), Value::Chan(b)));
                }
                Ok(fv)
            }
            Expr::Rec(name, _, body) => Ok(Value::RecClosure {
                env: env.clone(),
                name: *name,
                body: body.clone(),
            }),
            Expr::Pair(a, b) => Ok(Value::pair(self.eval(env, a)?, self.eval(env, b)?)),
            Expr::LetPair(x, y, bound, body) => {
                let bv = self.eval(env, bound)?;
                let Value::Pair(a, b) = bv else {
                    return Err(RuntimeError::NotAPair(bv.describe()));
                };
                let env = env.bind(*x, *a).bind(*y, *b);
                self.eval(&env, body)
            }
            Expr::LetUnit(bound, body) => {
                self.eval(env, bound)?;
                self.eval(env, body)
            }
            Expr::Let(x, bound, body) => {
                let bv = self.eval(env, bound)?;
                self.eval(&env.bind(*x, bv), body)
            }
            Expr::If(c, t, f) => {
                let cv = self.eval(env, c)?;
                match cv {
                    Value::Bool(true) => self.eval(env, t),
                    Value::Bool(false) => self.eval(env, f),
                    other => Err(RuntimeError::NotABool(other.describe())),
                }
            }
            Expr::Con(tag, args) => {
                let vs = args
                    .iter()
                    .map(|a| self.eval(env, a))
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(Value::Con(*tag, vs))
            }
            Expr::Case(scrutinee, arms) => {
                let sv = self.eval(env, scrutinee)?;
                match sv {
                    // Session match (rule Act-Match): receive a tag,
                    // rebind the channel in the chosen arm.
                    Value::Chan(chan) => {
                        let tag = chan.recv_tag()?;
                        let arm = arms
                            .iter()
                            .find(|a| a.tag == tag)
                            .ok_or(RuntimeError::NoSuchArm(tag))?;
                        let env = env.bind(arm.binders[0], Value::Chan(chan));
                        self.eval(&env, &arm.body)
                    }
                    // Data case: bind the constructor fields.
                    Value::Con(tag, fields) => {
                        let arm = arms
                            .iter()
                            .find(|a| a.tag == tag)
                            .ok_or(RuntimeError::NoSuchArm(tag))?;
                        let mut env = env.clone();
                        for (b, v) in arm.binders.iter().zip(fields) {
                            env = env.bind(*b, v);
                        }
                        self.eval(&env, &arm.body)
                    }
                    other => Err(RuntimeError::NotAChannel(other.describe())),
                }
            }
        }
    }

    /// Applies `f` to `a` (rules Act-App, Act-Rec and the session/builtin
    /// constants of Fig. 6).
    pub fn apply(&self, f: Value, a: Value) -> Result<Value, RuntimeError> {
        match f {
            Value::Closure { env, param, body } => self.eval(&env.bind(param, a), &body),
            // (rec x:T.v) u  →  (v[rec x:T.v / x]) u
            Value::RecClosure { env, name, body } => {
                let unfolding = Value::RecClosure {
                    env: env.clone(),
                    name,
                    body: body.clone(),
                };
                let unfolded = self.eval(&env.bind(name, unfolding), &body)?;
                self.apply(unfolded, a)
            }
            Value::Prim(head, mut args) => {
                args.push(a);
                if args.len() < head.arity() {
                    return Ok(Value::Prim(head, args));
                }
                self.run_prim(head, args)
            }
            other => Err(RuntimeError::NotAFunction(other.describe())),
        }
    }

    fn run_prim(&self, head: PrimHead, mut args: Vec<Value>) -> Result<Value, RuntimeError> {
        match head {
            PrimHead::Const(c) => match c {
                Const::New => unreachable!("new fires on type application"),
                // Act-Fork: spawn ⟨v *⟩.
                Const::Fork => {
                    let v = args.pop().expect("arity checked");
                    let me = self.clone();
                    self.stats.threads_spawned.fetch_add(1, Ordering::Relaxed);
                    let handle = std::thread::spawn(move || me.apply(v, Value::Unit).map(|_| ()));
                    self.handles.lock().push(handle);
                    Ok(Value::Unit)
                }
                Const::Send => {
                    let chan = args.pop().expect("arity checked");
                    let v = args.pop().expect("arity checked");
                    let Value::Chan(chan) = chan else {
                        return Err(RuntimeError::NotAChannel(chan.describe()));
                    };
                    chan.send_val(v)?;
                    self.stats.values_sent.fetch_add(1, Ordering::Relaxed);
                    Ok(Value::Chan(chan))
                }
                Const::Receive => {
                    let chan = args.pop().expect("arity checked");
                    let Value::Chan(chan) = chan else {
                        return Err(RuntimeError::NotAChannel(chan.describe()));
                    };
                    let v = chan.recv_val()?;
                    Ok(Value::pair(v, Value::Chan(chan)))
                }
                Const::Select(tag) => {
                    let chan = args.pop().expect("arity checked");
                    let Value::Chan(chan) = chan else {
                        return Err(RuntimeError::NotAChannel(chan.describe()));
                    };
                    chan.send_tag(tag)?;
                    self.stats.tags_sent.fetch_add(1, Ordering::Relaxed);
                    Ok(Value::Chan(chan))
                }
                Const::Terminate => {
                    let chan = args.pop().expect("arity checked");
                    let Value::Chan(chan) = chan else {
                        return Err(RuntimeError::NotAChannel(chan.describe()));
                    };
                    chan.send_close()?;
                    self.stats.closes_sent.fetch_add(1, Ordering::Relaxed);
                    Ok(Value::Unit)
                }
                Const::Wait => {
                    let chan = args.pop().expect("arity checked");
                    let Value::Chan(chan) = chan else {
                        return Err(RuntimeError::NotAChannel(chan.describe()));
                    };
                    chan.recv_close()?;
                    Ok(Value::Unit)
                }
            },
            PrimHead::Builtin(b) => self.run_builtin(b, args),
        }
    }

    fn run_builtin(&self, b: Builtin, args: Vec<Value>) -> Result<Value, RuntimeError> {
        use Builtin::*;
        let int = |v: &Value| v.as_int().ok_or(RuntimeError::NotABool(v.describe()));
        match b {
            Add | Sub | Mul | Div | Mod | Eq | Neq | Lt | Leq | Gt | Geq => {
                let x = int(&args[0])?;
                let y = int(&args[1])?;
                Ok(match b {
                    Add => Value::Int(x.wrapping_add(y)),
                    Sub => Value::Int(x.wrapping_sub(y)),
                    Mul => Value::Int(x.wrapping_mul(y)),
                    Div => {
                        if y == 0 {
                            return Err(RuntimeError::DivisionByZero);
                        }
                        Value::Int(x / y)
                    }
                    Mod => {
                        if y == 0 {
                            return Err(RuntimeError::DivisionByZero);
                        }
                        Value::Int(x % y)
                    }
                    Eq => Value::Bool(x == y),
                    Neq => Value::Bool(x != y),
                    Lt => Value::Bool(x < y),
                    Leq => Value::Bool(x <= y),
                    Gt => Value::Bool(x > y),
                    Geq => Value::Bool(x >= y),
                    _ => unreachable!(),
                })
            }
            Negate => Ok(Value::Int(-int(&args[0])?)),
            Not => match &args[0] {
                Value::Bool(x) => Ok(Value::Bool(!x)),
                v => Err(RuntimeError::NotABool(v.describe())),
            },
            And | Or => match (&args[0], &args[1]) {
                (Value::Bool(x), Value::Bool(y)) => {
                    Ok(Value::Bool(if b == And { *x && *y } else { *x || *y }))
                }
                (v, _) => Err(RuntimeError::NotABool(v.describe())),
            },
            PrintInt => {
                let n = int(&args[0])?;
                self.emit(n.to_string());
                Ok(Value::Unit)
            }
            PrintStr => match &args[0] {
                Value::Str(s) => {
                    self.emit(s.clone());
                    Ok(Value::Unit)
                }
                v => Err(RuntimeError::NotABool(v.describe())),
            },
            IntToStr => Ok(Value::Str(int(&args[0])?.to_string())),
        }
    }

    fn emit(&self, line: String) {
        if self.echo {
            println!("{line}");
        }
        self.output.lock().push(line);
    }
}
