//! # algst-runtime
//!
//! Thread-and-channel interpreter for checked AlgST programs, following
//! the operational semantics of the paper (Figs. 6, 7) and the
//! implementation strategy of Section 5: processes are OS threads,
//! synchronous channels are rendezvous (the paper uses `MVar` pairs; we
//! use zero-capacity crossbeam channels), and an asynchronous mode uses
//! bounded queues (the paper's `TBQueue` option).
//!
//! ```
//! use std::time::Duration;
//!
//! let module = algst_check::check_source(r#"
//! main : Unit
//! main =
//!   let (c, d) = new [!Int.End!] in
//!   let _ = fork (\u -> let (x, d) = receiveInt [End?] d in
//!                       let _ = printInt x in wait d) in
//!   sendInt [End!] 41 c |> terminate
//! "#).expect("type checks");
//!
//! let interp = algst_runtime::Interp::new(&module);
//! interp.run_timeout("main", Duration::from_secs(5)).expect("runs");
//! assert_eq!(interp.output(), vec!["41".to_string()]);
//! ```

pub mod channel;
pub mod interp;
pub mod step;
pub mod value;

pub use channel::{channel_pair, ChanEnd, ChanError, Msg};
pub use interp::{Interp, RuntimeError, RuntimeStats};
pub use value::{Env, Value};
