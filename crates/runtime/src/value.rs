//! Run-time values and environments.
//!
//! Following the paper's implementation notes (Section 5), the interpreter
//! "uses one universal type with constructors for each type in the
//! language". Types are erased at run time; type abstraction/application
//! evaluate to the underlying value.

use crate::channel::ChanEnd;
use algst_core::expr::{Builtin, Const, Expr};
use algst_core::symbol::Symbol;
use std::fmt;
use std::sync::Arc;

/// A persistent environment: an immutable linked list with O(1) extension
/// and cheap cloning, so closures can capture it and values can cross
/// threads.
#[derive(Clone, Default)]
pub struct Env(Option<Arc<EnvNode>>);

struct EnvNode {
    name: Symbol,
    value: Value,
    next: Env,
}

impl Env {
    pub fn empty() -> Env {
        Env(None)
    }

    /// Returns a new environment with `name ↦ value` on top.
    pub fn bind(&self, name: Symbol, value: Value) -> Env {
        Env(Some(Arc::new(EnvNode {
            name,
            value,
            next: self.clone(),
        })))
    }

    /// Looks up the most recent binding of `name`.
    pub fn lookup(&self, name: Symbol) -> Option<&Value> {
        let mut cur = self;
        while let Some(node) = &cur.0 {
            if node.name == name {
                return Some(&node.value);
            }
            cur = &node.next;
        }
        None
    }
}

impl fmt::Debug for Env {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut names = Vec::new();
        let mut cur = self;
        while let Some(node) = &cur.0 {
            names.push(node.name);
            cur = &node.next;
        }
        write!(f, "Env{names:?}")
    }
}

/// The head of a partially applied primitive.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum PrimHead {
    Const(Const),
    Builtin(Builtin),
}

impl PrimHead {
    /// Term arguments needed before the primitive fires.
    pub fn arity(self) -> usize {
        match self {
            PrimHead::Const(c) => match c {
                Const::Fork | Const::Wait | Const::Terminate | Const::Receive => 1,
                Const::Send => 2,
                Const::Select(_) => 1,
                // `new` fires on type application, not term application.
                Const::New => 0,
            },
            PrimHead::Builtin(b) => b.arity(),
        }
    }
}

/// A run-time value (the "universal type").
#[derive(Clone)]
pub enum Value {
    Unit,
    Int(i64),
    Bool(bool),
    Char(char),
    Str(String),
    Pair(Box<Value>, Box<Value>),
    /// `λx.e` with its captured environment.
    Closure {
        env: Env,
        param: Symbol,
        body: Arc<Expr>,
    },
    /// A suspended `rec x:T.v`: unfolds one step when applied.
    RecClosure {
        env: Env,
        name: Symbol,
        body: Arc<Expr>,
    },
    /// One endpoint of a communication channel.
    Chan(ChanEnd),
    /// A saturated data constructor.
    Con(Symbol, Vec<Value>),
    /// A partially applied constant or builtin.
    Prim(PrimHead, Vec<Value>),
}

impl Value {
    pub fn pair(a: Value, b: Value) -> Value {
        Value::Pair(Box::new(a), Box::new(b))
    }

    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Short tag for error messages.
    pub fn describe(&self) -> &'static str {
        match self {
            Value::Unit => "unit",
            Value::Int(_) => "an integer",
            Value::Bool(_) => "a boolean",
            Value::Char(_) => "a character",
            Value::Str(_) => "a string",
            Value::Pair(..) => "a pair",
            Value::Closure { .. } | Value::RecClosure { .. } => "a function",
            Value::Chan(_) => "a channel endpoint",
            Value::Con(..) => "a data value",
            Value::Prim(..) => "a primitive",
        }
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Unit => write!(f, "()"),
            Value::Int(n) => write!(f, "{n}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Char(c) => write!(f, "{c:?}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Pair(a, b) => write!(f, "({a:?}, {b:?})"),
            Value::Closure { param, .. } => write!(f, "<closure \\{param}>"),
            Value::RecClosure { name, .. } => write!(f, "<rec {name}>"),
            Value::Chan(c) => write!(f, "<channel #{}>", c.id()),
            Value::Con(tag, args) => {
                write!(f, "{tag}")?;
                for a in args {
                    write!(f, " {a:?}")?;
                }
                Ok(())
            }
            Value::Prim(head, args) => write!(f, "<prim {head:?}/{}>", args.len()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(x: &str) -> Symbol {
        Symbol::intern(x)
    }

    #[test]
    fn env_lookup_finds_most_recent() {
        let env = Env::empty()
            .bind(s("x"), Value::Int(1))
            .bind(s("x"), Value::Int(2));
        assert_eq!(env.lookup(s("x")).unwrap().as_int(), Some(2));
        assert!(env.lookup(s("y")).is_none());
    }

    #[test]
    fn env_is_persistent() {
        let base = Env::empty().bind(s("x"), Value::Int(1));
        let _ext = base.bind(s("x"), Value::Int(2));
        assert_eq!(base.lookup(s("x")).unwrap().as_int(), Some(1));
    }

    #[test]
    fn prim_arities() {
        assert_eq!(PrimHead::Const(Const::Send).arity(), 2);
        assert_eq!(PrimHead::Const(Const::Fork).arity(), 1);
        assert_eq!(PrimHead::Builtin(Builtin::Add).arity(), 2);
        assert_eq!(PrimHead::Builtin(Builtin::Not).arity(), 1);
    }

    #[test]
    fn values_are_send_and_sync() {
        fn assert_send<T: Send + Sync>() {}
        assert_send::<Value>();
        assert_send::<Env>();
    }
}
