//! A small-step reducer for the *pure* (session-free) fragment of the
//! expression LTS (paper Fig. 6 / supplement Fig. 11).
//!
//! The big-step interpreter ([`crate::interp`]) realizes the semantics
//! efficiently; this module realizes it *literally*, one labelled
//! transition at a time, so the metatheory can be tested:
//!
//! * **Preservation** (Theorem 4): each β-step preserves the synthesized
//!   type up to `≡_A`.
//! * **Progress** (Theorem 5): a well-typed pure expression is a value or
//!   steps.
//!
//! Session and I/O actions are not reduced here — they are reported as
//! [`Step::Action`], corresponding to the non-β labels of the LTS.

use algst_core::expr::{Builtin, Const, Expr, Lit};
use algst_core::symbol::Symbol;
use std::collections::HashMap;
use std::sync::Arc;

/// Result of attempting one reduction step.
#[derive(Clone, Debug)]
pub enum Step {
    /// The expression is a value (no transitions).
    Value,
    /// One β-labelled step (rules Act-App, Act-TApp, Act-Let, Act-Let*,
    /// Act-Rec, plus the extensions: if, data case, pure builtins).
    Next(Expr),
    /// The redex is a session/effect action (`send`, `receive`, `fork`,
    /// `new`, `select`, `match` on a channel, `wait`, `terminate`,
    /// printing) — a non-β label the pure reducer does not consume.
    Action(&'static str),
    /// The expression is stuck: not a value, no rule applies. Cannot
    /// happen for well-typed expressions (Theorem 5).
    Stuck(String),
}

/// Attempts one small step of `e`. Free variables are resolved through
/// `globals` (module-level definitions behave like unrestricted
/// `rec`-bindings: a reference unfolds to its definition).
pub fn step(globals: &HashMap<Symbol, Arc<Expr>>, e: &Expr) -> Step {
    if e.is_value() && !matches!(e, Expr::Var(_)) {
        // Variables referring to globals unfold below; all other values
        // have no transitions.
        if let Some(s) = step_inside_value(globals, e) {
            return s;
        }
        return Step::Value;
    }
    match e {
        Expr::Var(x) => match globals.get(x) {
            Some(def) => Step::Next((**def).clone()),
            None => Step::Stuck(format!("unbound variable {x}")),
        },
        Expr::App(f, a) => {
            if !f.is_value() {
                return map_next(step(globals, f), |f2| Expr::app(f2, (**a).clone()));
            }
            if !a.is_value() {
                return map_next(step(globals, a), |a2| Expr::app((**f).clone(), a2));
            }
            apply(globals, f, a)
        }
        Expr::TApp(f, t) => {
            if !f.is_value() {
                return map_next(step(globals, f), |f2| Expr::TApp(Arc::new(f2), t.clone()));
            }
            match &**f {
                // Act-TApp: (Λα:κ.v)[T] → v[T/α]
                Expr::TAbs(alpha, _, v) => Step::Next(v.subst_tyvar(*alpha, t)),
                // new [T] creates a channel — a ν-labelled action.
                Expr::Const(Const::New) => Step::Action("new"),
                // Module-level definitions unfold like rec-bindings.
                Expr::Var(x) => match globals.get(x) {
                    Some(def) => Step::Next(Expr::TApp(Arc::new((**def).clone()), t.clone())),
                    None => Step::Stuck(format!("type application of unbound {x}")),
                },
                // Partial constants absorb type arguments silently; the
                // application node is already a value, handled above.
                _ => Step::Stuck("type application of a non-Λ value".into()),
            }
        }
        // Act-Let*: let * = * in e → e
        Expr::LetUnit(e1, e2) => {
            if !e1.is_value() {
                return map_next(step(globals, e1), |n| Expr::let_unit(n, (**e2).clone()));
            }
            match &**e1 {
                Expr::Lit(Lit::Unit) => Step::Next((**e2).clone()),
                other => Step::Stuck(format!("let * bound to non-unit {other:?}")),
            }
        }
        // Act-Let: let ⟨x,y⟩ = ⟨u,v⟩ in e → e[u/x][v/y]
        Expr::LetPair(x, y, e1, e2) => {
            if !e1.is_value() {
                return map_next(step(globals, e1), |n| {
                    Expr::LetPair(*x, *y, Arc::new(n), e2.clone())
                });
            }
            match &**e1 {
                Expr::Pair(u, v) => Step::Next(e2.subst_var(*x, u).subst_var(*y, v)),
                other => Step::Stuck(format!("let-pair bound to non-pair {other:?}")),
            }
        }
        Expr::Let(x, e1, e2) => {
            if !e1.is_value() {
                return map_next(step(globals, e1), |n| {
                    Expr::Let(*x, Arc::new(n), e2.clone())
                });
            }
            Step::Next(e2.subst_var(*x, e1))
        }
        Expr::If(c, t, f) => {
            if !c.is_value() {
                return map_next(step(globals, c), |n| {
                    Expr::if_(n, (**t).clone(), (**f).clone())
                });
            }
            match &**c {
                Expr::Lit(Lit::Bool(true)) => Step::Next((**t).clone()),
                Expr::Lit(Lit::Bool(false)) => Step::Next((**f).clone()),
                other => Step::Stuck(format!("if on non-boolean {other:?}")),
            }
        }
        Expr::Pair(a, b) => {
            if !a.is_value() {
                return map_next(step(globals, a), |n| Expr::pair(n, (**b).clone()));
            }
            map_next(step(globals, b), |n| Expr::pair((**a).clone(), n))
        }
        Expr::Con(tag, args) => {
            for (i, arg) in args.iter().enumerate() {
                if !arg.is_value() {
                    let tag = *tag;
                    let args = args.clone();
                    return map_next(step(globals, arg), move |n| {
                        let mut args = args.clone();
                        args[i] = n;
                        Expr::Con(tag, args)
                    });
                }
            }
            Step::Value
        }
        Expr::Case(s, arms) => {
            if !s.is_value() {
                let arms = arms.clone();
                return map_next(step(globals, s), move |n| Expr::case(n, arms.clone()));
            }
            match &**s {
                // Data case: Con v̄ selects its arm.
                Expr::Con(tag, fields) => {
                    let Some(arm) = arms.iter().find(|a| a.tag == *tag) else {
                        return Step::Stuck(format!("no arm for {tag}"));
                    };
                    let mut body = arm.body.clone();
                    for (b, v) in arm.binders.iter().zip(fields) {
                        body = body.subst_var(*b, v);
                    }
                    Step::Next(body)
                }
                // Act-Match on a channel: an external action. A global
                // variable unfolds first.
                Expr::Var(x) => match globals.get(x) {
                    Some(def) => {
                        let arms = arms.clone();
                        Step::Next(Expr::case((**def).clone(), arms))
                    }
                    None => Step::Action("match"),
                },
                other => Step::Stuck(format!("case on {other:?}")),
            }
        }
        other => Step::Stuck(format!("no rule for {other:?}")),
    }
}

/// Values never step — except that a *global* variable buried in value
/// position must unfold for evaluation to continue (module references are
/// unrestricted rec-bindings). Returns `None` for genuine values.
fn step_inside_value(globals: &HashMap<Symbol, Arc<Expr>>, e: &Expr) -> Option<Step> {
    match e {
        Expr::Var(x) => globals.get(x).map(|d| Step::Next((**d).clone())),
        _ => None,
    }
}

fn apply(globals: &HashMap<Symbol, Arc<Expr>>, f: &Expr, a: &Expr) -> Step {
    match f {
        // Act-App
        Expr::Abs(x, _, body) | Expr::AbsU(x, body) => Step::Next(body.subst_var(*x, a)),
        // Act-Rec: (rec x:T.v) u → (v[rec x:T.v / x]) u
        Expr::Rec(x, t, v) => {
            let unfolded = v.subst_var(*x, &Expr::Rec(*x, t.clone(), v.clone()));
            Step::Next(Expr::app(unfolded, a.clone()))
        }
        Expr::Var(x) => match globals.get(x) {
            Some(def) => Step::Next(Expr::app((**def).clone(), a.clone())),
            None => Step::Stuck(format!("applying unbound {x}")),
        },
        // Saturating a constant or builtin.
        _ => {
            let (head, mut args) = spine(f);
            args.push(a.clone());
            match head {
                Expr::Builtin(b) => {
                    if args.len() < b.arity() {
                        return Step::Value; // still partial — value
                    }
                    run_builtin(*b, &args)
                }
                Expr::Const(c) => match c {
                    Const::Fork => Step::Action("fork"),
                    Const::Send if args.len() >= 2 => Step::Action("send"),
                    Const::Send => Step::Value,
                    Const::Receive => Step::Action("receive"),
                    Const::Wait => Step::Action("wait"),
                    Const::Terminate => Step::Action("terminate"),
                    Const::Select(_) => Step::Action("select"),
                    Const::New => Step::Stuck("new applied to a term".into()),
                },
                other => Step::Stuck(format!("cannot apply {other:?}")),
            }
        }
    }
}

/// Decomposes nested (type-)applications into head and term arguments.
fn spine(e: &Expr) -> (&Expr, Vec<Expr>) {
    match e {
        Expr::App(f, a) => {
            let (h, mut args) = spine(f);
            args.push((**a).clone());
            (h, args)
        }
        Expr::TApp(f, _) => spine(f),
        _ => (e, Vec::new()),
    }
}

fn run_builtin(b: Builtin, args: &[Expr]) -> Step {
    use Builtin::*;
    let int = |e: &Expr| match e {
        Expr::Lit(Lit::Int(n)) => Some(*n),
        _ => None,
    };
    let boolean = |e: &Expr| match e {
        Expr::Lit(Lit::Bool(x)) => Some(*x),
        _ => None,
    };
    let lit = |l: Lit| Step::Next(Expr::Lit(l));
    match b {
        PrintInt | PrintStr => Step::Action("print"),
        IntToStr => match int(&args[0]) {
            Some(n) => lit(Lit::Str(n.to_string())),
            None => Step::Stuck("intToStr on non-int".into()),
        },
        Negate => match int(&args[0]) {
            Some(n) => lit(Lit::Int(-n)),
            None => Step::Stuck("negate on non-int".into()),
        },
        Not => match boolean(&args[0]) {
            Some(x) => lit(Lit::Bool(!x)),
            None => Step::Stuck("not on non-bool".into()),
        },
        And | Or => match (boolean(&args[0]), boolean(&args[1])) {
            (Some(x), Some(y)) => lit(Lit::Bool(if b == And { x && y } else { x || y })),
            _ => Step::Stuck("boolean builtin on non-bools".into()),
        },
        _ => match (int(&args[0]), int(&args[1])) {
            (Some(x), Some(y)) => match b {
                Add => lit(Lit::Int(x.wrapping_add(y))),
                Sub => lit(Lit::Int(x.wrapping_sub(y))),
                Mul => lit(Lit::Int(x.wrapping_mul(y))),
                Div if y != 0 => lit(Lit::Int(x / y)),
                Mod if y != 0 => lit(Lit::Int(x % y)),
                Div | Mod => Step::Stuck("division by zero".into()),
                Eq => lit(Lit::Bool(x == y)),
                Neq => lit(Lit::Bool(x != y)),
                Lt => lit(Lit::Bool(x < y)),
                Leq => lit(Lit::Bool(x <= y)),
                Gt => lit(Lit::Bool(x > y)),
                Geq => lit(Lit::Bool(x >= y)),
                _ => unreachable!("arity-2 integer builtins covered"),
            },
            _ => Step::Stuck("arithmetic on non-ints".into()),
        },
    }
}

fn map_next(s: Step, f: impl FnOnce(Expr) -> Expr) -> Step {
    match s {
        Step::Next(e) => Step::Next(f(e)),
        other => other,
    }
}

/// Runs `e` to a value by repeated [`step`]s (with a fuel bound).
///
/// # Errors
/// Returns the [`Step`] that stopped evaluation (action, stuck, or fuel
/// exhaustion reported as `Stuck`).
pub fn run_pure(globals: &HashMap<Symbol, Arc<Expr>>, e: &Expr, fuel: usize) -> Result<Expr, Step> {
    let mut current = e.clone();
    for _ in 0..fuel {
        match step(globals, &current) {
            Step::Value => return Ok(current),
            Step::Next(n) => current = n,
            other => return Err(other),
        }
    }
    Err(Step::Stuck("fuel exhausted".into()))
}
