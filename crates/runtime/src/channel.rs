//! Communication channels.
//!
//! The paper's implementation maps synchronous channels to pairs of `MVar`s
//! (a buffer of size one used as a rendezvous) and asynchronous channels to
//! bounded queues (`TBQueue`). We mirror both with crossbeam channels:
//! capacity 0 gives a rendezvous (sender blocks until the receiver
//! arrives), capacity n a bounded queue.
//!
//! A channel has two [`ChanEnd`]s; each end owns a sender for one
//! direction and a receiver for the other, so either side can send or
//! receive as the (already type-checked) protocol dictates.

use crate::value::Value;
use algst_core::symbol::Symbol;
use crossbeam::channel::{bounded, Receiver, Sender};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// What travels over a channel: payload values (`send`/`receive`),
/// selector tags (`select`/`match`) and the closing handshake
/// (`terminate`/`wait`).
#[derive(Clone, Debug)]
pub enum Msg {
    Val(Value),
    Tag(Symbol),
    Close,
}

/// A communication error: the peer endpoint was dropped (its thread
/// failed) or sent something the protocol does not allow at this point.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ChanError {
    Disconnected,
    /// Received `found` where `expected` was required — impossible for
    /// well-typed programs, kept as a dynamic check on the interpreter.
    ProtocolViolation {
        expected: &'static str,
        found: &'static str,
    },
}

impl fmt::Display for ChanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChanError::Disconnected => write!(f, "channel peer disconnected"),
            ChanError::ProtocolViolation { expected, found } => {
                write!(
                    f,
                    "protocol violation: expected {expected}, received {found}"
                )
            }
        }
    }
}

impl std::error::Error for ChanError {}

static NEXT_CHANNEL_ID: AtomicU64 = AtomicU64::new(0);

/// One endpoint of a bidirectional channel.
#[derive(Clone)]
pub struct ChanEnd {
    tx: Sender<Msg>,
    rx: Receiver<Msg>,
    id: u64,
}

impl ChanEnd {
    /// Identifier shared by both ends, for debugging.
    pub fn id(&self) -> u64 {
        self.id
    }

    pub fn send_val(&self, v: Value) -> Result<(), ChanError> {
        self.tx
            .send(Msg::Val(v))
            .map_err(|_| ChanError::Disconnected)
    }

    pub fn send_tag(&self, tag: Symbol) -> Result<(), ChanError> {
        self.tx
            .send(Msg::Tag(tag))
            .map_err(|_| ChanError::Disconnected)
    }

    pub fn send_close(&self) -> Result<(), ChanError> {
        self.tx
            .send(Msg::Close)
            .map_err(|_| ChanError::Disconnected)
    }

    pub fn recv_val(&self) -> Result<Value, ChanError> {
        match self.rx.recv().map_err(|_| ChanError::Disconnected)? {
            Msg::Val(v) => Ok(v),
            Msg::Tag(_) => Err(violation("a value", "a selector tag")),
            Msg::Close => Err(violation("a value", "close")),
        }
    }

    pub fn recv_tag(&self) -> Result<Symbol, ChanError> {
        match self.rx.recv().map_err(|_| ChanError::Disconnected)? {
            Msg::Tag(t) => Ok(t),
            Msg::Val(_) => Err(violation("a selector tag", "a value")),
            Msg::Close => Err(violation("a selector tag", "close")),
        }
    }

    pub fn recv_close(&self) -> Result<(), ChanError> {
        match self.rx.recv().map_err(|_| ChanError::Disconnected)? {
            Msg::Close => Ok(()),
            Msg::Val(_) => Err(violation("close", "a value")),
            Msg::Tag(_) => Err(violation("close", "a selector tag")),
        }
    }
}

fn violation(expected: &'static str, found: &'static str) -> ChanError {
    ChanError::ProtocolViolation { expected, found }
}

impl fmt::Debug for ChanEnd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ChanEnd #{}", self.id)
    }
}

/// Creates a fresh channel, returning its two (dual) endpoints.
///
/// `capacity == 0` yields synchronous rendezvous communication (the
/// paper's default, cf. `MVar` pairs); `capacity > 0` yields asynchronous
/// bounded-queue communication (the paper's `TBQueue` option).
///
/// Note that with `capacity == 0`, crossbeam's zero-capacity channel makes
/// each `send` block until the matching `recv`, exactly the rendezvous of
/// the paper's synchronous semantics.
pub fn channel_pair(capacity: usize) -> (ChanEnd, ChanEnd) {
    let (tx_ab, rx_ab) = bounded(capacity);
    let (tx_ba, rx_ba) = bounded(capacity);
    let id = NEXT_CHANNEL_ID.fetch_add(1, Ordering::Relaxed);
    (
        ChanEnd {
            tx: tx_ab,
            rx: rx_ba,
            id,
        },
        ChanEnd {
            tx: tx_ba,
            rx: rx_ab,
            id,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn rendezvous_roundtrip() {
        let (a, b) = channel_pair(0);
        let t = thread::spawn(move || {
            a.send_val(Value::Int(42)).unwrap();
            a.recv_tag().unwrap()
        });
        assert_eq!(b.recv_val().unwrap().as_int(), Some(42));
        b.send_tag(Symbol::intern("Next")).unwrap();
        assert_eq!(t.join().unwrap(), Symbol::intern("Next"));
    }

    #[test]
    fn async_buffers_without_receiver() {
        let (a, b) = channel_pair(4);
        for i in 0..4 {
            a.send_val(Value::Int(i)).unwrap();
        }
        for i in 0..4 {
            assert_eq!(b.recv_val().unwrap().as_int(), Some(i));
        }
    }

    #[test]
    fn close_handshake() {
        let (a, b) = channel_pair(1);
        a.send_close().unwrap();
        b.recv_close().unwrap();
    }

    #[test]
    fn protocol_violation_detected() {
        let (a, b) = channel_pair(1);
        a.send_val(Value::Unit).unwrap();
        assert!(matches!(
            b.recv_tag(),
            Err(ChanError::ProtocolViolation { .. })
        ));
    }

    #[test]
    fn disconnect_detected() {
        let (a, b) = channel_pair(0);
        drop(a);
        assert!(matches!(b.recv_val(), Err(ChanError::Disconnected)));
    }

    #[test]
    fn both_ends_share_an_id() {
        let (a, b) = channel_pair(0);
        assert_eq!(a.id(), b.id());
    }
}
