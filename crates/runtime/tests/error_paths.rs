//! Error-path conformance: every dynamic failure mode the interpreter
//! can hit must surface as a *typed* error — never a panic. These are
//! the paths the `algst-conform` runtime oracle relies on when it
//! asserts "a generated program either terminates or hits its budget,
//! and anything else is a reportable error".

use algst_core::expr::{Arm, Const, Expr};
use algst_core::symbol::Symbol;
use algst_core::types::Type;
use algst_runtime::channel::{channel_pair, ChanError};
use algst_runtime::interp::{Interp, RuntimeError};
use algst_runtime::step::{run_pure, step, Step};
use algst_runtime::value::{Env, Value};
use std::collections::HashMap;
use std::time::Duration;

/// An interpreter over the empty module (globals resolved to nothing).
fn interp() -> Interp {
    let module = algst_check::check_source("main : Unit\nmain = ()").expect("trivial module");
    Interp::new(&module)
}

// ------------------------------------------------------- step budgets

#[test]
fn step_budget_exhaustion_is_a_typed_stuck_not_a_panic() {
    // Ω = (rec f. \x. f x) () — diverges; the fuel bound must stop it.
    let f = Symbol::intern("f");
    let x = Symbol::intern("x");
    let omega = Expr::app(
        Expr::rec(
            f,
            Type::arrow(Type::Unit, Type::Unit),
            Expr::abs_u(x, Expr::app(Expr::var("f"), Expr::var("x"))),
        ),
        Expr::unit(),
    );
    let globals = HashMap::new();
    match run_pure(&globals, &omega, 1_000) {
        Err(Step::Stuck(reason)) => assert!(
            reason.contains("fuel"),
            "expected fuel exhaustion, got {reason}"
        ),
        other => panic!("diverging term must exhaust fuel, got {other:?}"),
    }
}

#[test]
fn wallclock_budget_exhaustion_is_a_timeout_error() {
    let module = algst_check::check_source(
        // A self-deadlock that still satisfies linearity: both endpoints
        // are (nominally) consumed downstream, but the rendezvous send
        // blocks forever because its receiver lives on the same thread.
        "main : Unit\nmain = let (p, q) = new [!Int.End!] in \
         let p2 = sendInt [End!] 1 p in \
         let (x, q2) = receiveInt [End?] q in \
         let _ = terminate p2 in let _ = printInt x in wait q2",
    )
    .expect("deadlocking program still type checks");
    let interp = Interp::new(&module);
    match interp.run_timeout("main", Duration::from_millis(200)) {
        Err(RuntimeError::Timeout) => {}
        other => panic!("expected Timeout, got {other:?}"),
    }
}

// ------------------------------------------- mismatched branch labels

#[test]
fn mismatched_branch_label_is_no_such_arm() {
    let it = interp();
    let (a, b) = channel_pair(1);
    // Peer selects a tag the receiving match does not offer.
    a.send_tag(Symbol::intern("NotAnArm")).unwrap();
    let arms = vec![Arm {
        tag: Symbol::intern("OnlyArm"),
        binders: vec![Symbol::intern("c")],
        body: Expr::unit(),
    }];
    let scrutinee = Expr::case(Expr::var("ch"), arms);
    let env = Env::empty().bind(Symbol::intern("ch"), Value::Chan(b));
    match it.eval(&env, &scrutinee) {
        Err(RuntimeError::NoSuchArm(tag)) => {
            assert_eq!(tag, Symbol::intern("NotAnArm"));
        }
        other => panic!("expected NoSuchArm, got {other:?}"),
    }
}

#[test]
fn wrong_message_kind_is_a_protocol_violation() {
    let it = interp();
    let (a, b) = channel_pair(1);
    // Peer sends a value where a tag is expected by `match`.
    a.send_val(Value::Int(1)).unwrap();
    let scrutinee = Expr::case(
        Expr::var("ch"),
        vec![Arm {
            tag: Symbol::intern("AnyArm"),
            binders: vec![Symbol::intern("c")],
            body: Expr::unit(),
        }],
    );
    let env = Env::empty().bind(Symbol::intern("ch"), Value::Chan(b));
    match it.eval(&env, &scrutinee) {
        Err(RuntimeError::Channel(ChanError::ProtocolViolation { expected, found })) => {
            assert_eq!(expected, "a selector tag");
            assert_eq!(found, "a value");
        }
        other => panic!("expected ProtocolViolation, got {other:?}"),
    }
}

// ------------------------------------------------ closed-channel sends

#[test]
fn send_on_a_closed_channel_is_disconnected() {
    let it = interp();
    let (a, b) = channel_pair(0);
    drop(b); // peer endpoint gone
    let env = Env::empty().bind(Symbol::intern("ch"), Value::Chan(a));
    // send [T,S] 7 ch — the saturated Send constant hits the dead peer.
    let send = Expr::apps(Expr::Const(Const::Send), [Expr::int(7), Expr::var("ch")]);
    match it.eval(&env, &send) {
        Err(RuntimeError::Channel(ChanError::Disconnected)) => {}
        other => panic!("expected Disconnected, got {other:?}"),
    }
}

#[test]
fn select_and_terminate_on_a_closed_channel_are_disconnected() {
    let it = interp();
    for make in [
        |tag: Symbol| Expr::Const(Const::Select(tag)),
        |_| Expr::Const(Const::Terminate),
    ] {
        let (a, b) = channel_pair(0);
        drop(b);
        let env = Env::empty().bind(Symbol::intern("ch"), Value::Chan(a));
        let expr = Expr::app(make(Symbol::intern("SomeTag")), Expr::var("ch"));
        match it.eval(&env, &expr) {
            Err(RuntimeError::Channel(ChanError::Disconnected)) => {}
            other => panic!("expected Disconnected, got {other:?}"),
        }
    }
}

#[test]
fn peer_thread_death_surfaces_as_disconnected_not_a_panic() {
    // The forked client drops its endpoint immediately; the server's
    // receive must observe Disconnected (wrapped in a thread error),
    // not crash the process.
    let module = algst_check::check_source(
        "drops : !Int.End! -> Unit\ndrops c = ()\n\
         main : Unit\nmain = let (p, q) = new [!Int.End!] in \
         let _ = fork (\\u -> drops p) in \
         let (x, c) = receiveInt [End?] q in wait c",
    );
    // Linearity may reject `drops` (it discards a linear channel); if
    // the checker is strict about that, exercise the runtime directly.
    let outcome = match module {
        Ok(module) => Interp::new(&module).run_timeout("main", Duration::from_secs(5)),
        Err(_) => {
            let it = interp();
            let (a, b) = channel_pair(0);
            drop(a);
            let env = Env::empty().bind(Symbol::intern("ch"), Value::Chan(b));
            it.eval(
                &env,
                &Expr::app(Expr::Const(Const::Receive), Expr::var("ch")),
            )
        }
    };
    match outcome {
        Err(RuntimeError::Channel(ChanError::Disconnected)) | Err(RuntimeError::Timeout) => {}
        other => panic!("expected Disconnected (or a rendezvous timeout), got {other:?}"),
    }
}

// -------------------------------------------------- assorted dynamics

#[test]
fn division_by_zero_is_typed() {
    let module = algst_check::check_source("main : Int\nmain = 1 / 0").expect("checks");
    match Interp::new(&module).run("main") {
        Err(RuntimeError::DivisionByZero) => {}
        other => panic!("expected DivisionByZero, got {other:?}"),
    }
}

#[test]
fn missing_entry_point_is_typed() {
    let module = algst_check::check_source("main : Unit\nmain = ()").expect("checks");
    match Interp::new(&module).run("not_main") {
        Err(RuntimeError::NoSuchGlobal(name)) => {
            assert_eq!(name, Symbol::intern("not_main"));
        }
        other => panic!("expected NoSuchGlobal, got {other:?}"),
    }
}

#[test]
fn pure_stepper_reports_session_actions_not_stuckness() {
    // `receive c` on an (unbound) channel variable is an Action for the
    // pure fragment, not Stuck — the step budget machinery depends on
    // the distinction.
    let globals = HashMap::new();
    let e = Expr::app(Expr::Const(Const::Receive), Expr::var("c"));
    match step(&globals, &e) {
        Step::Action(label) => assert_eq!(label, "receive"),
        other => panic!("expected Action(receive), got {other:?}"),
    }
}
