//! End-to-end runs of paper programs: type check, then execute on the
//! thread-and-channel runtime and observe results.

use algst_check::check_source;
use algst_runtime::{Interp, RuntimeError, Value};
use std::time::Duration;

fn run(src: &str) -> Interp {
    let module = check_source(src).unwrap_or_else(|e| panic!("does not type check: {e}"));
    let interp = Interp::new(&module);
    match interp.run_timeout("main", Duration::from_secs(10)) {
        Ok(Value::Unit) => interp,
        Ok(v) => panic!("main returned {v:?}"),
        Err(e) => panic!("runtime error: {e}"),
    }
}

#[test]
fn send_receive_int_roundtrip() {
    let interp = run(r#"
main : Unit
main =
  let (c, d) = new [!Int.End!] in
  let _ = fork (\u -> let (x, d) = receiveInt [End?] d in
                      let _ = printInt (x + 1) in
                      wait d) in
  sendInt [End!] 41 c |> terminate
"#);
    assert_eq!(interp.output(), vec!["42"]);
}

#[test]
fn arith_server_round_trip() {
    // The §2.2 server answering one Neg and the client printing the result.
    let interp = run(r#"
protocol Arith = Neg Int -Int | Add2 Int Int -Int

serveArith : forall (s:S). ?Arith.s -> s
serveArith [s] c = match c with {
  Neg c -> let (x, c) = receiveInt [!Int.s] c in
           sendInt [s] (0 - x) c,
  Add2 c -> let (x, c) = receiveInt [?Int.!Int.s] c in
            let (y, c) = receiveInt [!Int.s] c in
            sendInt [s] (x + y) c }

main : Unit
main =
  let (client, server) = new [!Arith.End!] in
  let _ = fork (\u -> serveArith [End?] server |> wait) in
  let client = select Add2 [End!] client in
  let client = sendInt [!Int.?Int.End!] 30 client in
  let client = sendInt [?Int.End!] 12 client in
  let (r, client) = receiveInt [End!] client in
  let _ = printInt r in
  terminate client
"#);
    assert_eq!(interp.output(), vec!["42"]);
}

#[test]
fn ast_transmission_round_trip() {
    // §2.1: serialize (1+2)+3 over a channel and evaluate on the far end.
    let interp = run(r#"
data Ast = Con Int | Add Ast Ast
protocol AstP = ConP Int | AddP AstP AstP

sendAst : Ast -> forall (s:S). !AstP.s -> s
sendAst t [s] c = case t of {
  Con x -> select ConP [s] c |> sendInt [s] x,
  Add l r -> select AddP [s] c |> sendAst l [!AstP.s] |> sendAst r [s] }

recvAst : forall (s:S). ?AstP.s -> (Ast, s)
recvAst [s] c = match c with {
  ConP c -> let (x, c) = receiveInt [s] c in (Con x, c),
  AddP c -> let (tl, c) = recvAst [?AstP.s] c in
            let (tr, c) = recvAst [s] c in (Add tl tr, c) }

eval : Ast -> Int
eval t = case t of {
  Con x -> x,
  Add l r -> eval l + eval r }

main : Unit
main =
  let (snd, rcv) = new [!AstP.End!] in
  let _ = fork (\u -> let (t, rcv) = recvAst [End?] rcv in
                      let _ = printInt (eval t) in
                      wait rcv) in
  sendAst (Add (Add (Con 1) (Con 2)) (Con 3)) [End!] snd |> terminate
"#);
    assert_eq!(interp.output(), vec!["6"]);
}

#[test]
fn repeat_protocol_finite_iteration() {
    // Appendix B Repeat protocol: run the subsidiary protocol twice.
    let interp = run(r#"
protocol RepInt = More Int (RepInt) | Quit

produce : !RepInt.End! -> Unit
produce c =
  let c = select More [End!] c in
  let c = sendInt [!RepInt.End!] 10 c in
  let c = select More [End!] c in
  let c = sendInt [!RepInt.End!] 20 c in
  select Quit [End!] c |> terminate

consume : ?RepInt.End? -> Unit
consume c = match c with {
  More c -> let (x, c) = receiveInt [?RepInt.End?] c in
            let _ = printInt x in
            consume c,
  Quit c -> wait c }

main : Unit
main =
  let (p, q) = new [!RepInt.End!] in
  let _ = fork (\u -> produce p) in
  consume q
"#);
    assert_eq!(interp.output(), vec!["10", "20"]);
}

#[test]
fn channel_delegation() {
    // Session delegation: send a channel end over a channel.
    let interp = run(r#"
main : Unit
main =
  let (inner1, inner2) = new [!Int.End!] in
  let (carry1, carry2) = new [!(!Int.End!).End!] in
  let _ = fork (\u ->
    let (got, carry2) = receive [!Int.End!, End?] carry2 in
    let _ = wait carry2 in
    sendInt [End!] 99 got |> terminate) in
  let _ = fork (\u ->
    let (x, inner2) = receiveInt [End?] inner2 in
    let _ = printInt x in
    wait inner2) in
  send [!Int.End!, End!] inner1 carry1 |> terminate
"#);
    assert_eq!(interp.output(), vec!["99"]);
}

#[test]
fn mutual_recursion_flip_flop_runs() {
    // Appendix A.3 mutual recursion, bounded to three hops by a counter.
    let interp = run(r#"
protocol Ping = PingC -Int PongP | Stop
protocol PongP = PongC Int Ping

client : Int -> !Ping.End! -> Unit
client n c =
  if n == 0 then select Stop [End!] c |> terminate
  else let c = select PingC [End!] c in
       let (x, c) = receiveInt [!PongP.End!] c in
       let _ = printInt x in
       let c = select PongC [End!] c in
       client (n - 1) (sendInt [!Ping.End!] x c)

server : Int -> ?Ping.End? -> Unit
server n d = match d with {
  Stop d -> wait d,
  PingC d -> let d = sendInt [?PongP.End?] n d in
             match d with {
               PongC d -> let (y, d) = receiveInt [?Ping.End?] d in
                          server (y + 1) d }}

main : Unit
main =
  let (c, d) = new [!Ping.End!] in
  let _ = fork (\u -> server 7 d) in
  client 2 c
"#);
    assert_eq!(interp.output(), vec!["7", "8"]);
}

#[test]
fn async_channels_buffer() {
    // With capacity > 0 a producer can run ahead without a rendezvous.
    let module = check_source(
        r#"
main : Unit
main =
  let (c, d) = new [!Int.!Int.End!] in
  let _ = fork (\u ->
    let (x, d) = receiveInt [?Int.End?] d in
    let (y, d) = receiveInt [End?] d in
    let _ = printInt (x * y) in
    wait d) in
  sendInt [!Int.End!] 6 c |> sendInt [End!] 7 |> terminate
"#,
    )
    .unwrap();
    let interp = Interp::with_capacity(&module, 8);
    interp.run_timeout("main", Duration::from_secs(10)).unwrap();
    assert_eq!(interp.output(), vec!["42"]);
}

#[test]
fn deadlock_detected_by_timeout() {
    // Two channels acquired in opposite order: a classic deadlock the
    // type system permits (Theorem 5 is "progress possibly leading to
    // deadlock").
    let module = check_source(
        r#"
main : Unit
main =
  let (a1, a2) = new [!Int.End!] in
  let (b1, b2) = new [!Int.End!] in
  let _ = fork (\u ->
    let (x, b2) = receiveInt [End?] b2 in
    let _ = wait b2 in
    sendInt [End!] x a1 |> terminate) in
  let (y, a2) = receiveInt [End?] a2 in
  let _ = wait a2 in
  sendInt [End!] y b1 |> terminate
"#,
    )
    .unwrap();
    let interp = Interp::new(&module);
    match interp.run_timeout("main", Duration::from_millis(400)) {
        Err(RuntimeError::Timeout) => {}
        other => panic!("expected deadlock timeout, got {other:?}"),
    }
}

#[test]
fn stats_count_messages() {
    let interp = run(r#"
main : Unit
main =
  let (c, d) = new [!Int.!Int.End!] in
  let _ = fork (\u ->
    let (x, d) = receiveInt [?Int.End?] d in
    let (y, d) = receiveInt [End?] d in
    wait d) in
  sendInt [!Int.End!] 1 c |> sendInt [End!] 2 |> terminate
"#);
    let stats = interp.stats();
    assert_eq!(
        stats.values_sent.load(std::sync::atomic::Ordering::Relaxed),
        2
    );
    assert_eq!(
        stats.closes_sent.load(std::sync::atomic::Ordering::Relaxed),
        1
    );
    assert_eq!(
        stats
            .channels_created
            .load(std::sync::atomic::Ordering::Relaxed),
        1
    );
    assert_eq!(
        stats
            .threads_spawned
            .load(std::sync::atomic::Ordering::Relaxed),
        1
    );
    assert_eq!(stats.messages(), 3);
}

#[test]
fn forked_thread_error_propagates() {
    let module = check_source(
        r#"
main : Unit
main = fork (\u -> let _ = printInt (1 / 0) in ())
"#,
    )
    .unwrap();
    let interp = Interp::new(&module);
    match interp.run_timeout("main", Duration::from_secs(5)) {
        Err(RuntimeError::DivisionByZero) => {}
        other => panic!("expected division by zero, got {other:?}"),
    }
}
