//! Machine-checked instances of the paper's metatheory on the pure
//! fragment:
//!
//! * **Preservation (Theorem 4)**: along every β-reduction sequence, the
//!   synthesized type stays `≡_A`-equal.
//! * **Progress (Theorem 5)**: a well-typed closed pure expression is a
//!   value or steps (never `Stuck`).
//! * **Semantic agreement**: the literal small-step reducer and the
//!   efficient big-step interpreter compute the same results.

use algst_check::{check_source, check_source_in, Checker, Ctx, Module};
use algst_core::expr::{Expr, Lit};
use algst_core::normalize::nrm_pos;
use algst_core::symbol::Symbol;
use algst_runtime::step::{run_pure, step, Step};
use algst_runtime::{Interp, Value};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// Pure programs (no channels): each `probe : Int` definition is reduced
/// step by step.
const PURE_PROGRAMS: &[&str] = &[
    // arithmetic and let-chains
    r#"
probe : Int
probe = let x = 3 + 4 in
        let y = x * x in
        let (a, b) = (y - 1, y + 1) in
        a + b
"#,
    // recursion through a module-level definition
    r#"
fact : Int -> Int
fact n = if n == 0 then 1 else n * fact (n - 1)

probe : Int
probe = fact 6
"#,
    // mutual recursion
    r#"
isEven : Int -> Bool
isEven n = if n == 0 then True else isOdd (n - 1)

isOdd : Int -> Bool
isOdd n = if n == 0 then False else isEven (n - 1)

probe : Int
probe = if isEven 10 then 1 else 0
"#,
    // datatypes and case analysis (§2.1's Ast evaluator)
    r#"
data AstM = ConM Int | AddM AstM AstM

eval : AstM -> Int
eval t = case t of {
  ConM x -> x,
  AddM l r -> eval l + eval r }

probe : Int
probe = eval (AddM (AddM (ConM 1) (ConM 2)) (AddM (ConM 3) (ConM 4)))
"#,
    // polymorphism: type abstraction and application
    r#"
twice : forall (a:T). (a -> a) -> a -> a
twice [a] f x = f (f x)

probe : Int
probe = twice [Int] (\n -> n * 3) 2
"#,
    // higher-order functions and unit-lets
    r#"
compose : forall (a:T). (a -> a) -> (a -> a) -> a -> a
compose [a] f g x = f (g x)

probe : Int
probe = let _ = () in compose [Int] (\n -> n + 1) (\n -> n * 10) 4
"#,
];

fn globals_of(module: &Module) -> HashMap<Symbol, Arc<Expr>> {
    module.globals()
}

/// Steps `probe` to a value, checking the synthesized type after every
/// transition.
fn check_preservation(src: &str) -> (Expr, usize) {
    let mut session = algst_core::Session::new();
    let module =
        check_source_in(&mut session, src).unwrap_or_else(|e| panic!("does not check: {e}"));
    let globals = globals_of(&module);
    let mut current: Expr = (**module.def("probe").expect("probe defined")).clone();

    // Typing context: all module definitions as unrestricted globals.
    let fresh_ctx = |session: &mut algst_core::Session| {
        let mut ctx = Ctx::new();
        for (name, _) in module.defs() {
            if let Some(sig) = module.norm_sig(name.as_str()) {
                ctx.push_unrestricted(session, name, sig.clone());
            }
        }
        ctx
    };

    let expected = nrm_pos(module.norm_sig("probe").expect("signature"));
    let mut steps = 0usize;
    loop {
        // Theorem 4.2: the *checking* judgment is preserved (reducts may
        // contain unannotated lambdas, which only check — exactly why the
        // theorem is stated for both judgments).
        let mut ctx = fresh_ctx(&mut session);
        let mut checker = Checker::new(&module.decls, &mut session);
        checker
            .check(&mut ctx, &current, &expected)
            .unwrap_or_else(|e| {
                panic!("reduct no longer checks after {steps} steps: {e}\n  {current:?}")
            });

        match step(&globals, &current) {
            Step::Value => return (current, steps),
            Step::Next(n) => {
                current = n;
                steps += 1;
                assert!(steps < 100_000, "divergence in a test program");
            }
            Step::Action(a) => panic!("pure program performed action {a}"),
            Step::Stuck(msg) => panic!("progress violated after {steps} steps: {msg}"),
        }
    }
}

#[test]
fn preservation_along_all_reduction_sequences() {
    for (i, src) in PURE_PROGRAMS.iter().enumerate() {
        let (value, steps) = check_preservation(src);
        assert!(steps > 0, "program {i} should actually reduce");
        assert!(value.is_value(), "program {i} must end in a value");
    }
}

#[test]
fn small_step_agrees_with_big_step() {
    let expected = [98i64, 720, 1, 10, 18, 41];
    for (src, want) in PURE_PROGRAMS.iter().zip(expected) {
        let module = check_source(src).unwrap();
        let globals = globals_of(&module);
        let probe = module.def("probe").unwrap();

        let small = run_pure(&globals, probe, 1_000_000)
            .unwrap_or_else(|s| panic!("small-step failed: {s:?}"));
        assert_eq!(small, Expr::Lit(Lit::Int(want)), "small-step result");

        let interp = Interp::new(&module);
        let big = interp
            .run_timeout("probe", Duration::from_secs(10))
            .unwrap();
        match big {
            Value::Int(n) => assert_eq!(n, want, "big-step result"),
            other => panic!("big-step returned {other:?}"),
        }
    }
}

#[test]
fn session_redexes_report_actions_not_stuck() {
    // Progress for the impure fragment: the pure reducer classifies
    // session operations as actions (the σ labels of Fig. 6), never as
    // stuck terms.
    let module = check_source(
        r#"
probe : Unit
probe =
  let (a, b) = new [End!] in
  let _ = fork (\u -> wait b) in
  terminate a
"#,
    )
    .unwrap();
    let globals = globals_of(&module);
    let mut current: Expr = (**module.def("probe").unwrap()).clone();
    for _ in 0..1000 {
        match step(&globals, &current) {
            Step::Next(n) => current = n,
            Step::Action(label) => {
                assert_eq!(label, "new", "first action of the program is ν");
                return;
            }
            Step::Value => panic!("should reach the ν action first"),
            Step::Stuck(m) => panic!("stuck instead of action: {m}"),
        }
    }
    panic!("never reached an action");
}

#[test]
fn act_rec_unfolds_like_the_rule() {
    // (rec f: Int -> Int. λn. n) 5 → (λn.n)[rec/f] 5 → 5
    let f = Symbol::intern("frec");
    let body = Expr::abs("n", algst_core::types::Type::int(), Expr::var("n"));
    let rec = Expr::rec(
        f,
        algst_core::types::Type::arrow(
            algst_core::types::Type::int(),
            algst_core::types::Type::int(),
        ),
        body,
    );
    let e = Expr::app(rec, Expr::int(5));
    let globals = HashMap::new();
    let v = run_pure(&globals, &e, 100).unwrap();
    assert_eq!(v, Expr::int(5));
}

#[test]
fn stuck_terms_are_detected() {
    // `if 3 then … else …` is ill-typed and stuck — the reducer reports
    // it rather than looping (the checker would reject it; this guards
    // the reducer's own totality).
    let e = Expr::if_(Expr::int(3), Expr::unit(), Expr::unit());
    let globals = HashMap::new();
    match step(&globals, &e) {
        Step::Stuck(_) => {}
        other => panic!("expected stuck, got {other:?}"),
    }
}
