//! Named counters, gauges and log2-bucket latency histograms, collected
//! in a process-wide [`Registry`] with mergeable, stably-ordered
//! snapshots and a Prometheus-style text exposition.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of histogram buckets.
///
/// Bucket 0 holds the value `0`; bucket `b` (for `1 <= b < BUCKETS - 1`)
/// holds values in `[2^(b-1), 2^b - 1]`; the last bucket is open-ended
/// and absorbs everything at or above `2^(BUCKETS - 2)`. With 40 buckets
/// and nanosecond samples that spans single-digit nanoseconds to ~9
/// minutes — wide enough for every latency the serving stack records.
pub const BUCKETS: usize = 40;

/// Upper bound (inclusive) reported for `bucket`. The open-ended last
/// bucket is capped at `2^(BUCKETS - 1) - 1` so percentile estimates
/// stay finite.
fn bucket_upper(bucket: usize) -> u64 {
    (1u64 << bucket.min(BUCKETS - 1)) - 1
}

/// Bucket index for a recorded value: the value's bit length, clamped to
/// the open-ended last bucket.
fn bucket_index(value: u64) -> usize {
    ((u64::BITS - value.leading_zeros()) as usize).min(BUCKETS - 1)
}

/// A monotonically increasing counter (lock-free; relaxed ordering).
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Add `n` to the counter.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Add 1 to the counter.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed instantaneous value (lock-free; relaxed ordering) — e.g.
/// active connections or configured worker count.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Add `n` (may be negative).
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Increment by 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Decrement by 1.
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Overwrite the value.
    pub fn set(&self, n: i64) {
        self.0.store(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket log2 latency histogram shared across threads.
///
/// [`record`](Histogram::record) is a handful of relaxed `fetch_add`s;
/// there is no lock anywhere. Hot paths should prefer a per-worker
/// [`LocalHistogram`] folded in at batch boundaries via
/// [`fold`](Histogram::fold), which touches the shared cache lines once
/// per batch instead of once per request.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Record one sample (typically nanoseconds).
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Fold a local shard into this histogram and clear the shard.
    ///
    /// Only touched buckets are written, so an idle batch costs nothing.
    pub fn fold(&self, local: &mut LocalHistogram) {
        if local.count == 0 {
            return;
        }
        for (b, &n) in local.buckets.iter().enumerate() {
            if n != 0 {
                self.buckets[b].fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count.fetch_add(local.count, Ordering::Relaxed);
        self.sum.fetch_add(local.sum, Ordering::Relaxed);
        *local = LocalHistogram::default();
    }

    /// Snapshot the current buckets, count and sum.
    ///
    /// Loads are relaxed and not mutually atomic: under concurrent
    /// recording the fields may disagree by in-flight samples. Values
    /// are exact once writers are quiesced (e.g. after a fold).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|b| self.buckets[b].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// A single-thread histogram shard: plain integers, no atomics.
///
/// Workers record warm-path samples here (an array increment) and fold
/// into the shared [`Histogram`] at batch boundaries.
#[derive(Debug, Clone)]
pub struct LocalHistogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
}

impl Default for LocalHistogram {
    fn default() -> Self {
        LocalHistogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
        }
    }
}

impl LocalHistogram {
    /// Record one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[bucket_index(value)] += 1;
        self.count += 1;
        // Wrapping, matching the shared histogram's `fetch_add`: a sum of
        // nanosecond samples takes centuries to wrap, and bucket counts
        // (which drive quantiles) are unaffected either way.
        self.sum = self.sum.wrapping_add(value);
    }

    /// Number of samples recorded since the last fold.
    pub fn count(&self) -> u64 {
        self.count
    }
}

/// An immutable copy of a histogram's buckets, mergeable across shards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (see [`BUCKETS`] for the bucket layout).
    pub buckets: [u64; BUCKETS],
    /// Total number of samples.
    pub count: u64,
    /// Sum of all sample values.
    pub sum: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Merge another snapshot (e.g. a sibling shard) into this one.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (b, n) in other.buckets.iter().enumerate() {
            self.buckets[b] += n;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
    }

    /// Estimated quantile `q` in `[0, 1]`: the inclusive upper bound of
    /// the first bucket whose cumulative count reaches `q * count`.
    /// Returns 0 for an empty histogram. The open-ended last bucket
    /// reports `2^39 - 1` (samples beyond it are clamped on record).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper(b);
            }
        }
        bucket_upper(BUCKETS - 1)
    }

    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// A process-wide collection of named instruments.
///
/// Registration (`counter`/`gauge`/`histogram`) takes a short mutex and
/// is meant for startup or other cold moments; callers keep the returned
/// `Arc` handles and record through those. Snapshots iterate the
/// underlying `BTreeMap`s, so every snapshot lists instruments in
/// **stable sorted name order** — the property the wire-level `metrics`
/// op and the Prometheus exposition rely on for byte-diffable output.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl Registry {
    /// Create an empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Get or create the counter named `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().expect("obs registry poisoned");
        map.entry(name.to_string()).or_default().clone()
    }

    /// Get or create the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.gauges.lock().expect("obs registry poisoned");
        map.entry(name.to_string()).or_default().clone()
    }

    /// Get or create the histogram named `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.histograms.lock().expect("obs registry poisoned");
        map.entry(name.to_string()).or_default().clone()
    }

    /// Snapshot every instrument, sorted by name within each kind.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = self
            .counters
            .lock()
            .expect("obs registry poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let gauges = self
            .gauges
            .lock()
            .expect("obs registry poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let histograms = self
            .histograms
            .lock()
            .expect("obs registry poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect();
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

/// A point-in-time copy of a [`Registry`]: every instrument, sorted by
/// name within its kind, ready for serialization.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// `(name, value)` for every counter, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every gauge, sorted by name.
    pub gauges: Vec<(String, i64)>,
    /// `(name, snapshot)` for every histogram, sorted by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// Render the snapshot in the Prometheus text exposition format,
    /// with `prefix` prepended to every metric name (e.g. `"algst_"`).
    ///
    /// Histogram buckets are emitted cumulatively with `le` labels up to
    /// the highest populated bucket, then `+Inf`, `_sum` and `_count`.
    /// Output order is deterministic: counters, gauges, histograms, each
    /// sorted by name.
    pub fn prometheus(&self, prefix: &str) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            let _ = writeln!(out, "# TYPE {prefix}{name} counter");
            let _ = writeln!(out, "{prefix}{name} {value}");
        }
        for (name, value) in &self.gauges {
            let _ = writeln!(out, "# TYPE {prefix}{name} gauge");
            let _ = writeln!(out, "{prefix}{name} {value}");
        }
        for (name, hist) in &self.histograms {
            let _ = writeln!(out, "# TYPE {prefix}{name} histogram");
            let top = hist
                .buckets
                .iter()
                .rposition(|&n| n != 0)
                .map(|b| b.min(BUCKETS - 2))
                .unwrap_or(0);
            let mut cumulative = 0u64;
            for b in 0..=top {
                cumulative += hist.buckets[b];
                let le = bucket_upper(b);
                let _ = writeln!(out, "{prefix}{name}_bucket{{le=\"{le}\"}} {cumulative}");
            }
            let _ = writeln!(out, "{prefix}{name}_bucket{{le=\"+Inf\"}} {}", hist.count);
            let _ = writeln!(out, "{prefix}{name}_sum {}", hist.sum);
            let _ = writeln!(out, "{prefix}{name}_count {}", hist.count);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout_is_log2_with_open_tail() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        // Every bucket's upper bound sorts strictly below the next's.
        for b in 0..BUCKETS - 1 {
            assert!(bucket_upper(b) < bucket_upper(b + 1));
        }
    }

    #[test]
    fn local_fold_matches_direct_recording() {
        let shared = Histogram::default();
        let mut local = LocalHistogram::default();
        let direct = Histogram::default();
        for v in [0u64, 1, 7, 63, 64, 100_000, 1 << 41] {
            local.record(v);
            direct.record(v);
        }
        shared.fold(&mut local);
        assert_eq!(shared.snapshot(), direct.snapshot());
        assert_eq!(local.count(), 0, "fold must drain the shard");
        // A second fold of the drained shard is a no-op.
        shared.fold(&mut local);
        assert_eq!(shared.snapshot().count, 7);
    }

    #[test]
    fn quantiles_track_bucket_upper_bounds() {
        let mut snap = HistogramSnapshot::default();
        assert_eq!(snap.quantile(0.99), 0);
        let h = Histogram::default();
        for _ in 0..90 {
            h.record(100); // bucket 7, upper bound 127
        }
        for _ in 0..10 {
            h.record(1_000_000); // bucket 20, upper bound ~1.05ms
        }
        snap = h.snapshot();
        assert_eq!(snap.quantile(0.5), 127);
        assert_eq!(snap.quantile(0.9), 127);
        assert_eq!(snap.quantile(0.95), bucket_upper(20));
        assert!((snap.mean() - 100_090.0).abs() < 1.0);
    }

    #[test]
    fn registry_snapshot_is_sorted_regardless_of_insertion_order() {
        let r = Registry::new();
        r.counter("zeta").add(1);
        r.counter("alpha").add(2);
        r.gauge("mid").set(-3);
        r.histogram("beta").record(5);
        let snap = r.snapshot();
        let names: Vec<&str> = snap.counters.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(names, ["alpha", "zeta"]);
        assert_eq!(snap.gauges, vec![("mid".to_string(), -3)]);
        assert_eq!(snap.histograms[0].0, "beta");
        // Same handle comes back for the same name.
        r.counter("alpha").inc();
        assert_eq!(r.snapshot().counters[0].1, 3);
    }

    #[test]
    fn prometheus_exposition_has_cumulative_buckets() {
        let r = Registry::new();
        r.counter("requests_total").add(3);
        r.gauge("workers").set(4);
        let h = r.histogram("service_ns");
        h.record(1); // bucket 1
        h.record(3); // bucket 2
        h.record(3);
        let text = r.snapshot().prometheus("algst_");
        assert!(text.contains("# TYPE algst_requests_total counter\nalgst_requests_total 3\n"));
        assert!(text.contains("# TYPE algst_workers gauge\nalgst_workers 4\n"));
        assert!(text.contains("algst_service_ns_bucket{le=\"1\"} 1\n"));
        assert!(text.contains("algst_service_ns_bucket{le=\"3\"} 3\n"));
        assert!(text.contains("algst_service_ns_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("algst_service_ns_sum 7\n"));
        assert!(text.contains("algst_service_ns_count 3\n"));
        // Byte-stable across repeated snapshots.
        assert_eq!(text, r.snapshot().prometheus("algst_"));
    }
}
