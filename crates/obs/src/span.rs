//! A minimal monotonic span timer for per-stage latency attribution.

use std::time::Instant;

use crate::LocalHistogram;

/// A started timer over one stage of a request's lifecycle.
///
/// `Span` is deliberately tiny — one `Instant` — because the serving
/// stack opens and closes several per cold request. It does not record
/// anywhere by itself; callers pass the elapsed nanoseconds to whichever
/// histogram or trace field owns the stage, which keeps the *decision*
/// to measure (warm paths measure once, cold paths per stage) in the
/// engine where the cost is visible.
///
/// ```
/// use algst_obs::{LocalHistogram, Span};
/// let mut hist = LocalHistogram::default();
/// let span = Span::begin();
/// let ns = span.record(&mut hist);
/// assert_eq!(hist.count(), 1);
/// assert!(ns < 1_000_000_000);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Span {
    start: Instant,
}

impl Span {
    /// Start timing now.
    pub fn begin() -> Span {
        Span {
            start: Instant::now(),
        }
    }

    /// Nanoseconds elapsed since [`begin`](Span::begin), saturated to `u64`
    /// (584 years — effectively never).
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Record the elapsed time into a local histogram shard and return
    /// the measured nanoseconds.
    pub fn record(self, hist: &mut LocalHistogram) -> u64 {
        let ns = self.elapsed_ns();
        hist.record(ns);
        ns
    }
}
