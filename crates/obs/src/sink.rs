//! Structured JSON-lines event sink: slow-request traces, connection
//! lifecycle, snapshot installs.

use std::io::{self, Write};
use std::sync::{Arc, Mutex};
use std::time::{SystemTime, UNIX_EPOCH};

/// Event severity, ordered so that `level <= sink_level` means "emit".
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Nothing is emitted.
    Off,
    /// Failures only (protocol errors, dropped connections).
    Error,
    /// Operational events: connection open/close/timeout, slow requests.
    Info,
    /// High-volume detail: snapshot installs, per-batch internals.
    Debug,
}

impl Level {
    /// Parse a CLI-style level name (`off|error|info|debug`).
    pub fn parse(s: &str) -> Option<Level> {
        match s {
            "off" => Some(Level::Off),
            "error" => Some(Level::Error),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            _ => None,
        }
    }

    fn name(self) -> &'static str {
        match self {
            Level::Off => "off",
            Level::Error => "error",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }
}

/// A typed event field value. Borrowed strings keep event emission
/// allocation-light; everything else is scalar.
#[derive(Debug, Clone, Copy)]
pub enum Field<'a> {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point (written with `{}` — shortest round-trip form).
    F64(f64),
    /// String (JSON-escaped on write).
    Str(&'a str),
    /// Boolean.
    Bool(bool),
}

/// A thread-safe JSON-lines event sink.
///
/// Each event becomes one flat JSON object per line:
///
/// ```text
/// {"ts_us":1754650000000000,"level":"info","ev":"slow_request","conn":3,...}
/// ```
///
/// A disabled sink ([`TraceSink::disabled`]) costs one enum compare per
/// [`enabled`](TraceSink::enabled) check and never takes a lock, so it is
/// safe to consult from hot paths. Enabled sinks serialize writers
/// behind a mutex — they are meant for slow/rare events, not per-request
/// logging at 1.5M req/s.
pub struct TraceSink {
    level: Level,
    out: Option<Mutex<Box<dyn Write + Send>>>,
}

impl std::fmt::Debug for TraceSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceSink")
            .field("level", &self.level)
            .field("enabled", &self.out.is_some())
            .finish()
    }
}

/// A `Write` handle over a shared in-memory buffer, for tests.
#[derive(Debug, Clone)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0
            .lock()
            .expect("trace buffer poisoned")
            .extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl TraceSink {
    /// A sink that drops everything.
    pub fn disabled() -> TraceSink {
        TraceSink {
            level: Level::Off,
            out: None,
        }
    }

    /// Emit events at or below `level` to an arbitrary writer.
    pub fn to_writer(level: Level, out: Box<dyn Write + Send>) -> TraceSink {
        if level == Level::Off {
            return TraceSink::disabled();
        }
        TraceSink {
            level,
            out: Some(Mutex::new(out)),
        }
    }

    /// Emit events at or below `level` to standard error.
    pub fn to_stderr(level: Level) -> TraceSink {
        TraceSink::to_writer(level, Box::new(io::stderr()))
    }

    /// Emit events at or below `level` to a file (created/truncated).
    pub fn to_file(level: Level, path: &str) -> io::Result<TraceSink> {
        let file = std::fs::File::create(path)?;
        Ok(TraceSink::to_writer(
            level,
            Box::new(io::BufWriter::new(file)),
        ))
    }

    /// A sink writing into a shared in-memory buffer, for tests: the
    /// returned handle observes every emitted line.
    pub fn to_buffer(level: Level) -> (TraceSink, Arc<Mutex<Vec<u8>>>) {
        let buf = Arc::new(Mutex::new(Vec::new()));
        let sink = TraceSink::to_writer(level, Box::new(SharedBuf(buf.clone())));
        (sink, buf)
    }

    /// Would an event at `level` be emitted? Use this to skip field
    /// construction entirely on hot paths.
    pub fn enabled(&self, level: Level) -> bool {
        self.out.is_some() && level <= self.level
    }

    /// Emit one event line with the given name and fields.
    ///
    /// Adds `ts_us` (wall-clock microseconds since the Unix epoch),
    /// `level`, and `ev` before the caller's fields. Does nothing when
    /// the sink is disabled or the level is filtered out; write errors
    /// are swallowed (observability must never take the server down).
    pub fn event(&self, level: Level, ev: &str, fields: &[(&str, Field<'_>)]) {
        if !self.enabled(level) {
            return;
        }
        let ts_us = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_micros() as u64)
            .unwrap_or(0);
        let mut line = String::with_capacity(96);
        line.push_str("{\"ts_us\":");
        line.push_str(&ts_us.to_string());
        line.push_str(",\"level\":\"");
        line.push_str(level.name());
        line.push_str("\",\"ev\":\"");
        escape_into(&mut line, ev);
        line.push('"');
        for (key, value) in fields {
            line.push_str(",\"");
            escape_into(&mut line, key);
            line.push_str("\":");
            match value {
                Field::U64(n) => line.push_str(&n.to_string()),
                Field::I64(n) => line.push_str(&n.to_string()),
                Field::F64(x) if x.is_finite() => line.push_str(&x.to_string()),
                Field::F64(_) => line.push_str("null"),
                Field::Bool(b) => line.push_str(if *b { "true" } else { "false" }),
                Field::Str(s) => {
                    line.push('"');
                    escape_into(&mut line, s);
                    line.push('"');
                }
            }
        }
        line.push_str("}\n");
        if let Ok(mut out) = self.out.as_ref().expect("checked enabled").lock() {
            let _ = out.write_all(line.as_bytes());
            let _ = out.flush();
        }
    }
}

/// JSON string escaping (quotes, backslashes, control characters).
fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lines(buf: &Arc<Mutex<Vec<u8>>>) -> Vec<String> {
        String::from_utf8(buf.lock().unwrap().clone())
            .unwrap()
            .lines()
            .map(|l| l.to_string())
            .collect()
    }

    #[test]
    fn events_are_one_flat_json_object_per_line() {
        let (sink, buf) = TraceSink::to_buffer(Level::Info);
        sink.event(
            Level::Info,
            "slow_request",
            &[
                ("conn", Field::U64(3)),
                ("op", Field::Str("equiv")),
                ("total_us", Field::F64(1234.5)),
                ("warm", Field::Bool(false)),
                ("delta", Field::I64(-2)),
            ],
        );
        let lines = lines(&buf);
        assert_eq!(lines.len(), 1);
        let line = &lines[0];
        assert!(line.starts_with("{\"ts_us\":"), "line: {line}");
        assert!(line.contains("\"level\":\"info\""));
        assert!(line.contains("\"ev\":\"slow_request\""));
        assert!(line.contains("\"conn\":3"));
        assert!(line.contains("\"op\":\"equiv\""));
        assert!(line.contains("\"total_us\":1234.5"));
        assert!(line.contains("\"warm\":false"));
        assert!(line.contains("\"delta\":-2"));
        assert!(line.ends_with('}'));
    }

    #[test]
    fn level_filtering_and_disabled_sinks_drop_events() {
        let (sink, buf) = TraceSink::to_buffer(Level::Error);
        assert!(sink.enabled(Level::Error));
        assert!(!sink.enabled(Level::Info));
        sink.event(Level::Info, "ignored", &[]);
        sink.event(Level::Debug, "ignored", &[]);
        sink.event(Level::Error, "kept", &[]);
        assert_eq!(lines(&buf).len(), 1);

        let off = TraceSink::disabled();
        assert!(!off.enabled(Level::Error));
        off.event(Level::Error, "dropped", &[]);
    }

    #[test]
    fn strings_are_escaped() {
        let (sink, buf) = TraceSink::to_buffer(Level::Debug);
        sink.event(
            Level::Debug,
            "e",
            &[("msg", Field::Str("a\"b\\c\nd\u{1}e"))],
        );
        assert!(lines(&buf)[0].contains(r#""msg":"a\"b\\c\nd\u0001e""#));
    }

    #[test]
    fn parse_levels() {
        assert_eq!(Level::parse("off"), Some(Level::Off));
        assert_eq!(Level::parse("error"), Some(Level::Error));
        assert_eq!(Level::parse("info"), Some(Level::Info));
        assert_eq!(Level::parse("debug"), Some(Level::Debug));
        assert_eq!(Level::parse("verbose"), None);
    }
}
