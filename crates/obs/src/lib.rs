//! # algst-obs — observability primitives for the AlgST serving stack
//!
//! Hand-rolled, dependency-free metrics and tracing, in the same spirit
//! as the workspace's vendored stand-ins: small, `std`-only, and shaped
//! exactly for the serving stack's constraints. The warm request path
//! runs at ~1.5M req/s with a **zero-lock** store, so every primitive
//! here is designed around one rule: *nothing on the warm path may take
//! a lock or issue a per-request atomic RMW*.
//!
//! Three layers:
//!
//! * **Metrics** ([`Registry`], [`Counter`], [`Gauge`], [`Histogram`],
//!   [`LocalHistogram`]) — named process-wide instruments. Histograms
//!   use fixed log2 buckets and lock-free `fetch_add` on record; the
//!   engine's workers record into plain-integer [`LocalHistogram`]
//!   shards and fold them into the shared [`Histogram`]s at batch
//!   boundaries, so warm-path recording is an array increment.
//! * **Spans** ([`Span`]) — a minimal monotonic timer for per-stage
//!   latency attribution (read → parse → resolve → intern → nrm →
//!   equiv/check → serialize → write, plus store slow-path, snapshot
//!   install, and queue sojourn).
//! * **Events** ([`TraceSink`], [`Level`], [`Field`]) — a structured
//!   JSON-lines sink for slow-request traces, connection lifecycle
//!   events, and snapshot-install events.
//!
//! ```
//! use algst_obs::{Registry, Span, LocalHistogram};
//!
//! let registry = Registry::new();
//! let requests = registry.counter("requests_total");
//! let service = registry.histogram("request_service_ns");
//!
//! // Warm path: record into a worker-local shard (no atomics)...
//! let mut local = LocalHistogram::default();
//! let span = Span::begin();
//! let busy_work = (0..100).sum::<u64>();
//! local.record(span.elapsed_ns());
//!
//! // ...and fold at the batch boundary (one fetch_add per touched bucket).
//! requests.add(1);
//! service.fold(&mut local);
//!
//! let snap = registry.snapshot();
//! assert_eq!(snap.histograms[0].1.count, 1);
//! assert!(busy_work > 0);
//! ```

#![deny(missing_docs)]

mod metrics;
mod sink;
mod span;

pub use metrics::{
    Counter, Gauge, Histogram, HistogramSnapshot, LocalHistogram, MetricsSnapshot, Registry,
    BUCKETS,
};
pub use sink::{Field, Level, TraceSink};
pub use span::Span;
