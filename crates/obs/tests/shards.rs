//! Concurrency property: folding per-thread shards into one shared
//! histogram is exactly equivalent to summing the shards — no sample is
//! lost, duplicated, or mis-bucketed under contention.

use std::sync::Arc;

use algst_obs::{Histogram, HistogramSnapshot, LocalHistogram, Registry};

const THREADS: usize = 8;
const SAMPLES_PER_THREAD: usize = 50_000;

/// Deterministic per-thread sample stream (splitmix64), spanning every
/// bucket from 0 through the open-ended tail.
fn samples(seed: u64) -> impl Iterator<Item = u64> {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
    (0..SAMPLES_PER_THREAD).map(move |i| {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        // Vary the magnitude so every bucket (including 0 and the
        // clamped tail) sees traffic.
        match i % 4 {
            0 => z % 2,              // buckets 0..=1
            1 => z % 100_000,        // ns-to-µs range
            2 => z % 10_000_000_000, // up to 10s
            _ => z,                  // full range, exercises the clamp
        }
    })
}

#[test]
fn eight_thread_fold_equals_sum_of_shards() {
    for seed in [1u64, 7, 42] {
        let shared = Arc::new(Histogram::default());
        // Each thread records its stream into a local shard, folding
        // mid-stream several times (like the engine does per batch), and
        // returns an independently-recorded reference shard.
        let mut reference = HistogramSnapshot::default();
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let shared = shared.clone();
                std::thread::spawn(move || {
                    let mut local = LocalHistogram::default();
                    let check = Histogram::default();
                    for (i, v) in samples(seed ^ t as u64).enumerate() {
                        local.record(v);
                        check.record(v);
                        if i % 97 == 0 {
                            shared.fold(&mut local);
                        }
                    }
                    shared.fold(&mut local);
                    assert_eq!(local.count(), 0);
                    check.snapshot()
                })
            })
            .collect();
        for h in handles {
            reference.merge(&h.join().expect("shard thread panicked"));
        }

        let folded = shared.snapshot();
        assert_eq!(folded, reference, "seed {seed}: folded != sum of shards");
        assert_eq!(folded.count, (THREADS * SAMPLES_PER_THREAD) as u64);
        assert_eq!(folded.buckets.iter().sum::<u64>(), folded.count);
    }
}

#[test]
fn registry_handles_are_shared_across_threads() {
    let registry = Arc::new(Registry::new());
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            let registry = registry.clone();
            scope.spawn(move || {
                let c = registry.counter("requests_total");
                for _ in 0..10_000 {
                    c.inc();
                }
                registry.histogram("service_ns").record(1234);
            });
        }
    });
    let snap = registry.snapshot();
    assert_eq!(
        snap.counters,
        vec![("requests_total".to_string(), (THREADS * 10_000) as u64)]
    );
    assert_eq!(snap.histograms[0].1.count, THREADS as u64);
}
