//! Source locations for diagnostics.

use std::fmt;

/// A half-open byte range in a source file, with the line/column of its
/// start (1-based, as editors display them).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub struct Span {
    pub start: usize,
    pub end: usize,
    pub line: u32,
    pub col: u32,
}

impl Span {
    pub fn new(start: usize, end: usize, line: u32, col: u32) -> Span {
        Span {
            start,
            end,
            line,
            col,
        }
    }

    /// Joins two spans into the smallest span covering both. Keeps the
    /// line/column of the earlier one.
    pub fn to(self, other: Span) -> Span {
        let (first, _) = if self.start <= other.start {
            (self, other)
        } else {
            (other, self)
        };
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
            line: first.line,
            col: first.col,
        }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_covers_both() {
        let a = Span::new(3, 7, 1, 4);
        let b = Span::new(10, 12, 2, 1);
        let j = a.to(b);
        assert_eq!((j.start, j.end), (3, 12));
        assert_eq!((j.line, j.col), (1, 4));
        // order-independent
        assert_eq!(b.to(a), j);
    }

    #[test]
    fn display_is_line_col() {
        assert_eq!(Span::new(0, 1, 7, 3).to_string(), "7:3");
    }
}
