//! Source printing (`to_source`) and span-insensitive AST comparison.
//!
//! The printer is the inverse of the parser: for every AST the emitted
//! text parses back to a structurally identical AST (up to spans and
//! freshly generated `_`-binder names). That round-trip property is what
//! the `algst-conform` fuzzer checks on random types and programs, and
//! what the precedence table in this module's tests pins down case by
//! case.
//!
//! Parenthesization mirrors the parser's precedence levels exactly:
//!
//! * types — `forall`/`->` (top) > session prefixes `!`/`?` (seq) >
//!   atoms; message payloads and name-application arguments print at
//!   atom level, `Dual`/`-` take an atom and are themselves atoms;
//! * expressions — `\`/`let`/`if`/`match` (top) > `||` > `&&` >
//!   comparisons (non-associative) > `+`/`-` > `*`/`/`/`%` >
//!   application > atoms.
//!
//! Declarations print one per line, so the column-1 layout rule is
//! satisfied by construction.

use crate::ast::*;
use algst_core::expr::Lit;
use algst_core::symbol::Symbol;
use std::fmt::Write;

// ---------------------------------------------------------------- types

/// Parser precedence levels for types, loosest to tightest.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord)]
enum TPrec {
    /// `forall (a:k). T` and `T -> U`.
    Top,
    /// `!T.S` / `?T.S` (also where bare name applications live).
    Seq,
    /// Parenthesized/self-delimiting forms; payloads and arguments.
    Atom,
}

/// Renders a surface type as parseable source.
pub fn type_to_source(t: &SType) -> String {
    let mut out = String::new();
    fmt_stype(t, &mut out, TPrec::Top);
    out
}

fn fmt_stype(t: &SType, out: &mut String, prec: TPrec) {
    let paren = |out: &mut String, needed: bool, body: &dyn Fn(&mut String)| {
        if needed {
            out.push('(');
            body(out);
            out.push(')');
        } else {
            body(out);
        }
    };
    match t {
        SType::Unit(_) => out.push_str("Unit"),
        SType::Var(v, _) => out.push_str(v.as_str()),
        SType::EndIn(_) => out.push_str("End?"),
        SType::EndOut(_) => out.push_str("End!"),
        SType::Name(n, args, _) => {
            if args.is_empty() {
                out.push_str(n.as_str());
            } else {
                // A *bare* applied name is complete at seq level; inside
                // an atom slot it needs parentheses (the parser does not
                // curry applications through argument positions).
                paren(out, prec >= TPrec::Atom, &|out| {
                    out.push_str(n.as_str());
                    for a in args {
                        out.push(' ');
                        fmt_stype(a, out, TPrec::Atom);
                    }
                });
            }
        }
        SType::Arrow(a, b, _) => paren(out, prec > TPrec::Top, &|out| {
            fmt_stype(a, out, TPrec::Seq);
            out.push_str(" -> ");
            fmt_stype(b, out, TPrec::Top);
        }),
        SType::Pair(a, b, _) => {
            out.push('(');
            fmt_stype(a, out, TPrec::Top);
            out.push_str(", ");
            fmt_stype(b, out, TPrec::Top);
            out.push(')');
        }
        SType::Forall(v, k, body, _) => paren(out, prec > TPrec::Top, &|out| {
            let _ = write!(out, "forall ({v}:{k}). ");
            fmt_stype(body, out, TPrec::Top);
        }),
        SType::In(p, s, _) => paren(out, prec > TPrec::Seq, &|out| {
            out.push('?');
            fmt_stype(p, out, TPrec::Atom);
            out.push('.');
            fmt_stype(s, out, TPrec::Seq);
        }),
        SType::Out(p, s, _) => paren(out, prec > TPrec::Seq, &|out| {
            out.push('!');
            fmt_stype(p, out, TPrec::Atom);
            out.push('.');
            fmt_stype(s, out, TPrec::Seq);
        }),
        // `Dual` and `-` each take one atom and are atoms themselves, so
        // they never need surrounding parentheses.
        SType::Dual(inner, _) => {
            out.push_str("Dual ");
            fmt_stype(inner, out, TPrec::Atom);
        }
        SType::Neg(inner, _) => {
            out.push('-');
            // `--` would lex as a line comment, so a nested negation is
            // always parenthesized.
            paren(out, matches!(**inner, SType::Neg(..)), &|out| {
                fmt_stype(inner, out, TPrec::Atom);
            });
        }
    }
}

// ---------------------------------------------------------- expressions

/// Parser precedence levels for expressions, loosest to tightest.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord)]
enum EPrec {
    /// `\… ->`, `let`, `if`, `match` and everything below.
    Expr,
    Or,
    And,
    /// `==` `/=` `<` `<=` `>` `>=` — non-associative.
    Cmp,
    Add,
    Mul,
    App,
    Atom,
}

/// Renders a surface expression as parseable source.
pub fn expr_to_source(e: &SExpr) -> String {
    let mut out = String::new();
    fmt_sexpr(e, &mut out, EPrec::Expr);
    out
}

/// Binder occurrences the parser generated for `_` carry fresh `%`-names
/// that are not valid source; print them back as `_`.
fn push_binder(out: &mut String, s: Symbol) {
    if s.as_str().contains('%') {
        out.push('_');
    } else {
        out.push_str(s.as_str());
    }
}

fn op_prec(op: Symbol) -> EPrec {
    match op.as_str() {
        "||" => EPrec::Or,
        "&&" => EPrec::And,
        "==" | "/=" | "<" | "<=" | ">" | ">=" => EPrec::Cmp,
        "+" | "-" => EPrec::Add,
        _ => EPrec::Mul, // "*", "/", "%"
    }
}

fn fmt_sexpr(e: &SExpr, out: &mut String, prec: EPrec) {
    let paren = |out: &mut String, needed: bool, body: &dyn Fn(&mut String)| {
        if needed {
            out.push('(');
            body(out);
            out.push(')');
        } else {
            body(out);
        }
    };
    match e {
        SExpr::Lit(l, _) => fmt_lit(l, out),
        SExpr::Var(x, _) => out.push_str(x.as_str()),
        SExpr::Con(c, _) => out.push_str(c.as_str()),
        SExpr::Select(tag, _) => {
            let _ = write!(out, "select {tag}");
        }
        SExpr::Lambda(params, body, _) => paren(out, prec > EPrec::Expr, &|out| {
            out.push('\\');
            for p in params {
                push_binder(out, *p);
                out.push(' ');
            }
            out.push_str("-> ");
            fmt_sexpr(body, out, EPrec::Expr);
        }),
        SExpr::Let(pat, bound, body, _) => paren(out, prec > EPrec::Expr, &|out| {
            out.push_str("let ");
            match pat {
                Pattern::Var(x) => out.push_str(x.as_str()),
                Pattern::Pair(x, y) => {
                    let _ = write!(out, "({x}, {y})");
                }
                Pattern::Unit => out.push_str("()"),
                Pattern::Wild => out.push('_'),
            }
            out.push_str(" = ");
            fmt_sexpr(bound, out, EPrec::Expr);
            out.push_str(" in ");
            fmt_sexpr(body, out, EPrec::Expr);
        }),
        SExpr::If(c, t, f, _) => paren(out, prec > EPrec::Expr, &|out| {
            out.push_str("if ");
            fmt_sexpr(c, out, EPrec::Expr);
            out.push_str(" then ");
            fmt_sexpr(t, out, EPrec::Expr);
            out.push_str(" else ");
            fmt_sexpr(f, out, EPrec::Expr);
        }),
        SExpr::Case(scrutinee, arms, _) => paren(out, prec > EPrec::Expr, &|out| {
            out.push_str("match ");
            // The parser reads the scrutinee at pipe level.
            fmt_sexpr(scrutinee, out, EPrec::Or);
            out.push_str(" with { ");
            for (i, arm) in arms.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(arm.tag.as_str());
                for b in &arm.binders {
                    out.push(' ');
                    push_binder(out, *b);
                }
                out.push_str(" -> ");
                fmt_sexpr(&arm.body, out, EPrec::Expr);
            }
            out.push_str(" }");
        }),
        SExpr::BinOp(op, lhs, rhs, _) => {
            let level = op_prec(*op);
            paren(out, prec > level, &|out| {
                // Left-associative chains reuse their own level on the
                // left; comparisons are non-associative, so both sides
                // drop to the next-tighter level.
                let (lp, rp) = match level {
                    EPrec::Or => (EPrec::Or, EPrec::And),
                    EPrec::And => (EPrec::And, EPrec::Cmp),
                    EPrec::Cmp => (EPrec::Add, EPrec::Add),
                    EPrec::Add => (EPrec::Add, EPrec::Mul),
                    _ => (EPrec::Mul, EPrec::App),
                };
                fmt_sexpr(lhs, out, lp);
                let _ = write!(out, " {op} ");
                fmt_sexpr(rhs, out, rp);
            });
        }
        SExpr::App(f, a, _) => paren(out, prec > EPrec::App, &|out| {
            fmt_sexpr(f, out, EPrec::App);
            out.push(' ');
            fmt_sexpr(a, out, EPrec::Atom);
        }),
        SExpr::TApp(f, tys, _) => paren(out, prec > EPrec::App, &|out| {
            fmt_sexpr(f, out, EPrec::App);
            out.push_str(" [");
            for (i, t) in tys.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                fmt_stype(t, out, TPrec::Top);
            }
            out.push(']');
        }),
        SExpr::Pair(a, b, _) => {
            out.push('(');
            fmt_sexpr(a, out, EPrec::Expr);
            out.push_str(", ");
            fmt_sexpr(b, out, EPrec::Expr);
            out.push(')');
        }
    }
}

fn fmt_lit(l: &Lit, out: &mut String) {
    match l {
        Lit::Unit => out.push_str("()"),
        // A negative literal has no source form (`-` lexes as an
        // operator); render it as a constant expression instead. The
        // result still evaluates identically but does not round-trip to
        // the same AST — generators avoid negative literals.
        Lit::Int(n) if *n < 0 => {
            let _ = write!(out, "(0 - {})", n.unsigned_abs());
        }
        Lit::Int(n) => {
            let _ = write!(out, "{n}");
        }
        Lit::Bool(true) => out.push_str("True"),
        Lit::Bool(false) => out.push_str("False"),
        Lit::Char(c) => match c {
            '\n' => out.push_str("'\\n'"),
            '\t' => out.push_str("'\\t'"),
            '\\' => out.push_str("'\\\\'"),
            '\'' => out.push_str("'\\''"),
            c => {
                let _ = write!(out, "'{c}'");
            }
        },
        Lit::Str(s) => {
            out.push('"');
            for c in s.chars() {
                match c {
                    '\n' => out.push_str("\\n"),
                    '\t' => out.push_str("\\t"),
                    '\\' => out.push_str("\\\\"),
                    '"' => out.push_str("\\\""),
                    c => out.push(c),
                }
            }
            out.push('"');
        }
    }
}

// --------------------------------------------------------- declarations

/// Renders a declaration as one line of parseable source.
pub fn decl_to_source(d: &Decl) -> String {
    let mut out = String::new();
    match d {
        Decl::Protocol(td) | Decl::Data(td) => {
            out.push_str(if matches!(d, Decl::Protocol(_)) {
                "protocol "
            } else {
                "data "
            });
            out.push_str(td.name.as_str());
            for p in &td.params {
                let _ = write!(out, " {p}");
            }
            out.push_str(" =");
            for (i, c) in td.ctors.iter().enumerate() {
                out.push_str(if i == 0 { " " } else { " | " });
                out.push_str(c.name.as_str());
                for a in &c.args {
                    out.push(' ');
                    fmt_stype(a, &mut out, TPrec::Atom);
                }
            }
        }
        Decl::Alias(a) => {
            let _ = write!(out, "type {}", a.name);
            for p in &a.params {
                let _ = write!(out, " {p}");
            }
            out.push_str(" = ");
            fmt_stype(&a.body, &mut out, TPrec::Top);
        }
        Decl::Signature(s) => {
            let _ = write!(out, "{} : ", s.name);
            fmt_stype(&s.ty, &mut out, TPrec::Top);
        }
        Decl::Binding(b) => {
            out.push_str(b.name.as_str());
            for p in &b.params {
                out.push(' ');
                match p {
                    Param::Term(x) => out.push_str(x.as_str()),
                    Param::Wild => out.push('_'),
                    Param::Types(vs) => {
                        out.push('[');
                        for (i, v) in vs.iter().enumerate() {
                            if i > 0 {
                                out.push_str(", ");
                            }
                            out.push_str(v.as_str());
                        }
                        out.push(']');
                    }
                }
            }
            out.push_str(" = ");
            fmt_sexpr(&b.body, &mut out, EPrec::Expr);
        }
    }
    out
}

/// Renders a whole program, one declaration per line (so the column-1
/// layout rule holds by construction).
pub fn program_to_source(p: &Program) -> String {
    let mut out = String::new();
    for d in &p.decls {
        out.push_str(&decl_to_source(d));
        out.push('\n');
    }
    out
}

// ------------------------------------------- span-insensitive equality

/// Structural type equality ignoring spans.
pub fn type_eq(a: &SType, b: &SType) -> bool {
    match (a, b) {
        (SType::Unit(_), SType::Unit(_))
        | (SType::EndIn(_), SType::EndIn(_))
        | (SType::EndOut(_), SType::EndOut(_)) => true,
        (SType::Var(x, _), SType::Var(y, _)) => x == y,
        (SType::Name(n, xs, _), SType::Name(m, ys, _)) => {
            n == m && xs.len() == ys.len() && xs.iter().zip(ys).all(|(x, y)| type_eq(x, y))
        }
        (SType::Arrow(a1, b1, _), SType::Arrow(a2, b2, _))
        | (SType::Pair(a1, b1, _), SType::Pair(a2, b2, _))
        | (SType::In(a1, b1, _), SType::In(a2, b2, _))
        | (SType::Out(a1, b1, _), SType::Out(a2, b2, _)) => type_eq(a1, a2) && type_eq(b1, b2),
        (SType::Forall(v, k, t, _), SType::Forall(w, l, u, _)) => v == w && k == l && type_eq(t, u),
        (SType::Dual(x, _), SType::Dual(y, _)) | (SType::Neg(x, _), SType::Neg(y, _)) => {
            type_eq(x, y)
        }
        _ => false,
    }
}

/// Binder names compare equal when identical, or when both are
/// parser-generated fresh names for `_` (the numeric suffix differs on
/// every reparse).
fn binder_eq(a: Symbol, b: Symbol) -> bool {
    a == b || (a.as_str().contains('%') && b.as_str().contains('%'))
}

/// Structural expression equality ignoring spans (and fresh `_` binder
/// suffixes).
pub fn expr_eq(a: &SExpr, b: &SExpr) -> bool {
    match (a, b) {
        (SExpr::Lit(x, _), SExpr::Lit(y, _)) => x == y,
        (SExpr::Var(x, _), SExpr::Var(y, _))
        | (SExpr::Con(x, _), SExpr::Con(y, _))
        | (SExpr::Select(x, _), SExpr::Select(y, _)) => x == y,
        (SExpr::App(f, x, _), SExpr::App(g, y, _)) => expr_eq(f, g) && expr_eq(x, y),
        (SExpr::TApp(f, ts, _), SExpr::TApp(g, us, _)) => {
            expr_eq(f, g) && ts.len() == us.len() && ts.iter().zip(us).all(|(t, u)| type_eq(t, u))
        }
        (SExpr::Lambda(ps, x, _), SExpr::Lambda(qs, y, _)) => {
            ps.len() == qs.len()
                && ps.iter().zip(qs).all(|(p, q)| binder_eq(*p, *q))
                && expr_eq(x, y)
        }
        (SExpr::BinOp(o, l1, r1, _), SExpr::BinOp(p, l2, r2, _)) => {
            o == p && expr_eq(l1, l2) && expr_eq(r1, r2)
        }
        (SExpr::Pair(a1, b1, _), SExpr::Pair(a2, b2, _)) => expr_eq(a1, a2) && expr_eq(b1, b2),
        (SExpr::Let(p, x1, x2, _), SExpr::Let(q, y1, y2, _)) => {
            p == q && expr_eq(x1, y1) && expr_eq(x2, y2)
        }
        (SExpr::Case(s1, arms1, _), SExpr::Case(s2, arms2, _)) => {
            expr_eq(s1, s2)
                && arms1.len() == arms2.len()
                && arms1.iter().zip(arms2).all(|(x, y)| {
                    x.tag == y.tag
                        && x.binders.len() == y.binders.len()
                        && x.binders
                            .iter()
                            .zip(&y.binders)
                            .all(|(p, q)| binder_eq(*p, *q))
                        && expr_eq(&x.body, &y.body)
                })
        }
        (SExpr::If(c1, t1, f1, _), SExpr::If(c2, t2, f2, _)) => {
            expr_eq(c1, c2) && expr_eq(t1, t2) && expr_eq(f1, f2)
        }
        _ => false,
    }
}

/// Structural declaration equality ignoring spans.
pub fn decl_eq(a: &Decl, b: &Decl) -> bool {
    let type_decl_eq = |x: &TypeDecl, y: &TypeDecl| {
        x.name == y.name
            && x.params == y.params
            && x.ctors.len() == y.ctors.len()
            && x.ctors.iter().zip(&y.ctors).all(|(c, d)| {
                c.name == d.name
                    && c.args.len() == d.args.len()
                    && c.args.iter().zip(&d.args).all(|(s, t)| type_eq(s, t))
            })
    };
    match (a, b) {
        (Decl::Protocol(x), Decl::Protocol(y)) | (Decl::Data(x), Decl::Data(y)) => {
            type_decl_eq(x, y)
        }
        (Decl::Alias(x), Decl::Alias(y)) => {
            x.name == y.name && x.params == y.params && type_eq(&x.body, &y.body)
        }
        (Decl::Signature(x), Decl::Signature(y)) => x.name == y.name && type_eq(&x.ty, &y.ty),
        (Decl::Binding(x), Decl::Binding(y)) => {
            x.name == y.name
                && x.params.len() == y.params.len()
                && x.params.iter().zip(&y.params).all(|(p, q)| match (p, q) {
                    (Param::Term(s), Param::Term(t)) => s == t,
                    (Param::Wild, Param::Wild) => true,
                    (Param::Types(vs), Param::Types(ws)) => vs == ws,
                    _ => false,
                })
                && expr_eq(&x.body, &y.body)
        }
        _ => false,
    }
}

/// Structural program equality ignoring spans.
pub fn program_eq(a: &Program, b: &Program) -> bool {
    a.decls.len() == b.decls.len() && a.decls.iter().zip(&b.decls).all(|(x, y)| decl_eq(x, y))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_expr, parse_program, parse_type};

    fn roundtrip_type(src: &str) {
        let t = parse_type(src).unwrap_or_else(|e| panic!("cannot parse {src}: {e}"));
        let printed = type_to_source(&t);
        let back =
            parse_type(&printed).unwrap_or_else(|e| panic!("reparse of `{printed}` failed: {e}"));
        assert!(
            type_eq(&t, &back),
            "type round-trip changed the AST:\n  source:  {src}\n  printed: {printed}"
        );
    }

    /// The precedence round-trip table: one entry per operator-nesting
    /// shape the grammar allows. Each entry must print to text that
    /// parses back to the identical AST.
    #[test]
    fn type_precedence_round_trip_table() {
        for src in [
            // arrows: right-associative, domain parenthesized
            "Unit -> Unit -> Unit",
            "(Unit -> Unit) -> Unit",
            // arrow under session prefix needs parentheses
            "!Int.(Unit -> Unit)",
            "?Int.(forall (s:S). s)",
            // session prefix on the left of an arrow does not
            "!Int.End! -> Unit",
            "?Int.s -> s",
            // nested session prefixes associate to the right
            "!Int.?Bool.End!",
            "?(?Int.End!).End?",
            // applied names: bare at seq level, parenthesized as atoms
            "Repeat Int",
            "!(Repeat Int).End!",
            "Stream (Repeat Int) Bool",
            // Dual / Neg take one atom
            "Dual (Repeat Int)",
            "Dual (!Int.End!)",
            "-(Repeat Int)",
            "?-a.s",
            "!-(-Int).End!",
            "Stream -a",
            // pairs are self-delimiting
            "(Int, End!)",
            "!(Char, End!).End!",
            "((Unit -> Unit), ?Int.End?)",
            // forall
            "forall (s:S). ?Int.s -> s",
            "(forall (s:S). s) -> Unit",
            "forall (a:P). !a.End!",
            // mixtures
            "Dual (Dual End!)",
            "!Repeat (Int, Bool).?Neg Char.End?",
            "forall (s:S). Dual s -> (Int, s)",
        ] {
            roundtrip_type(src);
        }
    }

    #[test]
    fn expr_precedence_round_trip_table() {
        for src in [
            "1 + 2 * 3 == 7",
            "(1 + 2) * 3",
            "1 - 2 - 3",
            "1 - (2 - 3)",
            "a && b || c",
            "a && (b || c)",
            "f x y",
            "f (g x)",
            "f x [Int, End!] y",
            "select Next [Int, End!] c",
            "x |> f |> g",
            "\\x y -> x + y",
            "f (\\x -> x)",
            "let (x, c) = receive [Int, s] c in (x, c)",
            "let _ = printInt 3 in ()",
            "if x == 0 then f x else g x",
            "match c with { A c -> c, B x c -> f x c }",
            "(f x, g y)",
            "(let x = 1 in x) + 2",
            "'a'",
            "\"hi\\n\"",
            "0 - 3",
        ] {
            let e = parse_expr(src).unwrap_or_else(|er| panic!("cannot parse {src}: {er}"));
            let printed = expr_to_source(&e);
            let back = parse_expr(&printed)
                .unwrap_or_else(|er| panic!("reparse of `{printed}` failed: {er}"));
            assert!(
                expr_eq(&e, &back),
                "expr round-trip changed the AST:\n  source:  {src}\n  printed: {printed}"
            );
        }
    }

    #[test]
    fn program_round_trip() {
        let src = r#"
protocol Arith = NegA Int -Int | AddA Int Int -Int
data IntList = NilL | ConsL Int IntList
type Service a = forall (s:S). ?a.s -> s

serveArith : forall (s:S). ?Arith.s -> s
serveArith [s] c = match c with {
  NegA c -> let (x, c) = receive [Int, !Int.s] c in
            send [Int, s] (0 - x) c,
  AddA c -> let (x, c) = receive [Int, ?Int.!Int.s] c in
            let (y, c) = receive [Int, !Int.s] c in
            send [Int, s] (x + y) c }

use_ : Unit
use_ = let u = \_ -> () in u ()
"#;
        let p = parse_program(src).unwrap();
        let printed = program_to_source(&p);
        let back = parse_program(&printed)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n--- printed ---\n{printed}"));
        assert!(
            program_eq(&p, &back),
            "program round-trip changed the AST:\n{printed}"
        );
    }

    #[test]
    fn wild_binders_print_as_underscore() {
        let e = parse_expr("\\_ x -> x").unwrap();
        assert_eq!(expr_to_source(&e), "\\_ x -> x");
        let e = parse_expr("match c with { A _ c -> c }").unwrap();
        assert_eq!(expr_to_source(&e), "match c with { A _ c -> c }");
    }

    #[test]
    fn negative_literals_render_as_constant_expressions() {
        use crate::span::Span;
        let e = SExpr::Lit(Lit::Int(-3), Span::default());
        assert_eq!(expr_to_source(&e), "(0 - 3)");
        // The rendering parses (to a different, equivalent AST).
        assert!(parse_expr(&expr_to_source(&e)).is_ok());
    }
}
