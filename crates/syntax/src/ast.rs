//! The surface abstract syntax tree.
//!
//! Surface types and expressions keep source spans and *unresolved* names:
//! an uppercase name application `Stream Int` may refer to a protocol, a
//! datatype or a type alias — resolution happens during elaboration
//! (`algst-check`), which has the full declaration table.

use crate::span::Span;
use algst_core::expr::Lit;
use algst_core::kind::Kind;
use algst_core::symbol::Symbol;
use std::fmt;

/// A parsed source file.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Program {
    pub decls: Vec<Decl>,
}

/// A top-level declaration.
#[derive(Clone, Debug, PartialEq)]
pub enum Decl {
    /// `protocol P a b = C1 T… | C2 T…`
    Protocol(TypeDecl),
    /// `data D a b = C1 T… | C2 T…`
    Data(TypeDecl),
    /// `type A a b = T`
    Alias(AliasDecl),
    /// `f : T`
    Signature(SignatureDecl),
    /// `f p1 p2 … = e`
    Binding(BindingDecl),
}

impl Decl {
    pub fn span(&self) -> Span {
        match self {
            Decl::Protocol(d) | Decl::Data(d) => d.span,
            Decl::Alias(d) => d.span,
            Decl::Signature(d) => d.span,
            Decl::Binding(d) => d.span,
        }
    }
}

/// Shared shape of `protocol` and `data` declarations.
#[derive(Clone, Debug, PartialEq)]
pub struct TypeDecl {
    pub name: Symbol,
    pub params: Vec<Symbol>,
    pub ctors: Vec<CtorDecl>,
    pub span: Span,
}

#[derive(Clone, Debug, PartialEq)]
pub struct CtorDecl {
    pub name: Symbol,
    pub args: Vec<SType>,
    pub span: Span,
}

#[derive(Clone, Debug, PartialEq)]
pub struct AliasDecl {
    pub name: Symbol,
    pub params: Vec<Symbol>,
    pub body: SType,
    pub span: Span,
}

#[derive(Clone, Debug, PartialEq)]
pub struct SignatureDecl {
    pub name: Symbol,
    pub ty: SType,
    pub span: Span,
}

#[derive(Clone, Debug, PartialEq)]
pub struct BindingDecl {
    pub name: Symbol,
    pub params: Vec<Param>,
    pub body: SExpr,
    pub span: Span,
}

/// A parameter of a function equation: `x`, `_`, or a bracketed list of
/// type parameters `[s, t]` (paper notation `sendAst t [s] c = …`).
#[derive(Clone, Debug, PartialEq)]
pub enum Param {
    Term(Symbol),
    Wild,
    Types(Vec<Symbol>),
}

/// A surface type.
#[derive(Clone, Debug, PartialEq)]
pub enum SType {
    Unit(Span),
    /// Uppercase name, possibly applied: protocol, datatype, alias, or a
    /// builtin (`Int`, `Bool`, `Char`, `String`).
    Name(Symbol, Vec<SType>, Span),
    /// Lowercase type variable.
    Var(Symbol, Span),
    Arrow(Box<SType>, Box<SType>, Span),
    Pair(Box<SType>, Box<SType>, Span),
    Forall(Symbol, Kind, Box<SType>, Span),
    /// `?T.S`
    In(Box<SType>, Box<SType>, Span),
    /// `!T.S`
    Out(Box<SType>, Box<SType>, Span),
    EndIn(Span),
    EndOut(Span),
    Dual(Box<SType>, Span),
    /// `-T`
    Neg(Box<SType>, Span),
}

impl SType {
    pub fn span(&self) -> Span {
        match self {
            SType::Unit(s) | SType::EndIn(s) | SType::EndOut(s) => *s,
            SType::Name(_, _, s)
            | SType::Var(_, s)
            | SType::Arrow(_, _, s)
            | SType::Pair(_, _, s)
            | SType::Forall(_, _, _, s)
            | SType::In(_, _, s)
            | SType::Out(_, _, s)
            | SType::Dual(_, s)
            | SType::Neg(_, s) => *s,
        }
    }
}

/// Displays as parseable source. Delegates to the precedence-aware
/// printer ([`crate::printer::type_to_source`]); the old ad-hoc
/// parenthesizer emitted text that reparsed differently for arrows and
/// quantifiers in continuation position.
impl fmt::Display for SType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::printer::type_to_source(self))
    }
}

/// Displays as parseable source (see [`crate::printer::expr_to_source`]).
impl fmt::Display for SExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::printer::expr_to_source(self))
    }
}

/// Displays as one line of parseable source.
impl fmt::Display for Decl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::printer::decl_to_source(self))
    }
}

/// Displays as parseable source, one declaration per line.
impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::printer::program_to_source(self))
    }
}

/// A surface expression.
#[derive(Clone, Debug, PartialEq)]
pub enum SExpr {
    Lit(Lit, Span),
    /// Lowercase variable (or builtin / constant name, resolved later).
    Var(Symbol, Span),
    /// Uppercase name: a data constructor.
    Con(Symbol, Span),
    /// `select C`
    Select(Symbol, Span),
    App(Box<SExpr>, Box<SExpr>, Span),
    /// `e [T, U, …]`
    TApp(Box<SExpr>, Vec<SType>, Span),
    /// `\x y -> e`
    Lambda(Vec<Symbol>, Box<SExpr>, Span),
    /// Binary operator application, e.g. `x + y`.
    BinOp(Symbol, Box<SExpr>, Box<SExpr>, Span),
    Pair(Box<SExpr>, Box<SExpr>, Span),
    /// `let pat = e in e`
    Let(Pattern, Box<SExpr>, Box<SExpr>, Span),
    /// `case e of { … }` or `match e with { … }` — same construct, the
    /// scrutinee's type disambiguates (paper Section 5: the artifact
    /// overloads `case` as `match`).
    Case(Box<SExpr>, Vec<SArm>, Span),
    If(Box<SExpr>, Box<SExpr>, Box<SExpr>, Span),
}

impl SExpr {
    pub fn span(&self) -> Span {
        match self {
            SExpr::Lit(_, s)
            | SExpr::Var(_, s)
            | SExpr::Con(_, s)
            | SExpr::Select(_, s)
            | SExpr::App(_, _, s)
            | SExpr::TApp(_, _, s)
            | SExpr::Lambda(_, _, s)
            | SExpr::BinOp(_, _, _, s)
            | SExpr::Pair(_, _, s)
            | SExpr::Let(_, _, _, s)
            | SExpr::Case(_, _, s)
            | SExpr::If(_, _, _, s) => *s,
        }
    }
}

/// One arm of a `case`/`match`: `C x̄ -> e`.
#[derive(Clone, Debug, PartialEq)]
pub struct SArm {
    pub tag: Symbol,
    pub binders: Vec<Symbol>,
    pub body: SExpr,
    pub span: Span,
}

/// Patterns allowed on the left of `let` and in equation parameters.
#[derive(Clone, Debug, PartialEq)]
pub enum Pattern {
    Var(Symbol),
    Pair(Symbol, Symbol),
    Unit,
    Wild,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stype_display() {
        let sp = Span::default();
        let t = SType::Out(
            Box::new(SType::Name(
                Symbol::intern("Stream"),
                vec![SType::Name(Symbol::intern("Int"), vec![], sp)],
                sp,
            )),
            Box::new(SType::EndOut(sp)),
            sp,
        );
        assert_eq!(t.to_string(), "!(Stream Int).End!");
    }

    #[test]
    fn arrow_display_parenthesizes_domain() {
        let sp = Span::default();
        let unit = || SType::Unit(sp);
        let inner = SType::Arrow(Box::new(unit()), Box::new(unit()), sp);
        let t = SType::Arrow(Box::new(inner), Box::new(unit()), sp);
        assert_eq!(t.to_string(), "(Unit -> Unit) -> Unit");
    }
}
