//! Tokens of the AlgST surface language.

use crate::span::Span;
use algst_core::symbol::Symbol;
use std::fmt;

/// A lexical token kind.
#[derive(Clone, Debug, PartialEq)]
pub enum Tok {
    // literals and names
    LIdent(Symbol),
    UIdent(Symbol),
    IntLit(i64),
    CharLit(char),
    StrLit(String),

    // keywords
    Protocol,
    Data,
    TypeKw,
    Forall,
    Let,
    In,
    Case,
    Of,
    Match,
    With,
    If,
    Then,
    Else,
    DualKw,
    SelectKw,

    // session type atoms
    EndBang,
    EndQuest,

    // punctuation and operators
    Equals,
    Colon,
    Dot,
    Comma,
    Bar,
    PipeGt, // |>   (reverse application ▷)
    Arrow,  // ->
    Backslash,
    LParen,
    RParen,
    LBracket,
    RBracket,
    LBrace,
    RBrace,
    Bang,
    Quest,
    Dash,
    Plus,
    Star,
    Slash,
    Percent,
    Lt,
    Gt,
    Le,
    Ge,
    EqEq,
    Neq, // /=
    AndAnd,
    OrOr,
    Underscore,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::LIdent(s) | Tok::UIdent(s) => write!(f, "{s}"),
            Tok::IntLit(n) => write!(f, "{n}"),
            Tok::CharLit(c) => write!(f, "{c:?}"),
            Tok::StrLit(s) => write!(f, "{s:?}"),
            Tok::Protocol => write!(f, "protocol"),
            Tok::Data => write!(f, "data"),
            Tok::TypeKw => write!(f, "type"),
            Tok::Forall => write!(f, "forall"),
            Tok::Let => write!(f, "let"),
            Tok::In => write!(f, "in"),
            Tok::Case => write!(f, "case"),
            Tok::Of => write!(f, "of"),
            Tok::Match => write!(f, "match"),
            Tok::With => write!(f, "with"),
            Tok::If => write!(f, "if"),
            Tok::Then => write!(f, "then"),
            Tok::Else => write!(f, "else"),
            Tok::DualKw => write!(f, "Dual"),
            Tok::SelectKw => write!(f, "select"),
            Tok::EndBang => write!(f, "End!"),
            Tok::EndQuest => write!(f, "End?"),
            Tok::Equals => write!(f, "="),
            Tok::Colon => write!(f, ":"),
            Tok::Dot => write!(f, "."),
            Tok::Comma => write!(f, ","),
            Tok::Bar => write!(f, "|"),
            Tok::PipeGt => write!(f, "|>"),
            Tok::Arrow => write!(f, "->"),
            Tok::Backslash => write!(f, "\\"),
            Tok::LParen => write!(f, "("),
            Tok::RParen => write!(f, ")"),
            Tok::LBracket => write!(f, "["),
            Tok::RBracket => write!(f, "]"),
            Tok::LBrace => write!(f, "{{"),
            Tok::RBrace => write!(f, "}}"),
            Tok::Bang => write!(f, "!"),
            Tok::Quest => write!(f, "?"),
            Tok::Dash => write!(f, "-"),
            Tok::Plus => write!(f, "+"),
            Tok::Star => write!(f, "*"),
            Tok::Slash => write!(f, "/"),
            Tok::Percent => write!(f, "%"),
            Tok::Lt => write!(f, "<"),
            Tok::Gt => write!(f, ">"),
            Tok::Le => write!(f, "<="),
            Tok::Ge => write!(f, ">="),
            Tok::EqEq => write!(f, "=="),
            Tok::Neq => write!(f, "/="),
            Tok::AndAnd => write!(f, "&&"),
            Tok::OrOr => write!(f, "||"),
            Tok::Underscore => write!(f, "_"),
        }
    }
}

/// A token with its source span.
#[derive(Clone, Debug, PartialEq)]
pub struct Token {
    pub tok: Tok,
    pub span: Span,
}
