//! Recursive-descent parser for the AlgST surface language.
//!
//! The concrete syntax follows the paper's examples (Haskell-flavoured):
//!
//! ```text
//! protocol Arith = Neg Int -Int | Add Int Int -Int
//! type Service a = forall (s:S). ?a.s -> s
//!
//! serveArith : forall (s:S). ?Arith.s -> s
//! serveArith [s] c = match c with {
//!   Neg c -> let (x, c) = receive [Int, !Int.s] c in
//!            send [Int, s] (0 - x) c,
//!   Add c -> let (x, c) = receive [Int, ?Int.!Int.s] c in
//!            let (y, c) = receive [Int, !Int.s] c in
//!            send [Int, s] (x + y) c }
//! ```
//!
//! **Layout rule:** a top-level declaration starts at column 1; any token
//! at column 1 terminates the expression or type being parsed. This
//! replaces Haskell's layout algorithm with the one convention the paper's
//! examples already follow.

use crate::ast::*;
use crate::lexer::{lex, LexError};
use crate::span::Span;
use crate::token::{Tok, Token};
use algst_core::expr::Lit;
use algst_core::kind::Kind;
use algst_core::symbol::Symbol;
use std::fmt;

/// A parse error with location information.
#[derive(Clone, Debug, PartialEq)]
pub struct ParseError {
    pub message: String,
    pub span: Span,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}: {}", self.span, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> ParseError {
        ParseError {
            message: e.message,
            span: e.span,
        }
    }
}

type PResult<T> = Result<T, ParseError>;

/// Parses a full program (a sequence of declarations).
pub fn parse_program(src: &str) -> PResult<Program> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let mut decls = Vec::new();
    while p.pos < p.tokens.len() {
        decls.push(p.decl()?);
    }
    Ok(Program { decls })
}

/// Parses a single type, e.g. for tests and tooling.
pub fn parse_type(src: &str) -> PResult<SType> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let t = p.ty()?;
    p.expect_eof()?;
    Ok(t)
}

/// Parses a single expression.
pub fn parse_expr(src: &str) -> PResult<SExpr> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let e = p.expr()?;
    p.expect_eof()?;
    Ok(e)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    // ---------------------------------------------------------- utilities

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    /// Peek, but refuse tokens at column 1 (they belong to the next
    /// top-level declaration). Use for *optional* continuations.
    fn cont(&self) -> Option<&Token> {
        self.peek().filter(|t| t.span.col > 1)
    }

    fn cont_tok(&self) -> Option<&Tok> {
        self.cont().map(|t| &t.tok)
    }

    fn last_span(&self) -> Span {
        if self.pos == 0 {
            Span::default()
        } else {
            self.tokens[self.pos - 1].span
        }
    }

    fn here(&self) -> Span {
        self.peek()
            .map(|t| t.span)
            .unwrap_or_else(|| self.last_span())
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn error<T>(&self, message: impl Into<String>) -> PResult<T> {
        Err(ParseError {
            message: message.into(),
            span: self.here(),
        })
    }

    fn expect(&mut self, tok: Tok) -> PResult<Span> {
        match self.peek() {
            Some(t) if t.tok == tok => Ok(self.bump().expect("peeked").span),
            Some(t) => {
                let found = t.tok.clone();
                self.error(format!("expected `{tok}`, found `{found}`"))
            }
            None => self.error(format!("expected `{tok}`, found end of input")),
        }
    }

    fn expect_eof(&mut self) -> PResult<()> {
        match self.peek() {
            None => Ok(()),
            Some(t) => {
                let found = t.tok.clone();
                self.error(format!("expected end of input, found `{found}`"))
            }
        }
    }

    fn lident(&mut self) -> PResult<(Symbol, Span)> {
        match self.peek() {
            Some(Token {
                tok: Tok::LIdent(s),
                span,
            }) => {
                let r = (*s, *span);
                self.bump();
                Ok(r)
            }
            _ => self.error("expected a lowercase identifier"),
        }
    }

    fn uident(&mut self) -> PResult<(Symbol, Span)> {
        match self.peek() {
            Some(Token {
                tok: Tok::UIdent(s),
                span,
            }) => {
                let r = (*s, *span);
                self.bump();
                Ok(r)
            }
            _ => self.error("expected an uppercase identifier"),
        }
    }

    // ------------------------------------------------------- declarations

    fn decl(&mut self) -> PResult<Decl> {
        match self.peek().map(|t| t.tok.clone()) {
            Some(Tok::Protocol) => self.type_decl(true),
            Some(Tok::Data) => self.type_decl(false),
            Some(Tok::TypeKw) => self.alias_decl(),
            Some(Tok::LIdent(_)) => self.signature_or_binding(),
            Some(other) => self.error(format!(
                "expected a declaration (protocol/data/type/definition), found `{other}`"
            )),
            None => self.error("expected a declaration"),
        }
    }

    fn type_decl(&mut self, is_protocol: bool) -> PResult<Decl> {
        let start = self.bump().expect("peeked").span; // protocol/data
        let (name, _) = self.uident()?;
        let mut params = Vec::new();
        while let Some(Tok::LIdent(p)) = self.cont_tok() {
            params.push(*p);
            self.bump();
        }
        self.expect(Tok::Equals)?;
        let mut ctors = vec![self.ctor_decl()?];
        while self.cont_tok() == Some(&Tok::Bar) {
            self.bump();
            ctors.push(self.ctor_decl()?);
        }
        let span = start.to(self.last_span());
        let d = TypeDecl {
            name,
            params,
            ctors,
            span,
        };
        Ok(if is_protocol {
            Decl::Protocol(d)
        } else {
            Decl::Data(d)
        })
    }

    fn ctor_decl(&mut self) -> PResult<CtorDecl> {
        let (name, start) = self.uident()?;
        let mut args = Vec::new();
        while self.starts_type_atom() {
            args.push(self.ty_atom()?);
        }
        Ok(CtorDecl {
            name,
            args,
            span: start.to(self.last_span()),
        })
    }

    fn alias_decl(&mut self) -> PResult<Decl> {
        let start = self.bump().expect("peeked").span; // type
        let (name, _) = self.uident()?;
        let mut params = Vec::new();
        while let Some(Tok::LIdent(p)) = self.cont_tok() {
            params.push(*p);
            self.bump();
        }
        self.expect(Tok::Equals)?;
        let body = self.ty()?;
        Ok(Decl::Alias(AliasDecl {
            name,
            params,
            body,
            span: start.to(self.last_span()),
        }))
    }

    fn signature_or_binding(&mut self) -> PResult<Decl> {
        let (name, start) = self.lident()?;
        if self.cont_tok() == Some(&Tok::Colon) {
            self.bump();
            let ty = self.ty()?;
            return Ok(Decl::Signature(SignatureDecl {
                name,
                ty,
                span: start.to(self.last_span()),
            }));
        }
        // Binding: parameters until `=`.
        let mut params = Vec::new();
        loop {
            match self.cont_tok() {
                Some(Tok::Equals) => break,
                Some(Tok::LIdent(x)) => {
                    params.push(Param::Term(*x));
                    self.bump();
                }
                Some(Tok::Underscore) => {
                    params.push(Param::Wild);
                    self.bump();
                }
                Some(Tok::LBracket) => {
                    self.bump();
                    let mut vars = Vec::new();
                    loop {
                        let (v, _) = self.lident()?;
                        vars.push(v);
                        if self.peek().map(|t| &t.tok) == Some(&Tok::Comma) {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    self.expect(Tok::RBracket)?;
                    params.push(Param::Types(vars));
                }
                _ => return self.error("expected a parameter or `=` in definition"),
            }
        }
        self.expect(Tok::Equals)?;
        let body = self.expr()?;
        Ok(Decl::Binding(BindingDecl {
            name,
            params,
            body,
            span: start.to(self.last_span()),
        }))
    }

    // --------------------------------------------------------------- types

    fn ty(&mut self) -> PResult<SType> {
        if self.peek().map(|t| &t.tok) == Some(&Tok::Forall) {
            let start = self.bump().expect("peeked").span;
            self.expect(Tok::LParen)?;
            let (var, _) = self.lident()?;
            self.expect(Tok::Colon)?;
            let kind = self.kind()?;
            self.expect(Tok::RParen)?;
            self.expect(Tok::Dot)?;
            let body = self.ty()?;
            let span = start.to(body.span());
            return Ok(SType::Forall(var, kind, Box::new(body), span));
        }
        self.ty_arrow()
    }

    fn kind(&mut self) -> PResult<Kind> {
        let (name, _) = self.uident()?;
        let s = name.as_str();
        if s.len() == 1 {
            if let Some(k) = Kind::from_letter(s.chars().next().expect("len checked")) {
                return Ok(k);
            }
        }
        self.error(format!("expected a kind (S, T or P), found `{s}`"))
    }

    fn ty_arrow(&mut self) -> PResult<SType> {
        let lhs = self.ty_seq()?;
        if self.cont_tok() == Some(&Tok::Arrow) {
            self.bump();
            let rhs = self.ty()?; // right-associative
            let span = lhs.span().to(rhs.span());
            return Ok(SType::Arrow(Box::new(lhs), Box::new(rhs), span));
        }
        Ok(lhs)
    }

    /// Session-prefix level: `!T.S`, `?T.S`, otherwise an application type.
    fn ty_seq(&mut self) -> PResult<SType> {
        match self.peek().map(|t| &t.tok) {
            Some(Tok::Bang) => {
                let start = self.bump().expect("peeked").span;
                let payload = self.ty_msg()?;
                self.expect(Tok::Dot)?;
                let cont = self.ty_seq()?;
                let span = start.to(cont.span());
                Ok(SType::Out(Box::new(payload), Box::new(cont), span))
            }
            Some(Tok::Quest) => {
                let start = self.bump().expect("peeked").span;
                let payload = self.ty_msg()?;
                self.expect(Tok::Dot)?;
                let cont = self.ty_seq()?;
                let span = start.to(cont.span());
                Ok(SType::In(Box::new(payload), Box::new(cont), span))
            }
            _ => self.ty_app(),
        }
    }

    /// Message payload: an application type, optionally negated.
    fn ty_msg(&mut self) -> PResult<SType> {
        if self.peek().map(|t| &t.tok) == Some(&Tok::Dash) {
            let start = self.bump().expect("peeked").span;
            let inner = self.ty_msg()?;
            let span = start.to(inner.span());
            return Ok(SType::Neg(Box::new(inner), span));
        }
        self.ty_app()
    }

    fn ty_app(&mut self) -> PResult<SType> {
        let head = self.ty_atom()?;
        // Only *bare* named heads can be applied. A name that already
        // carries arguments came out of parentheses — e.g. the payload
        // in `!(Repeat Int).End!` — and is complete as it stands
        // (application is not curried through parens).
        if let SType::Name(name, args0, start) = head {
            if !args0.is_empty() {
                return Ok(SType::Name(name, args0, start));
            }
            let mut args = Vec::new();
            while self.starts_type_atom() {
                args.push(self.ty_atom()?);
            }
            let span = start.to(self.last_span());
            Ok(SType::Name(name, args, span))
        } else {
            Ok(head)
        }
    }

    fn starts_type_atom(&self) -> bool {
        matches!(
            self.cont_tok(),
            Some(
                Tok::LParen
                    | Tok::UIdent(_)
                    | Tok::LIdent(_)
                    | Tok::EndBang
                    | Tok::EndQuest
                    | Tok::DualKw
                    | Tok::Dash
            )
        )
    }

    fn ty_atom(&mut self) -> PResult<SType> {
        match self.peek().map(|t| t.tok.clone()) {
            Some(Tok::LParen) => {
                let start = self.bump().expect("peeked").span;
                let first = self.ty()?;
                if self.peek().map(|t| &t.tok) == Some(&Tok::Comma) {
                    self.bump();
                    let second = self.ty()?;
                    let end = self.expect(Tok::RParen)?;
                    Ok(SType::Pair(
                        Box::new(first),
                        Box::new(second),
                        start.to(end),
                    ))
                } else {
                    self.expect(Tok::RParen)?;
                    Ok(first)
                }
            }
            Some(Tok::UIdent(name)) => {
                let span = self.bump().expect("peeked").span;
                if name.as_str() == "Unit" {
                    Ok(SType::Unit(span))
                } else {
                    Ok(SType::Name(name, Vec::new(), span))
                }
            }
            Some(Tok::LIdent(name)) => {
                let span = self.bump().expect("peeked").span;
                Ok(SType::Var(name, span))
            }
            Some(Tok::EndBang) => {
                let span = self.bump().expect("peeked").span;
                Ok(SType::EndOut(span))
            }
            Some(Tok::EndQuest) => {
                let span = self.bump().expect("peeked").span;
                Ok(SType::EndIn(span))
            }
            Some(Tok::DualKw) => {
                let start = self.bump().expect("peeked").span;
                let inner = self.ty_atom()?;
                let span = start.to(inner.span());
                Ok(SType::Dual(Box::new(inner), span))
            }
            Some(Tok::Dash) => {
                let start = self.bump().expect("peeked").span;
                let inner = self.ty_atom()?;
                let span = start.to(inner.span());
                Ok(SType::Neg(Box::new(inner), span))
            }
            _ => self.error("expected a type"),
        }
    }

    // --------------------------------------------------------- expressions

    fn expr(&mut self) -> PResult<SExpr> {
        match self.peek().map(|t| t.tok.clone()) {
            Some(Tok::Backslash) => self.lambda(),
            Some(Tok::Let) => self.let_expr(),
            Some(Tok::If) => self.if_expr(),
            Some(Tok::Case) => self.case_expr(Tok::Of),
            Some(Tok::Match) => self.case_expr(Tok::With),
            _ => self.pipe_expr(),
        }
    }

    fn lambda(&mut self) -> PResult<SExpr> {
        let start = self.bump().expect("peeked").span; // backslash
        let mut params = Vec::new();
        loop {
            match self.peek().map(|t| t.tok.clone()) {
                Some(Tok::LIdent(x)) => {
                    params.push(x);
                    self.bump();
                }
                Some(Tok::Underscore) => {
                    params.push(Symbol::fresh("_wild"));
                    self.bump();
                }
                Some(Tok::Arrow) => break,
                _ => return self.error("expected a lambda parameter or `->`"),
            }
        }
        if params.is_empty() {
            return self.error("lambda needs at least one parameter");
        }
        self.expect(Tok::Arrow)?;
        let body = self.expr()?;
        let span = start.to(body.span());
        Ok(SExpr::Lambda(params, Box::new(body), span))
    }

    fn let_expr(&mut self) -> PResult<SExpr> {
        let start = self.bump().expect("peeked").span; // let
        let pat = self.pattern()?;
        self.expect(Tok::Equals)?;
        let bound = self.expr()?;
        self.expect(Tok::In)?;
        let body = self.expr()?;
        let span = start.to(body.span());
        Ok(SExpr::Let(pat, Box::new(bound), Box::new(body), span))
    }

    fn pattern(&mut self) -> PResult<Pattern> {
        match self.peek().map(|t| t.tok.clone()) {
            Some(Tok::LIdent(x)) => {
                self.bump();
                Ok(Pattern::Var(x))
            }
            Some(Tok::Underscore) => {
                self.bump();
                Ok(Pattern::Wild)
            }
            Some(Tok::Star) => {
                self.bump();
                Ok(Pattern::Unit)
            }
            Some(Tok::LParen) => {
                self.bump();
                if self.peek().map(|t| &t.tok) == Some(&Tok::RParen) {
                    self.bump();
                    return Ok(Pattern::Unit);
                }
                let (x, _) = self.lident()?;
                self.expect(Tok::Comma)?;
                let (y, _) = self.lident()?;
                self.expect(Tok::RParen)?;
                Ok(Pattern::Pair(x, y))
            }
            _ => self.error("expected a pattern (x, (x, y), _, * or ())"),
        }
    }

    fn if_expr(&mut self) -> PResult<SExpr> {
        let start = self.bump().expect("peeked").span; // if
        let cond = self.expr()?;
        self.expect(Tok::Then)?;
        let thn = self.expr()?;
        self.expect(Tok::Else)?;
        let els = self.expr()?;
        let span = start.to(els.span());
        Ok(SExpr::If(
            Box::new(cond),
            Box::new(thn),
            Box::new(els),
            span,
        ))
    }

    /// `case e of { arms }` / `match e with { arms }`.
    fn case_expr(&mut self, separator: Tok) -> PResult<SExpr> {
        let start = self.bump().expect("peeked").span; // case/match
        let scrutinee = self.pipe_expr()?;
        self.expect(separator)?;
        self.expect(Tok::LBrace)?;
        let mut arms = Vec::new();
        loop {
            arms.push(self.arm()?);
            match self.peek().map(|t| t.tok.clone()) {
                Some(Tok::Comma) => {
                    self.bump();
                    // allow trailing comma
                    if self.peek().map(|t| &t.tok) == Some(&Tok::RBrace) {
                        break;
                    }
                }
                Some(Tok::RBrace) => break,
                _ => return self.error("expected `,` or `}` after case arm"),
            }
        }
        let end = self.expect(Tok::RBrace)?;
        Ok(SExpr::Case(Box::new(scrutinee), arms, start.to(end)))
    }

    fn arm(&mut self) -> PResult<SArm> {
        let (tag, start) = self.uident()?;
        let mut binders = Vec::new();
        loop {
            match self.peek().map(|t| t.tok.clone()) {
                Some(Tok::LIdent(x)) => {
                    binders.push(x);
                    self.bump();
                }
                Some(Tok::Underscore) => {
                    binders.push(Symbol::fresh("_wild"));
                    self.bump();
                }
                _ => break,
            }
        }
        self.expect(Tok::Arrow)?;
        let body = self.expr()?;
        let span = start.to(body.span());
        Ok(SArm {
            tag,
            binders,
            body,
            span,
        })
    }

    /// `e |> f |> g` — reverse application, lowest precedence,
    /// left-associative: `x |> f |> g` is `g (f x)`.
    fn pipe_expr(&mut self) -> PResult<SExpr> {
        let mut lhs = self.or_expr()?;
        while self.cont_tok() == Some(&Tok::PipeGt) {
            self.bump();
            // The right operand of |> may itself be a lambda/let/etc.
            let rhs = match self.peek().map(|t| t.tok.clone()) {
                Some(Tok::Backslash) => self.lambda()?,
                _ => self.or_expr()?,
            };
            let span = lhs.span().to(rhs.span());
            lhs = SExpr::App(Box::new(rhs), Box::new(lhs), span);
        }
        Ok(lhs)
    }

    fn or_expr(&mut self) -> PResult<SExpr> {
        let mut lhs = self.and_expr()?;
        while self.cont_tok() == Some(&Tok::OrOr) {
            self.bump();
            let rhs = self.and_expr()?;
            lhs = binop("||", lhs, rhs);
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> PResult<SExpr> {
        let mut lhs = self.cmp_expr()?;
        while self.cont_tok() == Some(&Tok::AndAnd) {
            self.bump();
            let rhs = self.cmp_expr()?;
            lhs = binop("&&", lhs, rhs);
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> PResult<SExpr> {
        let lhs = self.add_expr()?;
        let op = match self.cont_tok() {
            Some(Tok::EqEq) => "==",
            Some(Tok::Neq) => "/=",
            Some(Tok::Lt) => "<",
            Some(Tok::Le) => "<=",
            Some(Tok::Gt) => ">",
            Some(Tok::Ge) => ">=",
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.add_expr()?;
        Ok(binop(op, lhs, rhs))
    }

    fn add_expr(&mut self) -> PResult<SExpr> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.cont_tok() {
                Some(Tok::Plus) => "+",
                Some(Tok::Dash) => "-",
                _ => break,
            };
            self.bump();
            let rhs = self.mul_expr()?;
            lhs = binop(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> PResult<SExpr> {
        let mut lhs = self.app_expr()?;
        loop {
            let op = match self.cont_tok() {
                Some(Tok::Star) => "*",
                Some(Tok::Slash) => "/",
                Some(Tok::Percent) => "%",
                _ => break,
            };
            self.bump();
            let rhs = self.app_expr()?;
            lhs = binop(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn app_expr(&mut self) -> PResult<SExpr> {
        let mut head = self.atom()?;
        loop {
            if self.starts_expr_atom() {
                let arg = self.atom()?;
                let span = head.span().to(arg.span());
                head = SExpr::App(Box::new(head), Box::new(arg), span);
            } else if self.cont_tok() == Some(&Tok::LBracket) {
                self.bump();
                let mut tys = vec![self.ty()?];
                while self.peek().map(|t| &t.tok) == Some(&Tok::Comma) {
                    self.bump();
                    tys.push(self.ty()?);
                }
                let end = self.expect(Tok::RBracket)?;
                let span = head.span().to(end);
                head = SExpr::TApp(Box::new(head), tys, span);
            } else {
                break;
            }
        }
        Ok(head)
    }

    fn starts_expr_atom(&self) -> bool {
        matches!(
            self.cont_tok(),
            Some(
                Tok::LIdent(_)
                    | Tok::UIdent(_)
                    | Tok::IntLit(_)
                    | Tok::CharLit(_)
                    | Tok::StrLit(_)
                    | Tok::LParen
                    | Tok::SelectKw
            )
        )
    }

    fn atom(&mut self) -> PResult<SExpr> {
        match self.peek().map(|t| t.tok.clone()) {
            Some(Tok::IntLit(n)) => {
                let span = self.bump().expect("peeked").span;
                Ok(SExpr::Lit(Lit::Int(n), span))
            }
            Some(Tok::CharLit(c)) => {
                let span = self.bump().expect("peeked").span;
                Ok(SExpr::Lit(Lit::Char(c), span))
            }
            Some(Tok::StrLit(s)) => {
                let span = self.bump().expect("peeked").span;
                Ok(SExpr::Lit(Lit::Str(s), span))
            }
            Some(Tok::LIdent(x)) => {
                let span = self.bump().expect("peeked").span;
                Ok(SExpr::Var(x, span))
            }
            Some(Tok::UIdent(c)) => {
                let span = self.bump().expect("peeked").span;
                match c.as_str() {
                    "True" => Ok(SExpr::Lit(Lit::Bool(true), span)),
                    "False" => Ok(SExpr::Lit(Lit::Bool(false), span)),
                    _ => Ok(SExpr::Con(c, span)),
                }
            }
            Some(Tok::SelectKw) => {
                let start = self.bump().expect("peeked").span;
                let (tag, end) = self.uident()?;
                Ok(SExpr::Select(tag, start.to(end)))
            }
            Some(Tok::LParen) => {
                let start = self.bump().expect("peeked").span;
                if self.peek().map(|t| &t.tok) == Some(&Tok::RParen) {
                    let end = self.bump().expect("peeked").span;
                    return Ok(SExpr::Lit(Lit::Unit, start.to(end)));
                }
                let first = self.expr()?;
                if self.peek().map(|t| &t.tok) == Some(&Tok::Comma) {
                    self.bump();
                    let second = self.expr()?;
                    let end = self.expect(Tok::RParen)?;
                    Ok(SExpr::Pair(
                        Box::new(first),
                        Box::new(second),
                        start.to(end),
                    ))
                } else {
                    self.expect(Tok::RParen)?;
                    Ok(first)
                }
            }
            _ => self.error("expected an expression"),
        }
    }
}

fn binop(op: &str, lhs: SExpr, rhs: SExpr) -> SExpr {
    let span = lhs.span().to(rhs.span());
    SExpr::BinOp(Symbol::intern(op), Box::new(lhs), Box::new(rhs), span)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_protocol_decl() {
        let p = parse_program("protocol IntListP = Nil | Cons Int IntListP").unwrap();
        assert_eq!(p.decls.len(), 1);
        let Decl::Protocol(d) = &p.decls[0] else {
            panic!("expected protocol")
        };
        assert_eq!(d.name.as_str(), "IntListP");
        assert_eq!(d.ctors.len(), 2);
        assert_eq!(d.ctors[1].args.len(), 2);
    }

    #[test]
    fn parses_parameterized_protocol() {
        let p = parse_program("protocol Stream a = Next a (Stream a)").unwrap();
        let Decl::Protocol(d) = &p.decls[0] else {
            panic!()
        };
        assert_eq!(d.params.len(), 1);
        let SType::Name(n, args, _) = &d.ctors[0].args[1] else {
            panic!()
        };
        assert_eq!(n.as_str(), "Stream");
        assert_eq!(args.len(), 1);
    }

    #[test]
    fn parenthesized_applied_name_keeps_its_arguments() {
        // Regression: `(Repeat Int)` as a message payload used to trip a
        // debug assertion in `ty_app` (and silently dropped the
        // arguments in release builds).
        let t = parse_type("!(Repeat Int).End!").unwrap();
        let SType::Out(payload, _, _) = t else {
            panic!("expected an output type")
        };
        let SType::Name(n, args, _) = *payload else {
            panic!("expected an applied name")
        };
        assert_eq!(n.as_str(), "Repeat");
        assert_eq!(args.len(), 1);
        // A parenthesized application is complete: a trailing atom is a
        // parse error, not a curried application.
        assert!(parse_type("(Repeat Int) Bool").is_err());
    }

    #[test]
    fn parses_polarity_in_ctor_args() {
        let p = parse_program("protocol Arith = Neg Int -Int | Add Int Int -Int").unwrap();
        let Decl::Protocol(d) = &p.decls[0] else {
            panic!()
        };
        assert!(matches!(d.ctors[0].args[1], SType::Neg(..)));
        assert_eq!(d.ctors[1].args.len(), 3);
    }

    #[test]
    fn parses_signature_with_forall() {
        let p = parse_program("sendAst : Ast -> forall (s:S). !AstP.s -> s").unwrap();
        let Decl::Signature(sig) = &p.decls[0] else {
            panic!()
        };
        assert_eq!(sig.ty.to_string(), "Ast -> forall (s:S). !AstP.s -> s");
    }

    #[test]
    fn parses_session_types() {
        let t = parse_type("?Repeat Int . !(Char, End!) . End!").unwrap();
        assert_eq!(t.to_string(), "?(Repeat Int).!(Char, End!).End!");
        let t = parse_type("Dual (!Repeat Int. ?(Char, End!). Dual End!)").unwrap();
        assert!(matches!(t, SType::Dual(..)));
    }

    #[test]
    fn parses_negated_payloads() {
        let t = parse_type("?-a.s").unwrap();
        let SType::In(p, _, _) = t else { panic!() };
        assert!(matches!(*p, SType::Neg(..)));
        let t = parse_type("! Stream -a .End!").unwrap();
        let SType::Out(p, _, _) = t else { panic!() };
        let SType::Name(_, args, _) = *p else {
            panic!()
        };
        assert!(matches!(args[0], SType::Neg(..)));
    }

    #[test]
    fn parses_match_with_arms() {
        let e =
            parse_expr("match c with { ConP c -> recvInt [s] c, AddP c -> recvAst [?AstP.s] c }")
                .unwrap();
        let SExpr::Case(_, arms, _) = e else { panic!() };
        assert_eq!(arms.len(), 2);
        assert_eq!(arms[0].binders.len(), 1);
    }

    #[test]
    fn parses_pipe_as_reverse_application() {
        // x |> f |> g  ==  g (f x)
        let e = parse_expr("x |> f |> g").unwrap();
        let SExpr::App(g, fx, _) = e else { panic!() };
        assert!(matches!(*g, SExpr::Var(..)));
        let SExpr::App(f, x, _) = *fx else { panic!() };
        assert!(matches!(*f, SExpr::Var(..)));
        assert!(matches!(*x, SExpr::Var(..)));
    }

    #[test]
    fn parses_type_application_lists() {
        let e = parse_expr("select Next [Int, End!] c").unwrap();
        // select Next [Int,End!] c = App(TApp(Select, [Int, End!]), c)
        let SExpr::App(f, _, _) = e else { panic!() };
        let SExpr::TApp(sel, tys, _) = *f else {
            panic!()
        };
        assert!(matches!(*sel, SExpr::Select(..)));
        assert_eq!(tys.len(), 2);
    }

    #[test]
    fn parses_let_pair() {
        let e = parse_expr("let (x, c) = receive [Int, s] c in (x, c)").unwrap();
        let SExpr::Let(Pattern::Pair(..), _, _, _) = e else {
            panic!()
        };
    }

    #[test]
    fn parses_operators_with_precedence() {
        // 1 + 2 * 3 == 7  parses as  (1 + (2*3)) == 7
        let e = parse_expr("1 + 2 * 3 == 7").unwrap();
        let SExpr::BinOp(eq, lhs, _, _) = e else {
            panic!()
        };
        assert_eq!(eq.as_str(), "==");
        let SExpr::BinOp(plus, _, rhs, _) = *lhs else {
            panic!()
        };
        assert_eq!(plus.as_str(), "+");
        assert!(matches!(*rhs, SExpr::BinOp(..)));
    }

    #[test]
    fn layout_separates_declarations() {
        let src = "ones : Unit\nones = ()\nmain : Unit\nmain = ()";
        let p = parse_program(src).unwrap();
        assert_eq!(p.decls.len(), 4);
    }

    #[test]
    fn continuation_lines_are_part_of_definition() {
        let src = "f x =\n  let y = x in\n  y";
        let p = parse_program(src).unwrap();
        assert_eq!(p.decls.len(), 1);
    }

    #[test]
    fn paper_serve_arith_parses() {
        let src = r#"
serveArith : forall (s:S). ?Arith.s -> s
serveArith [s] c = match c with {
  Neg c -> let (x, c) = receive [Int, !Int.s] c in
           send [Int, s] (0 - x) c,
  Add c -> let (x, c) = receive [Int, ?Int.!Int.s] c in
           let (y, c) = receive [Int, !Int.s] c in
           send [Int, s] (x + y) c }
"#;
        let p = parse_program(src).unwrap();
        assert_eq!(p.decls.len(), 2);
        let Decl::Binding(b) = &p.decls[1] else {
            panic!()
        };
        assert_eq!(b.params.len(), 2); // [s] and c
    }

    #[test]
    fn error_reports_location() {
        let err = parse_program("protocol = Nil").unwrap_err();
        assert!(err.message.contains("uppercase"));
        assert_eq!(err.span.line, 1);
    }

    #[test]
    fn trailing_comma_in_arms_ok() {
        let e = parse_expr("match c with { A c -> c, B c -> c, }").unwrap();
        let SExpr::Case(_, arms, _) = e else { panic!() };
        assert_eq!(arms.len(), 2);
    }
}
