//! The AlgST lexer.
//!
//! Hand-written, with line/column tracking (the parser uses a simple layout
//! rule: top-level declarations start at column 1). Supports `--` line
//! comments and `{- … -}` block comments (nestable), and a few Unicode
//! aliases for the paper's notation: `→` for `->`, `λ` for `\`, `∀` for
//! `forall`, `▷` for `|>`, `⊗` is accepted in types as the pair separator
//! (lexed as a comma inside parentheses is *not* attempted; `⊗` is its own
//! token mapped to `,` by the parser — we simply reject it here to keep the
//! token set small; examples use tuple syntax).

use crate::span::Span;
use crate::token::{Tok, Token};
use algst_core::symbol::Symbol;
use std::fmt;

/// A lexical error with its location.
#[derive(Clone, Debug, PartialEq)]
pub struct LexError {
    pub message: String,
    pub span: Span,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at {}: {}", self.span, self.message)
    }
}

impl std::error::Error for LexError {}

struct Lexer<'s> {
    src: &'s str,
    chars: std::iter::Peekable<std::str::CharIndices<'s>>,
    line: u32,
    col: u32,
}

/// Tokenizes `src`.
///
/// # Errors
/// Returns a [`LexError`] on unterminated literals/comments or unexpected
/// characters.
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let mut lx = Lexer {
        src,
        chars: src.char_indices().peekable(),
        line: 1,
        col: 1,
    };
    lx.run()
}

impl<'s> Lexer<'s> {
    fn bump(&mut self) -> Option<(usize, char)> {
        let next = self.chars.next();
        if let Some((_, c)) = next {
            if c == '\n' {
                self.line += 1;
                self.col = 1;
            } else {
                self.col += 1;
            }
        }
        next
    }

    fn peek(&mut self) -> Option<char> {
        self.chars.peek().map(|&(_, c)| c)
    }

    fn peek_pos(&mut self) -> usize {
        self.chars.peek().map(|&(i, _)| i).unwrap_or(self.src.len())
    }

    fn error(&mut self, message: impl Into<String>) -> LexError {
        let pos = self.peek_pos();
        LexError {
            message: message.into(),
            span: Span::new(pos, pos, self.line, self.col),
        }
    }

    fn run(&mut self) -> Result<Vec<Token>, LexError> {
        let mut out = Vec::new();
        loop {
            // Skip whitespace and comments.
            loop {
                match self.peek() {
                    Some(c) if c.is_whitespace() => {
                        self.bump();
                    }
                    Some('-') if self.src[self.peek_pos()..].starts_with("--") => {
                        while let Some(c) = self.peek() {
                            if c == '\n' {
                                break;
                            }
                            self.bump();
                        }
                    }
                    Some('{') if self.src[self.peek_pos()..].starts_with("{-") => {
                        self.block_comment()?;
                    }
                    _ => break,
                }
            }
            let start = self.peek_pos();
            let (line, col) = (self.line, self.col);
            let Some(c) = self.peek() else { break };
            let tok = self.next_tok(c)?;
            let end = self.peek_pos();
            out.push(Token {
                tok,
                span: Span::new(start, end, line, col),
            });
        }
        Ok(out)
    }

    fn block_comment(&mut self) -> Result<(), LexError> {
        self.bump(); // {
        self.bump(); // -
        let mut depth = 1usize;
        while depth > 0 {
            match self.peek() {
                None => return Err(self.error("unterminated block comment")),
                Some('{') if self.src[self.peek_pos()..].starts_with("{-") => {
                    self.bump();
                    self.bump();
                    depth += 1;
                }
                Some('-') if self.src[self.peek_pos()..].starts_with("-}") => {
                    self.bump();
                    self.bump();
                    depth -= 1;
                }
                Some(_) => {
                    self.bump();
                }
            }
        }
        Ok(())
    }

    fn next_tok(&mut self, c: char) -> Result<Tok, LexError> {
        match c {
            '(' => self.single(Tok::LParen),
            ')' => self.single(Tok::RParen),
            '[' => self.single(Tok::LBracket),
            ']' => self.single(Tok::RBracket),
            '{' => self.single(Tok::LBrace),
            '}' => self.single(Tok::RBrace),
            '.' => self.single(Tok::Dot),
            ',' => self.single(Tok::Comma),
            ':' => self.single(Tok::Colon),
            '!' => self.single(Tok::Bang),
            '?' => self.single(Tok::Quest),
            '+' => self.single(Tok::Plus),
            '*' => self.single(Tok::Star),
            '%' => self.single(Tok::Percent),
            '\\' | 'λ' => self.single(Tok::Backslash),
            '→' => self.single(Tok::Arrow),
            '▷' => self.single(Tok::PipeGt),
            '∀' => self.single(Tok::Forall),
            '_' => self.single(Tok::Underscore),
            '=' => self.one_or_two('=', Tok::Equals, Tok::EqEq),
            '-' => {
                self.bump();
                if self.peek() == Some('>') {
                    self.bump();
                    Ok(Tok::Arrow)
                } else {
                    Ok(Tok::Dash)
                }
            }
            '/' => self.one_or_two('=', Tok::Slash, Tok::Neq),
            '<' => self.one_or_two('=', Tok::Lt, Tok::Le),
            '>' => self.one_or_two('=', Tok::Gt, Tok::Ge),
            '&' => {
                self.bump();
                if self.peek() == Some('&') {
                    self.bump();
                    Ok(Tok::AndAnd)
                } else {
                    Err(self.error("expected `&&`"))
                }
            }
            '|' => {
                self.bump();
                match self.peek() {
                    Some('>') => {
                        self.bump();
                        Ok(Tok::PipeGt)
                    }
                    Some('|') => {
                        self.bump();
                        Ok(Tok::OrOr)
                    }
                    _ => Ok(Tok::Bar),
                }
            }
            '\'' => self.char_lit(),
            '"' => self.string_lit(),
            c if c.is_ascii_digit() => self.int_lit(),
            c if c.is_alphabetic() => Ok(self.ident()),
            other => Err(self.error(format!("unexpected character {other:?}"))),
        }
    }

    fn single(&mut self, t: Tok) -> Result<Tok, LexError> {
        self.bump();
        Ok(t)
    }

    fn one_or_two(&mut self, second: char, one: Tok, two: Tok) -> Result<Tok, LexError> {
        self.bump();
        if self.peek() == Some(second) {
            self.bump();
            Ok(two)
        } else {
            Ok(one)
        }
    }

    fn int_lit(&mut self) -> Result<Tok, LexError> {
        let start = self.peek_pos();
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.bump();
        }
        let text = &self.src[start..self.peek_pos()];
        text.parse::<i64>()
            .map(Tok::IntLit)
            .map_err(|_| self.error(format!("integer literal out of range: {text}")))
    }

    fn char_lit(&mut self) -> Result<Tok, LexError> {
        self.bump(); // opening quote
        let c = match self.bump() {
            Some((_, '\\')) => match self.bump() {
                Some((_, 'n')) => '\n',
                Some((_, 't')) => '\t',
                Some((_, '\\')) => '\\',
                Some((_, '\'')) => '\'',
                _ => return Err(self.error("invalid escape in character literal")),
            },
            Some((_, c)) => c,
            None => return Err(self.error("unterminated character literal")),
        };
        match self.bump() {
            Some((_, '\'')) => Ok(Tok::CharLit(c)),
            _ => Err(self.error("unterminated character literal")),
        }
    }

    fn string_lit(&mut self) -> Result<Tok, LexError> {
        self.bump(); // opening quote
        let mut s = String::new();
        loop {
            match self.bump() {
                None => return Err(self.error("unterminated string literal")),
                Some((_, '"')) => return Ok(Tok::StrLit(s)),
                Some((_, '\\')) => match self.bump() {
                    Some((_, 'n')) => s.push('\n'),
                    Some((_, 't')) => s.push('\t'),
                    Some((_, '\\')) => s.push('\\'),
                    Some((_, '"')) => s.push('"'),
                    _ => return Err(self.error("invalid escape in string literal")),
                },
                Some((_, c)) => s.push(c),
            }
        }
    }

    fn ident(&mut self) -> Tok {
        let start = self.peek_pos();
        let first = self.peek().expect("ident called at end of input");
        while matches!(self.peek(), Some(c) if c.is_alphanumeric() || c == '_' || c == '\'') {
            self.bump();
        }
        let text = &self.src[start..self.peek_pos()];
        // `End!` / `End?` fuse with an immediately following bang/quest.
        if text == "End" {
            match self.peek() {
                Some('!') => {
                    self.bump();
                    return Tok::EndBang;
                }
                Some('?') => {
                    self.bump();
                    return Tok::EndQuest;
                }
                _ => {}
            }
        }
        match text {
            "protocol" => Tok::Protocol,
            "data" => Tok::Data,
            "type" => Tok::TypeKw,
            "forall" => Tok::Forall,
            "let" => Tok::Let,
            "in" => Tok::In,
            "case" => Tok::Case,
            "of" => Tok::Of,
            "match" => Tok::Match,
            "with" => Tok::With,
            "if" => Tok::If,
            "then" => Tok::Then,
            "else" => Tok::Else,
            "Dual" => Tok::DualKw,
            "select" => Tok::SelectKw,
            "True" => Tok::UIdent(Symbol::intern("True")),
            "False" => Tok::UIdent(Symbol::intern("False")),
            _ => {
                if first.is_uppercase() {
                    Tok::UIdent(Symbol::intern(text))
                } else {
                    Tok::LIdent(Symbol::intern(text))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn lexes_protocol_declaration() {
        let ts = toks("protocol IntListP = Nil | Cons Int IntListP");
        assert_eq!(ts[0], Tok::Protocol);
        assert_eq!(ts[1], Tok::UIdent(Symbol::intern("IntListP")));
        assert_eq!(ts[2], Tok::Equals);
        assert!(ts.contains(&Tok::Bar));
    }

    #[test]
    fn lexes_session_type() {
        let ts = toks("!Int.End! -> ?AstP.End?");
        assert_eq!(
            ts,
            vec![
                Tok::Bang,
                Tok::UIdent(Symbol::intern("Int")),
                Tok::Dot,
                Tok::EndBang,
                Tok::Arrow,
                Tok::Quest,
                Tok::UIdent(Symbol::intern("AstP")),
                Tok::Dot,
                Tok::EndQuest,
            ]
        );
    }

    #[test]
    fn end_requires_adjacency() {
        // `End !` with a space is an identifier followed by Bang.
        let ts = toks("End !");
        assert_eq!(ts, vec![Tok::UIdent(Symbol::intern("End")), Tok::Bang]);
    }

    #[test]
    fn pipes_and_operators() {
        let ts = toks("x |> f || y && z | w /= v");
        assert!(ts.contains(&Tok::PipeGt));
        assert!(ts.contains(&Tok::OrOr));
        assert!(ts.contains(&Tok::AndAnd));
        assert!(ts.contains(&Tok::Bar));
        assert!(ts.contains(&Tok::Neq));
    }

    #[test]
    fn comments_are_skipped() {
        let ts = toks("a -- comment\nb {- block {- nested -} -} c");
        assert_eq!(ts.len(), 3);
    }

    #[test]
    fn unterminated_block_comment_errors() {
        assert!(lex("{- oops").is_err());
    }

    #[test]
    fn literals() {
        let ts = toks("42 'x' \"hi\\n\" True");
        assert_eq!(ts[0], Tok::IntLit(42));
        assert_eq!(ts[1], Tok::CharLit('x'));
        assert_eq!(ts[2], Tok::StrLit("hi\n".into()));
        assert_eq!(ts[3], Tok::UIdent(Symbol::intern("True")));
    }

    #[test]
    fn tracks_columns_for_layout() {
        let tokens = lex("abc\n  def\nghi").unwrap();
        assert_eq!(tokens[0].span.col, 1);
        assert_eq!(tokens[1].span.col, 3);
        assert_eq!(tokens[1].span.line, 2);
        assert_eq!(tokens[2].span.col, 1);
        assert_eq!(tokens[2].span.line, 3);
    }

    #[test]
    fn arrow_vs_dash() {
        assert_eq!(toks("- ->"), vec![Tok::Dash, Tok::Arrow]);
        assert_eq!(
            toks("-Int"),
            vec![Tok::Dash, Tok::UIdent(Symbol::intern("Int"))]
        );
    }

    #[test]
    fn unicode_aliases() {
        assert_eq!(toks("→"), vec![Tok::Arrow]);
        assert_eq!(toks("λ"), vec![Tok::Backslash]);
        assert_eq!(toks("∀"), vec![Tok::Forall]);
        assert_eq!(toks("▷"), vec![Tok::PipeGt]);
    }
}
