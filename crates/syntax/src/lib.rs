//! # algst-syntax
//!
//! Concrete syntax for the AlgST language of *Parameterized Algebraic
//! Protocols* (PLDI 2023): lexer, recursive-descent parser and surface AST.
//!
//! The syntax follows the paper's Haskell-inspired examples. A program is a
//! sequence of declarations:
//!
//! ```text
//! protocol Stream a = Next a (Stream a)
//! type Service a = forall (s:S). ?a.s -> s
//!
//! ones : !Stream Int.End! -> Unit
//! ones c = select Next [Int, End!] c |> send [Int, !Stream Int.End!] 1 |> ones
//! ```
//!
//! Parse with [`parser::parse_program`]; resolution and type checking live
//! in the `algst-check` crate.
//!
//! ```
//! let program = algst_syntax::parser::parse_program(
//!     "protocol IntListP = Nil | Cons Int IntListP",
//! ).expect("parses");
//! assert_eq!(program.decls.len(), 1);
//! ```

pub mod ast;
pub mod lexer;
pub mod parser;
pub mod printer;
pub mod span;
pub mod token;

pub use ast::{Decl, Program, SExpr, SType};
pub use parser::{parse_expr, parse_program, parse_type, ParseError};
pub use printer::{
    decl_to_source, expr_eq, expr_to_source, program_eq, program_to_source, type_eq, type_to_source,
};
pub use span::Span;
