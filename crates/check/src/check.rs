//! The bidirectional expression typechecker (paper Fig. 5).
//!
//! Two mutually recursive judgments with leftover contexts:
//!
//! * `Δ | Γ₁ ⊢ e ⇒ T | Γ₂` — [`Checker::synth`] (type synthesis)
//! * `Δ | Γ₁ ⊢ e ⇐ T | Γ₂` — [`Checker::check`] (checking against a type)
//!
//! Invariants maintained exactly as in the paper: every type written into
//! the context is in normal form; synthesis returns normal forms; checking
//! expects its goal in normal form; rule E-Check compares up to
//! α-equivalence. The checking judgment additionally handles unannotated
//! lambdas and pushes goals through `let`/`if`/`match` (the E-Abs'/E-App'
//! style extensions described in Section 5).
//!
//! Representation split: the checker *destructures* boundary
//! [`Type`] trees, but the context stores α-canonical
//! [`TypeId`](algst_core::store::TypeId)s interned in the checker's
//! [`Session`], and every equality test (E-Check, branch agreement,
//! context agreement) is an id comparison. `∀`-instantiation (E-TApp)
//! happens at the id level, where it is capture-free and memoized.
//!
//! The session is **injected** ([`Checker::new`]): two checkers over
//! two sessions share no state, and a server can hand every worker its
//! own engine.

use crate::constants::type_of_const;
use crate::context::Ctx;
use crate::error::TypeError;
use algst_core::expr::{Arm, Expr};
use algst_core::kind::Kind;
use algst_core::kindcheck::KindCtx;
use algst_core::normalize::{dir_neg_seq, materialize_seq, nrm_pos, resugar};
use algst_core::protocol::Declarations;
use algst_core::subst::{subst_type, Subst};
use algst_core::symbol::Symbol;
use algst_core::types::Type;
use algst_core::Session;
use std::collections::HashMap;

/// The expression typechecker. Holds the global protocol/datatype
/// declarations `Δ`, the stack of in-scope type variables, and the
/// [`Session`] all interning/instantiation runs against.
pub struct Checker<'d, 's> {
    decls: &'d Declarations,
    session: &'s mut Session,
    tyvars: Vec<(Symbol, Kind)>,
}

impl<'d, 's> Checker<'d, 's> {
    pub fn new(decls: &'d Declarations, session: &'s mut Session) -> Checker<'d, 's> {
        Checker {
            decls,
            session,
            tyvars: Vec::new(),
        }
    }

    pub fn decls(&self) -> &'d Declarations {
        self.decls
    }

    fn kind_ctx(&self) -> KindCtx<'d> {
        let mut ctx = KindCtx::new(self.decls);
        for (v, k) in &self.tyvars {
            ctx.push_var(*v, *k);
        }
        ctx
    }

    fn check_kind(&self, ty: &Type, k: Kind) -> Result<(), TypeError> {
        self.kind_ctx().check(ty, k).map_err(TypeError::from)
    }

    /// Pushes a term binder, choosing linear vs. unrestricted usage from
    /// its type (cf. [`crate::context::is_unrestricted`]).
    fn push_term(&mut self, ctx: &mut Ctx, name: Symbol, ty: Type) {
        let un = crate::context::is_unrestricted(self.decls, &ty);
        ctx.push_term(self.session, name, ty, un);
    }

    /// α-equivalence through the session: both sides intern to
    /// α-canonical ids, so the comparison itself is integer equality
    /// (and both trees are hash-consed for later reuse).
    fn alpha_eq_interned(&mut self, a: &Type, b: &Type) -> bool {
        self.session.intern(a) == self.session.intern(b)
    }

    fn expect_alpha_eq(&mut self, expected: &Type, found: &Type) -> Result<(), TypeError> {
        if self.alpha_eq_interned(expected, found) {
            Ok(())
        } else {
            // Both sides are normal forms; resugar them for the
            // diagnostic (pull reified `Dual α` out of spines, drop
            // fresh binder names).
            Err(TypeError::Mismatch {
                expected: resugar(expected),
                found: resugar(found),
            })
        }
    }

    // ------------------------------------------------------------ synthesis

    /// `Δ | Γ ⊢ e ⇒ T | Γ'` — synthesizes the type of `e`, consuming the
    /// used linear entries of `ctx` in place. The result is in normal form.
    pub fn synth(&mut self, ctx: &mut Ctx, e: &Expr) -> Result<Type, TypeError> {
        match e {
            // E-Const (literals, builtins and session constants)
            Expr::Lit(l) => Ok(l.type_of()),
            Expr::Builtin(b) => Ok(b.type_of()),
            Expr::Const(c) => type_of_const(self.decls, *c),

            // E-Var / E-Var⋆ — the context stores interned ids; the
            // checker destructures trees, so extract at the boundary.
            Expr::Var(x) => ctx
                .use_var_ty(self.session, *x)
                .ok_or(TypeError::UnboundVariable(*x)),

            // E-Abs
            Expr::Abs(x, ann, body) => {
                self.check_kind(ann, Kind::Value)?;
                let v = nrm_pos(ann);
                self.push_term(ctx, *x, v.clone());
                let u = self.synth(ctx, body)?;
                ctx.expect_consumed(*x)?;
                Ok(Type::arrow(v, u))
            }

            Expr::AbsU(..) => Err(TypeError::NeedsAnnotation),

            // E-App — with the E-App' refinement (Section 5) for applied
            // unannotated lambdas: synthesize the argument first, then
            // type the body like a let. Such redexes arise from
            // β-reduction of checked terms (cf. Theorem 4).
            Expr::App(f, a) => {
                if let Expr::AbsU(x, body) = &**f {
                    let t = self.synth(ctx, a)?;
                    self.push_term(ctx, *x, t);
                    let u = self.synth(ctx, body)?;
                    ctx.expect_consumed(*x)?;
                    return Ok(u);
                }
                let ft = self.synth(ctx, f)?;
                match ft {
                    Type::Arrow(dom, cod) => {
                        self.check(ctx, a, &dom)?;
                        Ok((*cod).clone())
                    }
                    other => Err(TypeError::NotAFunction(other)),
                }
            }

            // E-TAbs (with the value restriction)
            Expr::TAbs(alpha, kappa, v) => {
                if !v.is_value() {
                    return Err(TypeError::TAbsNotValue);
                }
                self.tyvars.push((*alpha, *kappa));
                let t = self.synth(ctx, v);
                self.tyvars.pop();
                Ok(Type::forall(*alpha, *kappa, t?))
            }

            // E-TApp: β-instantiate and normalize at the id level —
            // capture-free by construction (nameless binders) and
            // memoized, so re-instantiating a signature already seen is
            // mostly table lookups.
            Expr::TApp(f, arg) => {
                let ft = self.synth(ctx, f)?;
                if let Type::Forall(_, kappa, _) = &ft {
                    let kappa = *kappa;
                    let mut kctx = self.kind_ctx();
                    let s = &mut *self.session;
                    let aid = s.intern(arg);
                    // Kind checking only reads nodes; the session's
                    // local mirror covers every id it just produced.
                    kctx.check_id(s.local(), aid, kappa)
                        .map_err(TypeError::from)?;
                    let fid = s.intern(&ft);
                    let inst = s.instantiate(fid, aid).expect("interned from a Forall");
                    let n = s.nrm(inst);
                    return Ok(s.extract_cached(n));
                }
                Err(TypeError::NotAForall(ft))
            }

            // E-Rec: unrestricted self-binding, no linear captures.
            Expr::Rec(x, ann, v) => {
                self.check_kind(ann, Kind::Value)?;
                let vty = nrm_pos(ann);
                if !matches!(vty, Type::Arrow(..) | Type::Forall(..)) {
                    return Err(TypeError::RecNotArrow(vty));
                }
                let before = ctx.linear_names();
                ctx.push_unrestricted(self.session, *x, vty.clone());
                self.check(ctx, v, &vty)?;
                ctx.remove(*x);
                let after = ctx.linear_names();
                if before != after {
                    let captured = before.into_iter().filter(|n| !after.contains(n)).collect();
                    return Err(TypeError::LinearInRecursive {
                        function: *x,
                        captured,
                    });
                }
                Ok(vty)
            }

            // E-Pair
            Expr::Pair(a, b) => {
                let ta = self.synth(ctx, a)?;
                let tb = self.synth(ctx, b)?;
                Ok(Type::pair(ta, tb))
            }

            // E-Let (pair elimination)
            Expr::LetPair(x, y, bound, body) => {
                let bt = self.synth(ctx, bound)?;
                let Type::Pair(t, u) = bt else {
                    return Err(TypeError::NotAPair(bt));
                };
                self.push_term(ctx, *x, (*t).clone());
                self.push_term(ctx, *y, (*u).clone());
                let v = self.synth(ctx, body)?;
                ctx.expect_consumed(*y)?;
                ctx.expect_consumed(*x)?;
                Ok(v)
            }

            // E-Let*
            Expr::LetUnit(bound, body) => {
                self.check(ctx, bound, &Type::Unit)?;
                self.synth(ctx, body)
            }

            // let x = e in e (sugar, checked like a linear binder)
            Expr::Let(x, bound, body) => {
                let t = self.synth(ctx, bound)?;
                self.push_term(ctx, *x, t);
                let v = self.synth(ctx, body)?;
                ctx.expect_consumed(*x)?;
                Ok(v)
            }

            Expr::If(cond, thn, els) => {
                self.check(ctx, cond, &Type::bool())?;
                let mut ctx2 = ctx.clone();
                let t1 = self.synth(ctx, thn)?;
                let t2 = self.synth(&mut ctx2, els)?;
                if !self.alpha_eq_interned(&t1, &t2) {
                    return Err(TypeError::BranchTypeMismatch {
                        first: t1,
                        other: t2,
                    });
                }
                ctx.same_linear(&ctx2, self.session)
                    .map_err(|detail| TypeError::BranchContextMismatch { detail })?;
                Ok(t1)
            }

            Expr::Con(tag, args) => self.synth_con(ctx, *tag, args, None),

            // E-Match (channels) / case (datatypes)
            Expr::Case(scrutinee, arms) => self.case_expr(ctx, scrutinee, arms, None),
        }
    }

    // ------------------------------------------------------------- checking

    /// `Δ | Γ ⊢ e ⇐ T | Γ'` — checks `e` against `expected`, which must be
    /// in normal form.
    pub fn check(&mut self, ctx: &mut Ctx, e: &Expr, expected: &Type) -> Result<(), TypeError> {
        match (e, expected) {
            // E-Abs' — unannotated lambda against an arrow.
            (Expr::AbsU(x, body), Type::Arrow(dom, cod)) => {
                self.push_term(ctx, *x, (**dom).clone());
                self.check(ctx, body, cod)?;
                ctx.expect_consumed(*x)
            }
            (Expr::AbsU(..), other) => Err(TypeError::NotAFunction(other.clone())),

            // Λα:κ.v against ∀β:κ.U
            (Expr::TAbs(alpha, kappa, v), Type::Forall(beta, kappa2, u)) if kappa == kappa2 => {
                if !v.is_value() {
                    return Err(TypeError::TAbsNotValue);
                }
                let goal = if alpha == beta {
                    (**u).clone()
                } else {
                    subst_type(u, *beta, &Type::Var(*alpha))
                };
                self.tyvars.push((*alpha, *kappa));
                let r = self.check(ctx, v, &goal);
                self.tyvars.pop();
                r
            }

            // Push the goal through binders and branches for better
            // propagation of expected types.
            (Expr::Let(x, bound, body), _) => {
                let t = self.synth(ctx, bound)?;
                self.push_term(ctx, *x, t);
                self.check(ctx, body, expected)?;
                ctx.expect_consumed(*x)
            }
            (Expr::LetUnit(bound, body), _) => {
                self.check(ctx, bound, &Type::Unit)?;
                self.check(ctx, body, expected)
            }
            (Expr::LetPair(x, y, bound, body), _) => {
                let bt = self.synth(ctx, bound)?;
                let Type::Pair(t, u) = bt else {
                    return Err(TypeError::NotAPair(bt));
                };
                self.push_term(ctx, *x, (*t).clone());
                self.push_term(ctx, *y, (*u).clone());
                self.check(ctx, body, expected)?;
                ctx.expect_consumed(*y)?;
                ctx.expect_consumed(*x)
            }
            (Expr::If(cond, thn, els), _) => {
                self.check(ctx, cond, &Type::bool())?;
                let mut ctx2 = ctx.clone();
                self.check(ctx, thn, expected)?;
                self.check(&mut ctx2, els, expected)?;
                ctx.same_linear(&ctx2, self.session)
                    .map_err(|detail| TypeError::BranchContextMismatch { detail })
            }
            (Expr::Case(scrutinee, arms), _) => self
                .case_expr(ctx, scrutinee, arms, Some(expected))
                .map(|_| ()),
            // E-App' for an applied unannotated lambda in checking mode.
            (Expr::App(f, a), _) if matches!(&**f, Expr::AbsU(..)) => {
                let Expr::AbsU(x, body) = &**f else {
                    unreachable!("guarded by matches!")
                };
                let t = self.synth(ctx, a)?;
                self.push_term(ctx, *x, t);
                self.check(ctx, body, expected)?;
                ctx.expect_consumed(*x)
            }
            (Expr::Con(tag, args), Type::Data(..)) => self
                .synth_con(ctx, *tag, args, Some(expected))
                .and_then(|t| self.expect_alpha_eq(expected, &t)),

            // E-Check: synthesize and compare up to α-equivalence.
            _ => {
                let found = self.synth(ctx, e)?;
                self.expect_alpha_eq(expected, &found)
            }
        }
    }

    // ------------------------------------------------------ shared helpers

    /// Constructor application. When `expected` is a `Data` type, the
    /// parameter instantiation is taken from it; otherwise it is inferred
    /// by first-order matching against the synthesized argument types.
    fn synth_con(
        &mut self,
        ctx: &mut Ctx,
        tag: Symbol,
        args: &[Expr],
        expected: Option<&Type>,
    ) -> Result<Type, TypeError> {
        let (decl, k) = self
            .decls
            .data_of_tag(tag)
            .ok_or(TypeError::UnboundConstructor(tag))?;
        let (name, params, ctor_args) =
            (decl.name, decl.params.clone(), decl.ctors[k].args.clone());
        if ctor_args.len() != args.len() {
            return Err(TypeError::CtorArity {
                tag,
                expected: ctor_args.len(),
                found: args.len(),
            });
        }

        if let Some(Type::Data(dname, dargs)) = expected {
            if *dname == name && dargs.len() == params.len() {
                // Check-mode: instantiate from the expected type.
                let subst = Subst::parallel(&params, dargs);
                for (arg, pat) in args.iter().zip(&ctor_args) {
                    let goal = nrm_pos(&subst.apply(pat));
                    self.check(ctx, arg, &goal)?;
                }
                return Ok(expected.expect("matched Some above").clone());
            }
        }

        if params.is_empty() {
            for (arg, pat) in args.iter().zip(&ctor_args) {
                let goal = nrm_pos(pat);
                self.check(ctx, arg, &goal)?;
            }
            return Ok(Type::Data(name, Vec::new()));
        }

        // Synthesis-mode inference: match declared argument types against
        // the synthesized ones to solve for the data parameters.
        let mut solved: HashMap<Symbol, Type> = HashMap::new();
        for (arg, pat) in args.iter().zip(&ctor_args) {
            let actual = self.synth(ctx, arg)?;
            if !match_type(&nrm_pos(pat), &actual, &params, &mut solved) {
                return Err(TypeError::Mismatch {
                    expected: nrm_pos(pat),
                    found: actual,
                });
            }
        }
        let inst: Vec<Type> = params
            .iter()
            .map(|p| {
                solved
                    .get(p)
                    .cloned()
                    .ok_or(TypeError::CannotInferCtorParams(tag))
            })
            .collect::<Result<_, _>>()?;
        Ok(Type::Data(name, inst))
    }

    /// `match e with {Cᵢ xᵢ → eᵢ}` over a channel (rule E-Match) or a
    /// datatype value. With `goal = Some(T)` the bodies are *checked*
    /// against `T`; otherwise the common type is synthesized.
    fn case_expr(
        &mut self,
        ctx: &mut Ctx,
        scrutinee: &Expr,
        arms: &[Arm],
        goal: Option<&Type>,
    ) -> Result<Type, TypeError> {
        let st = self.synth(ctx, scrutinee)?;

        // Determine, per arm tag, the list of types to bind.
        enum Kinded {
            /// Channel match: single binder at the continuation type.
            Channel(HashMap<Symbol, Type>),
            /// Data case: one binder per field.
            Data(HashMap<Symbol, Vec<Type>>),
        }

        let (decl_name, table) = match &st {
            Type::In(payload, cont) => match &**payload {
                Type::Proto(rho, us) => {
                    let decl = self
                        .decls
                        .protocol(*rho)
                        .ok_or(TypeError::UnboundTag(*rho))?;
                    let subst = Subst::parallel(&decl.params, us);
                    let mut map = HashMap::new();
                    for c in &decl.ctors {
                        // xᵢ : §(−(T̄ᵢ[Ū/ᾱ])).S
                        let payloads: Vec<Type> = c.args.iter().map(|t| subst.apply(t)).collect();
                        let bound = materialize_seq(
                            dir_neg_seq(payloads.iter().map(nrm_pos).collect()),
                            (**cont).clone(),
                        );
                        map.insert(c.tag, nrm_pos(&bound));
                    }
                    (decl.name, Kinded::Channel(map))
                }
                _ => return Err(TypeError::NotMatchable(st.clone())),
            },
            Type::Data(dname, us) => {
                let decl = self
                    .decls
                    .data(*dname)
                    .ok_or(TypeError::UnknownTypeName(*dname))?;
                let subst = Subst::parallel(&decl.params, us);
                let mut map = HashMap::new();
                for c in &decl.ctors {
                    let tys: Vec<Type> = c.args.iter().map(|t| nrm_pos(&subst.apply(t))).collect();
                    map.insert(c.tag, tys);
                }
                (decl.name, Kinded::Data(map))
            }
            other => return Err(TypeError::NotMatchable(other.clone())),
        };

        // Exhaustiveness: arms must cover the declared tags exactly.
        let declared: Vec<Symbol> = match &table {
            Kinded::Channel(m) => m.keys().copied().collect(),
            Kinded::Data(m) => m.keys().copied().collect(),
        };
        let used: Vec<Symbol> = arms.iter().map(|a| a.tag).collect();
        let missing: Vec<Symbol> = declared
            .iter()
            .copied()
            .filter(|t| !used.contains(t))
            .collect();
        let extra: Vec<Symbol> = used
            .iter()
            .copied()
            .filter(|t| !declared.contains(t))
            .collect();
        let duplicated = used.len()
            != arms
                .iter()
                .map(|a| a.tag)
                .collect::<std::collections::HashSet<_>>()
                .len();
        if !missing.is_empty() || !extra.is_empty() || duplicated {
            return Err(TypeError::BadCoverage {
                ty: decl_name,
                missing,
                extra,
            });
        }

        // Type each arm on a clone of the post-scrutinee context; all arms
        // must agree on output type and leftover context.
        let base = ctx.clone();
        let mut result: Option<(Type, Ctx)> = None;
        for arm in arms {
            let mut bctx = base.clone();
            match &table {
                Kinded::Channel(m) => {
                    if arm.binders.len() != 1 {
                        return Err(TypeError::WrongArmArity {
                            tag: arm.tag,
                            expected: 1,
                            found: arm.binders.len(),
                        });
                    }
                    self.push_term(&mut bctx, arm.binders[0], m[&arm.tag].clone());
                }
                Kinded::Data(m) => {
                    let tys = &m[&arm.tag];
                    if arm.binders.len() != tys.len() {
                        return Err(TypeError::WrongArmArity {
                            tag: arm.tag,
                            expected: tys.len(),
                            found: arm.binders.len(),
                        });
                    }
                    for (b, t) in arm.binders.iter().zip(tys) {
                        self.push_term(&mut bctx, *b, t.clone());
                    }
                }
            }
            let vt = match goal {
                Some(t) => {
                    self.check(&mut bctx, &arm.body, t)?;
                    t.clone()
                }
                None => self.synth(&mut bctx, &arm.body)?,
            };
            for b in arm.binders.iter().rev() {
                bctx.expect_consumed(*b)?;
            }
            match &result {
                None => result = Some((vt, bctx)),
                Some((t0, ctx0)) => {
                    if !self.alpha_eq_interned(t0, &vt) {
                        return Err(TypeError::BranchTypeMismatch {
                            first: t0.clone(),
                            other: vt,
                        });
                    }
                    ctx0.same_linear(&bctx, self.session)
                        .map_err(|detail| TypeError::BranchContextMismatch { detail })?;
                }
            }
        }
        let (vt, out_ctx) = result.expect("coverage guarantees at least one arm");
        *ctx = out_ctx;
        Ok(vt)
    }
}

/// First-order matching of a declared constructor argument type (with
/// `params` as match variables) against a concrete type. Repeated
/// parameters must match α-equivalent types.
fn match_type(
    pattern: &Type,
    actual: &Type,
    params: &[Symbol],
    solved: &mut HashMap<Symbol, Type>,
) -> bool {
    match (pattern, actual) {
        (Type::Var(v), _) if params.contains(v) => match solved.get(v) {
            Some(prev) => prev.alpha_eq(actual),
            None => {
                solved.insert(*v, actual.clone());
                true
            }
        },
        (Type::Unit, Type::Unit) => true,
        (Type::Base(a), Type::Base(b)) => a == b,
        (Type::Var(a), Type::Var(b)) => a == b,
        (Type::EndIn, Type::EndIn) | (Type::EndOut, Type::EndOut) => true,
        (Type::Arrow(a1, a2), Type::Arrow(b1, b2))
        | (Type::Pair(a1, a2), Type::Pair(b1, b2))
        | (Type::In(a1, a2), Type::In(b1, b2))
        | (Type::Out(a1, a2), Type::Out(b1, b2)) => {
            match_type(a1, b1, params, solved) && match_type(a2, b2, params, solved)
        }
        (Type::Dual(a), Type::Dual(b)) | (Type::Neg(a), Type::Neg(b)) => {
            match_type(a, b, params, solved)
        }
        (Type::Proto(na, aa), Type::Proto(nb, ab)) | (Type::Data(na, aa), Type::Data(nb, ab)) => {
            na == nb
                && aa.len() == ab.len()
                && aa
                    .iter()
                    .zip(ab)
                    .all(|(p, a)| match_type(p, a, params, solved))
        }
        // Binders inside constructor fields: require exact α-equality and
        // no parameters inside (conservative).
        (Type::Forall(..), Type::Forall(..)) => pattern.alpha_eq(actual),
        _ => false,
    }
}
