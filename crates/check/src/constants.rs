//! Types for constants (paper Fig. 4).
//!
//! ```text
//! typeof(fork)      = (Unit → Unit) → Unit
//! typeof(new)       = ∀α:S. α ⊗ Dual α
//! typeof(receive)   = ∀α:T.∀β:S. ?α.β → α ⊗ β
//! typeof(send)      = ∀α:T.∀β:S. α → !α.β → β
//! typeof(wait)      = End? → Unit
//! typeof(terminate) = End! → Unit
//! typeof(select Cₖ) = ∀ᾱ:P.∀β:S. !(ρ ᾱ).β → §(+(T̄ₖ)).β
//!                                  (protocol ρ ᾱ = {Cᵢ T̄ᵢ}, k ∈ I)
//! ```
//!
//! All returned types are in normal form, as the typing rules require.

use crate::error::TypeError;
use algst_core::expr::Const;
use algst_core::kind::Kind;
use algst_core::normalize::{dir_pos_seq, materialize_seq, nrm_pos};
use algst_core::protocol::Declarations;
use algst_core::subst::Subst;
use algst_core::symbol::Symbol;
use algst_core::types::Type;

/// Computes `typeof(c)`.
///
/// # Errors
/// Fails only for `select C` when `C` is not a declared protocol tag.
pub fn type_of_const(decls: &Declarations, c: Const) -> Result<Type, TypeError> {
    let t = match c {
        Const::Fork => Type::arrow(Type::arrow(Type::Unit, Type::Unit), Type::Unit),
        Const::New => {
            let a = Symbol::intern("a");
            Type::forall(
                a,
                Kind::Session,
                Type::pair(Type::Var(a), Type::dual(Type::Var(a))),
            )
        }
        Const::Receive => {
            let a = Symbol::intern("a");
            let b = Symbol::intern("b");
            Type::forall(
                a,
                Kind::Value,
                Type::forall(
                    b,
                    Kind::Session,
                    Type::arrow(
                        Type::input(Type::Var(a), Type::Var(b)),
                        Type::pair(Type::Var(a), Type::Var(b)),
                    ),
                ),
            )
        }
        Const::Send => {
            let a = Symbol::intern("a");
            let b = Symbol::intern("b");
            Type::forall(
                a,
                Kind::Value,
                Type::forall(
                    b,
                    Kind::Session,
                    Type::arrow(
                        Type::Var(a),
                        Type::arrow(Type::output(Type::Var(a), Type::Var(b)), Type::Var(b)),
                    ),
                ),
            )
        }
        Const::Wait => Type::arrow(Type::EndIn, Type::Unit),
        Const::Terminate => Type::arrow(Type::EndOut, Type::Unit),
        Const::Select(tag) => {
            let (decl, k) = decls
                .protocol_of_tag(tag)
                .ok_or(TypeError::UnboundTag(tag))?;
            // Freshen the protocol parameters so repeated selects cannot
            // collide with variables already in scope.
            let fresh: Vec<Symbol> = decl
                .params
                .iter()
                .map(|p| Symbol::fresh(p.base_name()))
                .collect();
            let subst = Subst::parallel(
                &decl.params,
                &fresh.iter().map(|v| Type::Var(*v)).collect::<Vec<_>>(),
            );
            let payloads: Vec<Type> = decl.ctors[k].args.iter().map(|t| subst.apply(t)).collect();
            let beta = Symbol::fresh("s");
            let domain = Type::output(
                Type::Proto(decl.name, fresh.iter().map(|v| Type::Var(*v)).collect()),
                Type::Var(beta),
            );
            // §(+(T̄ₖ)).β
            let codomain = materialize_seq(dir_pos_seq(payloads), Type::Var(beta));
            let mut ty = Type::arrow(domain, codomain);
            ty = Type::forall(beta, Kind::Session, ty);
            for v in fresh.into_iter().rev() {
                ty = Type::forall(v, Kind::Protocol, ty);
            }
            ty
        }
    };
    Ok(nrm_pos(&t))
}

#[cfg(test)]
mod tests {
    use super::*;
    use algst_core::protocol::{Ctor, ProtocolDecl};

    fn decls() -> Declarations {
        let mut d = Declarations::new();
        // protocol ArithC = NegC Int -Int | AddC Int Int -Int
        d.add_protocol(ProtocolDecl {
            name: Symbol::intern("ArithC"),
            params: vec![],
            ctors: vec![
                Ctor::new("NegC", vec![Type::int(), Type::neg(Type::int())]),
                Ctor::new(
                    "AddC",
                    vec![Type::int(), Type::int(), Type::neg(Type::int())],
                ),
            ],
        })
        .unwrap();
        // protocol StreamC a = NextC a (StreamC a)
        d.add_protocol(ProtocolDecl {
            name: Symbol::intern("StreamC"),
            params: vec![Symbol::intern("a")],
            ctors: vec![Ctor::new(
                "NextC",
                vec![Type::var("a"), Type::proto("StreamC", vec![Type::var("a")])],
            )],
        })
        .unwrap();
        d.validate().unwrap();
        d
    }

    #[test]
    fn constants_have_paper_types() {
        let d = Declarations::new();
        assert_eq!(
            type_of_const(&d, Const::Fork).unwrap().to_string(),
            "(Unit -> Unit) -> Unit"
        );
        assert_eq!(
            type_of_const(&d, Const::New).unwrap().to_string(),
            "forall (a:S). (a, Dual a)"
        );
        assert_eq!(
            type_of_const(&d, Const::Wait).unwrap().to_string(),
            "End? -> Unit"
        );
        assert_eq!(
            type_of_const(&d, Const::Terminate).unwrap().to_string(),
            "End! -> Unit"
        );
    }

    #[test]
    fn select_neg_pushes_fields_with_polarity() {
        // select NegC : ∀β:S. !ArithC.β → !Int.?Int.β  (paper Section 2.2)
        let d = decls();
        let t = type_of_const(&d, Const::Select(Symbol::intern("NegC"))).unwrap();
        let Type::Forall(_, Kind::Session, body) = &t else {
            panic!("expected ∀β:S, got {t}")
        };
        let Type::Arrow(dom, cod) = &**body else {
            panic!("expected arrow, got {body}")
        };
        assert!(dom.to_string().starts_with("!ArithC."));
        assert!(cod.to_string().starts_with("!Int.?Int."));
    }

    #[test]
    fn select_add_sends_two_receives_one() {
        let d = decls();
        let t = type_of_const(&d, Const::Select(Symbol::intern("AddC"))).unwrap();
        let Type::Forall(_, _, body) = &t else {
            panic!()
        };
        let Type::Arrow(_, cod) = &**body else {
            panic!()
        };
        assert!(cod.to_string().starts_with("!Int.!Int.?Int."));
    }

    #[test]
    fn select_parameterized_freshens_params() {
        // select NextC : ∀a:P.∀β:S. !(StreamC a).β → §(+(a, StreamC a)).β
        let d = decls();
        let t = type_of_const(&d, Const::Select(Symbol::intern("NextC"))).unwrap();
        let Type::Forall(a1, Kind::Protocol, body) = &t else {
            panic!("expected ∀a:P, got {t}")
        };
        let Type::Forall(_, Kind::Session, inner) = &**body else {
            panic!()
        };
        let Type::Arrow(dom, _) = &**inner else {
            panic!()
        };
        let Type::Out(payload, _) = &**dom else {
            panic!()
        };
        let Type::Proto(_, args) = &**payload else {
            panic!()
        };
        assert_eq!(args[0], Type::Var(*a1));
    }

    #[test]
    fn select_unknown_tag_errors() {
        let d = decls();
        assert!(matches!(
            type_of_const(&d, Const::Select(Symbol::intern("NoSuchTag"))),
            Err(TypeError::UnboundTag(_))
        ));
    }

    #[test]
    fn constant_types_are_normal() {
        let d = decls();
        for c in [
            Const::Fork,
            Const::New,
            Const::Receive,
            Const::Send,
            Const::Wait,
            Const::Terminate,
            Const::Select(Symbol::intern("NegC")),
            Const::Select(Symbol::intern("NextC")),
        ] {
            let t = type_of_const(&d, c).unwrap();
            assert!(
                algst_core::normalize::is_normal(&t),
                "typeof({c:?}) not normal: {t}"
            );
        }
    }
}
