//! A thread-safe module cache: `check`-op results memoized across
//! requests.
//!
//! A long-running service sees the same program sources again and again
//! (editors re-sending buffers, health checks, load generators). Type
//! checking is pure — same source, same verdict — so the server keys a
//! cache by the *exact source text* and pays elaboration + checking once
//! per distinct program. Both successes and failures are cached
//! ([`CheckError`] is `Clone`); successful modules are shared as
//! [`Arc<Module>`] so a cache hit is a pointer bump.
//!
//! The type-level warm state behind a hit is shared too: elaboration
//! interns signatures and alias bodies through the **caller's
//! [`Session`]** — the one each engine worker passes in — so even
//! *distinct* programs using the same types reuse each other's
//! normalization work, without ever touching a process-global store.

use crate::{check_source_in, CheckError, Module};
use algst_core::Session;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Counters for the `stats` op.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Distinct sources cached (successes and failures).
    pub entries: u64,
    /// Requests answered from the cache.
    pub hits: u64,
    /// Requests that had to run the checker.
    pub misses: u64,
    /// Times the cache dropped its map at the entry cap.
    pub evictions: u64,
}

/// Default entry cap for a [`ModuleCache`]: module sources are large
/// (whole programs), so the bound is modest.
pub const DEFAULT_MODULE_CACHE_CAP: usize = 4096;

/// Memoizes [`check_source_in`] by source text, bounded at a fixed
/// entry cap (the map is cleared when full — sources are self-contained
/// so a dropped entry only costs one re-check).
/// Cheap to share behind an `Arc`; all methods take `&self` (the
/// mutable state is the per-worker [`Session`] passed per call).
pub struct ModuleCache {
    map: Mutex<HashMap<String, Result<Arc<Module>, CheckError>>>,
    cap: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    /// Times the full map was dropped at the cap.
    evictions: AtomicU64,
}

impl Default for ModuleCache {
    fn default() -> ModuleCache {
        ModuleCache::with_capacity(DEFAULT_MODULE_CACHE_CAP)
    }
}

impl std::fmt::Debug for ModuleCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModuleCache")
            .field("entries", &self.map.lock().len())
            .finish()
    }
}

impl ModuleCache {
    pub fn new() -> ModuleCache {
        ModuleCache::default()
    }

    /// A cache bounded at `cap` entries (`cap == 0` means 1).
    pub fn with_capacity(cap: usize) -> ModuleCache {
        ModuleCache {
            map: Mutex::new(HashMap::new()),
            cap: cap.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Drops every cached entry (e.g. after a store compaction, when
    /// the engine wants the next check of each source to re-elaborate
    /// and re-warm the new epoch).
    pub fn clear(&self) {
        self.map.lock().clear();
    }

    /// [`check_source_in`] through the cache,
    /// against the caller's `session`. The second component is true on a
    /// cache hit. The lock is *not* held while checking, so slow
    /// programs do not serialize the pool; two workers racing on the
    /// same new source may both check it (same result, last write wins).
    pub fn check_source(
        &self,
        session: &mut Session,
        src: &str,
    ) -> (Result<Arc<Module>, CheckError>, bool) {
        if let Some(hit) = self.map.lock().get(src) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return (hit.clone(), true);
        }
        let result = check_source_in(session, src).map(Arc::new);
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut map = self.map.lock();
        if map.len() >= self.cap {
            map.clear();
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        map.insert(src.to_owned(), result.clone());
        (result, false)
    }

    pub fn stats(&self) -> CacheStats {
        CacheStats {
            entries: self.map.lock().len() as u64,
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const OK: &str = "main : Unit\nmain = ()";
    const BAD: &str = "main : Unit\nmain = receive";

    #[test]
    fn caches_successes_and_failures() {
        let mut s = Session::new();
        let cache = ModuleCache::new();
        let (first, cached) = cache.check_source(&mut s, OK);
        assert!(first.is_ok() && !cached);
        let (second, cached) = cache.check_source(&mut s, OK);
        assert!(second.is_ok() && cached);
        assert!(Arc::ptr_eq(&first.unwrap(), &second.unwrap()));

        let (err, cached) = cache.check_source(&mut s, BAD);
        assert!(err.is_err() && !cached);
        let (err2, cached) = cache.check_source(&mut s, BAD);
        assert!(err2.is_err() && cached);

        let stats = cache.stats();
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.misses, 2);
    }

    #[test]
    fn cap_bounds_the_entry_count() {
        let mut s = Session::new();
        let cache = ModuleCache::with_capacity(2);
        for i in 0..10 {
            let src = format!("aux{i} : Unit\naux{i} = ()\nmain : Unit\nmain = ()");
            let (r, _) = cache.check_source(&mut s, &src);
            assert!(r.is_ok());
            assert!(cache.stats().entries <= 2, "cap must hold");
        }
        assert!(cache.stats().evictions >= 1);
        // A re-checked source is correct after eviction, just uncached.
        let src0 = "aux0 : Unit\naux0 = ()\nmain : Unit\nmain = ()";
        let (r, cached) = cache.check_source(&mut s, src0);
        assert!(r.is_ok() && !cached);
    }

    #[test]
    fn distinct_sources_get_distinct_entries() {
        let mut s = Session::new();
        let cache = ModuleCache::new();
        let (a, _) = cache.check_source(&mut s, OK);
        let (b, _) = cache.check_source(&mut s, "main : Unit\nmain = ()\n");
        assert!(a.is_ok() && b.is_ok());
        assert_eq!(cache.stats().entries, 2);
    }
}
