//! Type errors reported by elaboration and type checking.

use algst_core::kind::Kind;
use algst_core::kindcheck::KindError;
use algst_core::protocol::DeclError;
use algst_core::symbol::Symbol;
use algst_core::types::Type;
use algst_syntax::ParseError;
use std::fmt;

/// Any error produced while turning source text into a checked module.
#[derive(Clone, Debug)]
pub enum CheckError {
    Parse(ParseError),
    Decl(DeclError),
    Type(TypeError),
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckError::Parse(e) => write!(f, "{e}"),
            CheckError::Decl(e) => write!(f, "{e}"),
            CheckError::Type(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CheckError {}

impl From<ParseError> for CheckError {
    fn from(e: ParseError) -> Self {
        CheckError::Parse(e)
    }
}
impl From<DeclError> for CheckError {
    fn from(e: DeclError) -> Self {
        CheckError::Decl(e)
    }
}
impl From<TypeError> for CheckError {
    fn from(e: TypeError) -> Self {
        CheckError::Type(e)
    }
}
impl From<KindError> for CheckError {
    fn from(e: KindError) -> Self {
        CheckError::Type(TypeError::Kind(e))
    }
}

/// An error from the bidirectional typechecker or the elaborator.
#[derive(Clone, Debug)]
pub enum TypeError {
    Kind(KindError),
    UnboundVariable(Symbol),
    UnboundConstructor(Symbol),
    UnboundTag(Symbol),
    UnknownTypeName(Symbol),
    AliasArity {
        name: Symbol,
        expected: usize,
        found: usize,
    },
    RecursiveAlias(Symbol),
    /// A linear variable was not consumed.
    UnusedLinear(Symbol),
    /// A recursive function captured a linear variable.
    LinearInRecursive {
        function: Symbol,
        captured: Vec<Symbol>,
    },
    NotAFunction(Type),
    NotAForall(Type),
    NotAPair(Type),
    /// `match` scrutinee is not a `?(ρ Ū).S` channel and not a datatype.
    NotMatchable(Type),
    /// Expected vs. synthesized type mismatch (both in normal form).
    Mismatch {
        expected: Type,
        found: Type,
    },
    /// Branches of a `match`/`case`/`if` synthesized different types.
    BranchTypeMismatch {
        first: Type,
        other: Type,
    },
    /// Branches consumed different linear resources.
    BranchContextMismatch {
        detail: String,
    },
    /// `match`/`case` arms don't cover the declaration's tags exactly.
    BadCoverage {
        ty: Symbol,
        missing: Vec<Symbol>,
        extra: Vec<Symbol>,
    },
    WrongArmArity {
        tag: Symbol,
        expected: usize,
        found: usize,
    },
    CtorArity {
        tag: Symbol,
        expected: usize,
        found: usize,
    },
    /// Could not infer the type arguments of a parameterized constructor.
    CannotInferCtorParams(Symbol),
    /// `Λα.e` where `e` is not a syntactic value.
    TAbsNotValue,
    /// An unannotated lambda in synthesis position.
    NeedsAnnotation,
    MissingSignature(Symbol),
    MissingDefinition(Symbol),
    DuplicateDefinition(Symbol),
    /// `rec x:T.v` where `T` is not an arrow type.
    RecNotArrow(Type),
    KindMismatch {
        ty: Type,
        expected: Kind,
    },
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeError::Kind(e) => write!(f, "{e}"),
            TypeError::UnboundVariable(x) => write!(f, "unbound variable {x}"),
            TypeError::UnboundConstructor(c) => write!(f, "unknown data constructor {c}"),
            TypeError::UnboundTag(c) => write!(f, "unknown protocol tag {c}"),
            TypeError::UnknownTypeName(n) => write!(f, "unknown type name {n}"),
            TypeError::AliasArity {
                name,
                expected,
                found,
            } => write!(
                f,
                "type alias {name} expects {expected} argument(s) but got {found}"
            ),
            TypeError::RecursiveAlias(n) => {
                write!(f, "type alias {n} is recursive (aliases must be non-recursive; use a protocol or data declaration)")
            }
            TypeError::UnusedLinear(x) => {
                write!(f, "linear variable {x} is not consumed")
            }
            TypeError::LinearInRecursive { function, captured } => {
                write!(
                    f,
                    "recursive function {function} uses linear variable(s) from its environment:"
                )?;
                for c in captured {
                    write!(f, " {c}")?;
                }
                Ok(())
            }
            TypeError::NotAFunction(t) => write!(f, "expected a function, found type {t}"),
            TypeError::NotAForall(t) => {
                write!(f, "expected a polymorphic value, found type {t}")
            }
            TypeError::NotAPair(t) => write!(f, "expected a pair, found type {t}"),
            TypeError::NotMatchable(t) => write!(
                f,
                "match scrutinee must be a channel of type ?(p U).S or a datatype value, found {t}"
            ),
            TypeError::Mismatch { expected, found } => {
                write!(f, "type mismatch: expected {expected}, found {found}")
            }
            TypeError::BranchTypeMismatch { first, other } => {
                write!(f, "branches have different types: {first} vs {other}")
            }
            TypeError::BranchContextMismatch { detail } => {
                write!(f, "branches consume different linear resources: {detail}")
            }
            TypeError::BadCoverage { ty, missing, extra } => {
                write!(f, "match on {ty} ")?;
                if !missing.is_empty() {
                    write!(f, "is missing tag(s):")?;
                    for t in missing {
                        write!(f, " {t}")?;
                    }
                }
                if !extra.is_empty() {
                    write!(f, " has foreign tag(s):")?;
                    for t in extra {
                        write!(f, " {t}")?;
                    }
                }
                Ok(())
            }
            TypeError::WrongArmArity {
                tag,
                expected,
                found,
            } => write!(
                f,
                "arm for {tag} binds {found} variable(s) but the constructor has {expected}"
            ),
            TypeError::CtorArity {
                tag,
                expected,
                found,
            } => write!(
                f,
                "constructor {tag} expects {expected} argument(s) but got {found}"
            ),
            TypeError::CannotInferCtorParams(c) => write!(
                f,
                "cannot infer the type parameters of constructor {c}; add an annotation"
            ),
            TypeError::TAbsNotValue => {
                write!(f, "the body of a type abstraction must be a value")
            }
            TypeError::NeedsAnnotation => write!(
                f,
                "cannot synthesize the type of an unannotated lambda; add a signature"
            ),
            TypeError::MissingSignature(x) => {
                write!(f, "definition of {x} has no type signature")
            }
            TypeError::MissingDefinition(x) => {
                write!(f, "signature for {x} has no definition")
            }
            TypeError::DuplicateDefinition(x) => write!(f, "duplicate definition of {x}"),
            TypeError::RecNotArrow(t) => {
                write!(f, "recursive binding must have a function type, found {t}")
            }
            TypeError::KindMismatch { ty, expected } => {
                write!(f, "type {ty} does not have kind {expected}")
            }
        }
    }
}

impl std::error::Error for TypeError {}

impl From<KindError> for TypeError {
    fn from(e: KindError) -> Self {
        TypeError::Kind(e)
    }
}
