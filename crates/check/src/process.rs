//! Process typing (paper Fig. 8).
//!
//! ```text
//! P-Exp:  ·|Γ ⊢ e ⇐ Unit|·        ⟹  Γ ⊢ ⟨e⟩
//! P-Par:  Γ₁ ⊢ p   Γ₂ ⊢ q         ⟹  Γ₁,Γ₂ ⊢ p | q
//! P-New:  Γ, x:nrm⁺(T), y:nrm⁻(T) ⊢ p  ⟹  Γ ⊢ (νxy)p
//! ```
//!
//! P-Par's context split is "guessed" in the paper; algorithmically we
//! thread the leftover of the first component into the second, which
//! realizes the existential split.

use crate::check::Checker;
use crate::context::Ctx;
use crate::error::TypeError;
use algst_core::expr::Process;
use algst_core::kind::Kind;
use algst_core::normalize::{nrm_neg, nrm_pos};
use algst_core::protocol::Declarations;
use algst_core::types::Type;
use algst_core::Session;

/// Checks `Γ ⊢ p` with `ctx` threaded through the process tree, against
/// the caller's `session`.
pub fn check_process(
    session: &mut Session,
    decls: &Declarations,
    ctx: &mut Ctx,
    p: &Process,
) -> Result<(), TypeError> {
    match p {
        Process::Thread(e) => {
            let mut checker = Checker::new(decls, session);
            checker.check(ctx, e, &Type::Unit)
        }
        Process::Par(p1, p2) => {
            check_process(session, decls, ctx, p1)?;
            check_process(session, decls, ctx, p2)
        }
        Process::New(x, y, ty, body) => {
            let mut kctx = algst_core::kindcheck::KindCtx::new(decls);
            kctx.check(ty, Kind::Session)?;
            ctx.push_linear(session, *x, nrm_pos(ty));
            ctx.push_linear(session, *y, nrm_neg(ty));
            check_process(session, decls, ctx, body)?;
            ctx.expect_consumed(*y)?;
            ctx.expect_consumed(*x)
        }
    }
}

/// Checks a closed process against a fresh global-store session: no
/// free linear resources before or after.
pub fn check_process_closed(decls: &Declarations, p: &Process) -> Result<(), TypeError> {
    let mut session = Session::global();
    let mut ctx = Ctx::new();
    check_process(&mut session, decls, &mut ctx, p)?;
    if let Some(stray) = ctx.linear_names().first() {
        return Err(TypeError::UnusedLinear(*stray));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use algst_core::expr::{Const, Expr};

    #[test]
    fn closed_thread_checks() {
        let decls = Declarations::new();
        let p = Process::thread(Expr::unit());
        check_process_closed(&decls, &p).unwrap();
    }

    #[test]
    fn new_channel_split_between_threads() {
        // (νxy : End!) ( ⟨terminate x⟩ | ⟨wait y⟩ )
        let decls = Declarations::new();
        let p = Process::new_chan(
            "x",
            "y",
            Type::EndOut,
            Process::par(
                Process::thread(Expr::app(Expr::Const(Const::Terminate), Expr::var("x"))),
                Process::thread(Expr::app(Expr::Const(Const::Wait), Expr::var("y"))),
            ),
        );
        check_process_closed(&decls, &p).unwrap();
    }

    #[test]
    fn unused_channel_end_is_an_error() {
        let decls = Declarations::new();
        let p = Process::new_chan(
            "x",
            "y",
            Type::EndOut,
            Process::thread(Expr::app(Expr::Const(Const::Terminate), Expr::var("x"))),
        );
        assert!(matches!(
            check_process_closed(&decls, &p),
            Err(TypeError::UnusedLinear(_))
        ));
    }

    #[test]
    fn channel_typed_with_dual_ends() {
        // (νxy : !Int.End!) (⟨send 1 x |> terminate⟩ | ⟨…receive…⟩)
        let decls = Declarations::new();
        let send_side = Expr::app(
            Expr::Const(Const::Terminate),
            Expr::apps(
                Expr::tapps(Expr::Const(Const::Send), [Type::int(), Type::EndOut]),
                [Expr::int(1), Expr::var("x")],
            ),
        );
        let recv_side = Expr::let_pair(
            "v",
            "y2",
            Expr::app(
                Expr::tapps(Expr::Const(Const::Receive), [Type::int(), Type::EndIn]),
                Expr::var("y"),
            ),
            Expr::let_unit(
                Expr::app(Expr::Const(Const::Wait), Expr::var("y2")),
                Expr::let_(
                    "ignored",
                    Expr::var("v"),
                    Expr::let_unit(
                        Expr::apps(
                            Expr::Builtin(algst_core::expr::Builtin::PrintInt),
                            [Expr::var("ignored")],
                        ),
                        Expr::unit(),
                    ),
                ),
            ),
        );
        let p = Process::new_chan(
            "x",
            "y",
            Type::output(Type::int(), Type::EndOut),
            Process::par(Process::thread(send_side), Process::thread(recv_side)),
        );
        check_process_closed(&decls, &p).unwrap();
    }
}
