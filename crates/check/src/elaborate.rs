//! Elaboration from the surface AST to the core language.
//!
//! Responsibilities:
//!
//! * resolve type names (protocol vs. datatype vs. alias vs. builtin) and
//!   expand (non-recursive) type aliases;
//! * build the global [`Declarations`] table;
//! * turn function equations `f [s] x c = e` plus their signatures into
//!   core `Λ`/`λ` chains (annotations read off the signature);
//! * resolve value names: local binders, module-level definitions
//!   (unrestricted, enabling the mutual recursion of paper App. A.3),
//!   session constants and builtins;
//! * saturate or η-expand data constructor applications.

use crate::error::{CheckError, TypeError};
use algst_core::expr::{Arm, Builtin, Const, Expr};
use algst_core::protocol::{Ctor, DataDecl, Declarations, ProtocolDecl};
use algst_core::store::TypeId;
use algst_core::subst::Subst;
use algst_core::symbol::Symbol;
use algst_core::types::Type;
use algst_core::Session;
use algst_syntax::ast::{
    BindingDecl, Decl, Param, Pattern, Program, SArm, SExpr, SType, SignatureDecl,
};
use std::collections::{HashMap, HashSet};

/// Result of elaborating a whole program.
#[derive(Debug)]
pub struct Elaborated {
    pub decls: Declarations,
    /// Signatures in source order, resolved but not normalized.
    pub sigs: Vec<(Symbol, Type)>,
    /// Definitions in source order.
    pub defs: Vec<(Symbol, Expr)>,
}

/// Elaborates a parsed program. Alias bodies are interned into
/// `session`, so later instantiations are id-level and capture-free.
pub fn elaborate(program: &Program, session: &mut Session) -> Result<Elaborated, CheckError> {
    // Pass 1: collect headers so names resolve regardless of order.
    let mut protocol_names: HashSet<Symbol> = HashSet::new();
    let mut data_names: HashSet<Symbol> = HashSet::new();
    let mut alias_srcs: HashMap<Symbol, (Vec<Symbol>, SType)> = HashMap::new();
    for d in &program.decls {
        match d {
            Decl::Protocol(td) => {
                protocol_names.insert(td.name);
            }
            Decl::Data(td) => {
                data_names.insert(td.name);
            }
            Decl::Alias(a) => {
                alias_srcs.insert(a.name, (a.params.clone(), a.body.clone()));
            }
            _ => {}
        }
    }

    let mut resolver = Resolver {
        session,
        protocol_names,
        data_names,
        alias_srcs,
        alias_cache: HashMap::new(),
        visiting: HashSet::new(),
    };

    // Pass 2: build declaration table.
    let mut decls = Declarations::new();
    for d in &program.decls {
        match d {
            Decl::Protocol(td) => {
                let ctors = td
                    .ctors
                    .iter()
                    .map(|c| {
                        Ok(Ctor {
                            tag: c.name,
                            args: c
                                .args
                                .iter()
                                .map(|t| resolver.resolve(t))
                                .collect::<Result<_, _>>()?,
                        })
                    })
                    .collect::<Result<Vec<_>, TypeError>>()?;
                decls.add_protocol(ProtocolDecl {
                    name: td.name,
                    params: td.params.clone(),
                    ctors,
                })?;
            }
            Decl::Data(td) => {
                let ctors = td
                    .ctors
                    .iter()
                    .map(|c| {
                        Ok(Ctor {
                            tag: c.name,
                            args: c
                                .args
                                .iter()
                                .map(|t| resolver.resolve(t))
                                .collect::<Result<_, _>>()?,
                        })
                    })
                    .collect::<Result<Vec<_>, TypeError>>()?;
                decls.add_data(DataDecl {
                    name: td.name,
                    params: td.params.clone(),
                    ctors,
                })?;
            }
            _ => {}
        }
    }
    decls.validate()?;

    // Pass 3: signatures.
    let mut sigs: Vec<(Symbol, Type)> = Vec::new();
    let mut sig_map: HashMap<Symbol, Type> = HashMap::new();
    for d in &program.decls {
        if let Decl::Signature(SignatureDecl { name, ty, .. }) = d {
            if sig_map.contains_key(name) {
                return Err(TypeError::DuplicateDefinition(*name).into());
            }
            let resolved = resolver.resolve(ty)?;
            sigs.push((*name, resolved.clone()));
            sig_map.insert(*name, resolved);
        }
    }
    let globals: HashSet<Symbol> = sig_map.keys().copied().collect();

    // Pass 4: bindings.
    let mut defs: Vec<(Symbol, Expr)> = Vec::new();
    let mut seen_defs: HashSet<Symbol> = HashSet::new();
    for d in &program.decls {
        if let Decl::Binding(b) = d {
            if !seen_defs.insert(b.name) {
                return Err(TypeError::DuplicateDefinition(b.name).into());
            }
            let sig = sig_map
                .get(&b.name)
                .ok_or(TypeError::MissingSignature(b.name))?
                .clone();
            let expr = elaborate_binding(&mut resolver, &decls, &globals, &sig, b)?;
            defs.push((b.name, expr));
        }
    }
    for (name, _) in &sigs {
        if !seen_defs.contains(name) {
            return Err(TypeError::MissingDefinition(*name).into());
        }
    }

    Ok(Elaborated { decls, sigs, defs })
}

// ----------------------------------------------------------- type resolver

struct Resolver<'s> {
    /// The check's session: alias bodies are interned here.
    session: &'s mut Session,
    protocol_names: HashSet<Symbol>,
    data_names: HashSet<Symbol>,
    alias_srcs: HashMap<Symbol, (Vec<Symbol>, SType)>,
    /// Resolved alias bodies, interned once into the session's store;
    /// each use then instantiates by id-level substitution (capture-free,
    /// hash-consed) instead of re-walking the body tree.
    alias_cache: HashMap<Symbol, (Vec<Symbol>, TypeId)>,
    visiting: HashSet<Symbol>,
}

impl Resolver<'_> {
    fn resolve(&mut self, t: &SType) -> Result<Type, TypeError> {
        Ok(match t {
            SType::Unit(_) => Type::Unit,
            SType::Var(v, _) => Type::Var(*v),
            SType::Arrow(a, b, _) => Type::arrow(self.resolve(a)?, self.resolve(b)?),
            SType::Pair(a, b, _) => Type::pair(self.resolve(a)?, self.resolve(b)?),
            SType::Forall(v, k, body, _) => Type::forall(*v, *k, self.resolve(body)?),
            SType::In(p, s, _) => Type::input(self.resolve(p)?, self.resolve(s)?),
            SType::Out(p, s, _) => Type::output(self.resolve(p)?, self.resolve(s)?),
            SType::EndIn(_) => Type::EndIn,
            SType::EndOut(_) => Type::EndOut,
            SType::Dual(s, _) => Type::dual(self.resolve(s)?),
            SType::Neg(p, _) => Type::neg(self.resolve(p)?),
            SType::Name(name, args, _) => {
                let rargs: Vec<Type> = args
                    .iter()
                    .map(|a| self.resolve(a))
                    .collect::<Result<_, _>>()?;
                match name.as_str() {
                    "Int" | "Bool" | "Char" | "String" if rargs.is_empty() => match name.as_str() {
                        "Int" => Type::int(),
                        "Bool" => Type::bool(),
                        "Char" => Type::char(),
                        _ => Type::string(),
                    },
                    _ if self.protocol_names.contains(name) => Type::Proto(*name, rargs),
                    _ if self.data_names.contains(name) => Type::Data(*name, rargs),
                    _ if self.alias_srcs.contains_key(name) => {
                        let (params, body) = self.resolve_alias(*name)?;
                        if params.len() != rargs.len() {
                            return Err(TypeError::AliasArity {
                                name: *name,
                                expected: params.len(),
                                found: rargs.len(),
                            });
                        }
                        {
                            let inst =
                                Subst::parallel(&params, &rargs).apply_interned(self.session, body);
                            self.session.extract(inst)
                        }
                    }
                    _ => return Err(TypeError::UnknownTypeName(*name)),
                }
            }
        })
    }

    fn resolve_alias(&mut self, name: Symbol) -> Result<(Vec<Symbol>, TypeId), TypeError> {
        if let Some(hit) = self.alias_cache.get(&name) {
            return Ok(hit.clone());
        }
        if !self.visiting.insert(name) {
            return Err(TypeError::RecursiveAlias(name));
        }
        let (params, body_src) = self
            .alias_srcs
            .get(&name)
            .cloned()
            .expect("resolve_alias called for a known alias");
        let body = self.resolve(&body_src)?;
        let body = self.session.intern(&body);
        self.visiting.remove(&name);
        let entry = (params, body);
        self.alias_cache.insert(name, entry.clone());
        Ok(entry)
    }
}

// --------------------------------------------------------- binding shaping

/// Turns an equation `f p₁ … pₙ = e` with signature `T` into nested
/// `Λ`/`λ` abstractions whose annotations are read off `T`.
fn elaborate_binding(
    resolver: &mut Resolver<'_>,
    decls: &Declarations,
    globals: &HashSet<Symbol>,
    sig: &Type,
    binding: &BindingDecl,
) -> Result<Expr, CheckError> {
    let mut ee = ExprElab {
        resolver,
        decls,
        globals,
        scope: Vec::new(),
    };
    let e = build_params(&mut ee, sig, &binding.params, &binding.body)?;
    Ok(e)
}

fn build_params(
    ee: &mut ExprElab<'_, '_>,
    ty: &Type,
    params: &[Param],
    body: &SExpr,
) -> Result<Expr, CheckError> {
    let Some((first, rest)) = params.split_first() else {
        return Ok(ee.elab(body)?);
    };
    match first {
        Param::Term(x) => match ty {
            Type::Arrow(dom, cod) => {
                ee.scope.push(*x);
                let inner = build_params(ee, cod, rest, body)?;
                ee.scope.pop();
                Ok(Expr::abs(*x, (**dom).clone(), inner))
            }
            other => Err(TypeError::NotAFunction(other.clone()).into()),
        },
        Param::Wild => match ty {
            Type::Arrow(dom, cod) => {
                let fresh = Symbol::fresh("_wild");
                ee.scope.push(fresh);
                let inner = build_params(ee, cod, rest, body)?;
                ee.scope.pop();
                Ok(Expr::abs(fresh, (**dom).clone(), inner))
            }
            other => Err(TypeError::NotAFunction(other.clone()).into()),
        },
        Param::Types(vars) => {
            // Consume one ∀ per listed variable, renaming the binder to the
            // equation's chosen name.
            fn go(
                ee: &mut ExprElab<'_, '_>,
                ty: &Type,
                vars: &[Symbol],
                rest: &[Param],
                body: &SExpr,
            ) -> Result<Expr, CheckError> {
                let Some((v, more)) = vars.split_first() else {
                    return build_params(ee, ty, rest, body);
                };
                match ty {
                    Type::Forall(alpha, kappa, u) => {
                        let renamed = if alpha == v {
                            (**u).clone()
                        } else {
                            algst_core::subst::subst_type(u, *alpha, &Type::Var(*v))
                        };
                        let inner = go(ee, &renamed, more, rest, body)?;
                        Ok(Expr::tabs(*v, *kappa, inner))
                    }
                    other => Err(TypeError::NotAForall(other.clone()).into()),
                }
            }
            go(ee, ty, vars, rest, body)
        }
    }
}

// ------------------------------------------------------ expression elabor.

struct ExprElab<'r, 's> {
    resolver: &'r mut Resolver<'s>,
    decls: &'r Declarations,
    globals: &'r HashSet<Symbol>,
    scope: Vec<Symbol>,
}

impl ExprElab<'_, '_> {
    fn resolve_ty(&mut self, t: &SType) -> Result<Type, TypeError> {
        self.resolver.resolve(t)
    }

    fn elab(&mut self, e: &SExpr) -> Result<Expr, TypeError> {
        match e {
            SExpr::Lit(l, _) => Ok(Expr::Lit(l.clone())),
            SExpr::Var(x, _) => self.resolve_var(*x),
            SExpr::Con(c, _) => self.elab_con(*c, &[]),
            SExpr::Select(tag, _) => Ok(Expr::Const(Const::Select(*tag))),
            SExpr::App(..) => {
                // Flatten the application spine to saturate constructors.
                let mut args: Vec<&SExpr> = Vec::new();
                let mut head = e;
                while let SExpr::App(f, a, _) = head {
                    args.push(a);
                    head = f;
                }
                args.reverse();
                if let SExpr::Con(c, _) = head {
                    self.elab_con(*c, &args)
                } else {
                    let mut acc = self.elab(head)?;
                    for a in args {
                        acc = Expr::app(acc, self.elab(a)?);
                    }
                    Ok(acc)
                }
            }
            SExpr::TApp(f, tys, _) => {
                let mut acc = self.elab(f)?;
                for t in tys {
                    acc = Expr::tapp(acc, self.resolve_ty(t)?);
                }
                Ok(acc)
            }
            SExpr::Lambda(params, body, _) => {
                for p in params {
                    self.scope.push(*p);
                }
                let mut acc = self.elab(body)?;
                for p in params.iter().rev() {
                    self.scope.pop();
                    acc = Expr::abs_u(*p, acc);
                }
                Ok(acc)
            }
            SExpr::BinOp(op, l, r, _) => {
                let b =
                    Builtin::from_operator(op.as_str()).ok_or(TypeError::UnboundVariable(*op))?;
                Ok(Expr::apps(Expr::Builtin(b), [self.elab(l)?, self.elab(r)?]))
            }
            SExpr::Pair(a, b, _) => Ok(Expr::pair(self.elab(a)?, self.elab(b)?)),
            SExpr::Let(pat, bound, body, _) => {
                let bound = self.elab(bound)?;
                match pat {
                    Pattern::Var(x) => {
                        self.scope.push(*x);
                        let body = self.elab(body)?;
                        self.scope.pop();
                        Ok(Expr::let_(*x, bound, body))
                    }
                    Pattern::Pair(x, y) => {
                        self.scope.push(*x);
                        self.scope.push(*y);
                        let body = self.elab(body)?;
                        self.scope.pop();
                        self.scope.pop();
                        Ok(Expr::let_pair(*x, *y, bound, body))
                    }
                    // In a linear language values cannot be discarded, so
                    // the wildcard let is the unit-let: `let _ = e in e'`
                    // requires `e : Unit` (like `let * = e in e'`).
                    Pattern::Unit | Pattern::Wild => Ok(Expr::let_unit(bound, self.elab(body)?)),
                }
            }
            SExpr::If(c, t, f, _) => Ok(Expr::if_(self.elab(c)?, self.elab(t)?, self.elab(f)?)),
            SExpr::Case(scrutinee, arms, _) => {
                let s = self.elab(scrutinee)?;
                let mut out = Vec::with_capacity(arms.len());
                for SArm {
                    tag, binders, body, ..
                } in arms
                {
                    for b in binders {
                        self.scope.push(*b);
                    }
                    let body = self.elab(body)?;
                    for _ in binders {
                        self.scope.pop();
                    }
                    out.push(Arm {
                        tag: *tag,
                        binders: binders.clone(),
                        body,
                    });
                }
                Ok(Expr::case(s, out))
            }
        }
    }

    fn resolve_var(&self, x: Symbol) -> Result<Expr, TypeError> {
        if self.scope.contains(&x) || self.globals.contains(&x) {
            return Ok(Expr::Var(x));
        }
        match x.as_str() {
            "fork" => Ok(Expr::Const(Const::Fork)),
            "new" => Ok(Expr::Const(Const::New)),
            "receive" => Ok(Expr::Const(Const::Receive)),
            "send" => Ok(Expr::Const(Const::Send)),
            "wait" => Ok(Expr::Const(Const::Wait)),
            "terminate" => Ok(Expr::Const(Const::Terminate)),
            other => Builtin::from_name(other)
                .map(Expr::Builtin)
                .ok_or(TypeError::UnboundVariable(x)),
        }
    }

    /// Constructor applied to `args`: saturate exactly, or η-expand a
    /// partial application (`Cons 1` becomes `\xs -> Cons 1 xs`).
    fn elab_con(&mut self, tag: Symbol, args: &[&SExpr]) -> Result<Expr, TypeError> {
        let (decl, k) = self
            .decls
            .data_of_tag(tag)
            .ok_or(TypeError::UnboundConstructor(tag))?;
        let arity = decl.ctors[k].args.len();
        if args.len() > arity {
            return Err(TypeError::CtorArity {
                tag,
                expected: arity,
                found: args.len(),
            });
        }
        let mut fields: Vec<Expr> = args
            .iter()
            .map(|a| self.elab(a))
            .collect::<Result<_, _>>()?;
        if fields.len() == arity {
            return Ok(Expr::Con(tag, fields));
        }
        // η-expand the missing arguments.
        let extra: Vec<Symbol> = (fields.len()..arity)
            .map(|i| Symbol::fresh(&format!("_eta{i}")))
            .collect();
        fields.extend(extra.iter().map(|v| Expr::Var(*v)));
        let mut acc = Expr::Con(tag, fields);
        for v in extra.into_iter().rev() {
            acc = Expr::abs_u(v, acc);
        }
        Ok(acc)
    }
}
