//! # algst-check
//!
//! Elaboration and bidirectional type checking for AlgST (paper Sections 4
//! and 5): the typing rules of Fig. 5 with the constants of Fig. 4, the
//! process typing of Fig. 8, and an elaborator from the surface syntax to
//! the core language.
//!
//! The entry point is [`check_source`], which parses, elaborates and
//! checks a whole program (with a small prelude providing `sendInt`,
//! `receiveInt` and friends, mirroring the paper's "predefined"
//! operations):
//!
//! ```
//! let module = algst_check::check_source(r#"
//! protocol IntListP = Nil | Cons Int IntListP
//!
//! sendList : forall (s:S). !IntListP.s -> s
//! sendList [s] c = select Cons [s] c |> sendInt [!IntListP.s] 7 |> sendList [s]
//!
//! main : Unit
//! main = ()
//! "#).expect("type checks");
//! assert!(module.sig("sendList").is_some());
//! ```

pub mod cache;
pub mod check;
pub mod constants;
pub mod context;
pub mod elaborate;
pub mod error;
pub mod process;

pub use check::Checker;
pub use context::Ctx;
pub use error::{CheckError, TypeError};

use algst_core::expr::Expr;
use algst_core::normalize::nrm_pos;
use algst_core::protocol::Declarations;
use algst_core::symbol::Symbol;
use algst_core::types::Type;
use algst_core::Session;
use algst_syntax::ast::Program;
use algst_syntax::parse_program;
use std::collections::HashMap;
use std::sync::Arc;

/// The prelude, written in AlgST itself: directional wrappers for the
/// primitive `send`/`receive` on base types, matching the paper's
/// "predefined" `sendInt : ∀(s:S). Int → !Int.s → s` and friends.
pub const PRELUDE: &str = r#"
sendInt : forall (s:S). Int -> !Int.s -> s
sendInt [s] x c = send [Int, s] x c

receiveInt : forall (s:S). ?Int.s -> (Int, s)
receiveInt [s] c = receive [Int, s] c

sendBool : forall (s:S). Bool -> !Bool.s -> s
sendBool [s] x c = send [Bool, s] x c

receiveBool : forall (s:S). ?Bool.s -> (Bool, s)
receiveBool [s] c = receive [Bool, s] c

sendChar : forall (s:S). Char -> !Char.s -> s
sendChar [s] x c = send [Char, s] x c

receiveChar : forall (s:S). ?Char.s -> (Char, s)
receiveChar [s] c = receive [Char, s] c
"#;

/// A fully elaborated, type-checked module.
#[derive(Debug, Clone)]
pub struct Module {
    pub decls: Declarations,
    /// Resolved (source-shaped) signatures, in order.
    sigs: Vec<(Symbol, Type)>,
    norm_sigs: HashMap<Symbol, Type>,
    defs: Vec<(Symbol, Arc<Expr>)>,
    def_map: HashMap<Symbol, Arc<Expr>>,
}

impl Module {
    /// The resolved signature of `name`, as written (un-normalized).
    pub fn sig(&self, name: &str) -> Option<&Type> {
        let sym = Symbol::intern(name);
        self.sigs.iter().find(|(n, _)| *n == sym).map(|(_, t)| t)
    }

    /// The normalized signature of `name`.
    pub fn norm_sig(&self, name: &str) -> Option<&Type> {
        self.norm_sigs.get(&Symbol::intern(name))
    }

    /// The elaborated definition of `name`.
    pub fn def(&self, name: &str) -> Option<&Arc<Expr>> {
        self.def_map.get(&Symbol::intern(name))
    }

    /// All definitions in source order (prelude first).
    pub fn defs(&self) -> impl Iterator<Item = (Symbol, &Arc<Expr>)> {
        self.defs.iter().map(|(n, e)| (*n, e))
    }

    /// All definitions keyed by name, for the interpreter's global table.
    pub fn globals(&self) -> HashMap<Symbol, Arc<Expr>> {
        self.def_map.clone()
    }
}

/// Parses, elaborates and type-checks `src` together with the
/// [`PRELUDE`], against a **fresh session over the process-global
/// store** — a convenience for one-shot callers. Embedders that need
/// isolation (or want to keep one store warm across many modules) use
/// [`check_source_in`] with their own [`Session`].
pub fn check_source(src: &str) -> Result<Module, CheckError> {
    check_source_in(&mut Session::global(), src)
}

/// [`check_source`] against a caller-owned [`Session`]: every type the
/// elaborator or checker interns lands in *that* session's store and
/// nowhere else.
pub fn check_source_in(session: &mut Session, src: &str) -> Result<Module, CheckError> {
    let mut program = parse_program(PRELUDE)?;
    let user = parse_program(src)?;
    program.decls.extend(user.decls);
    check_program_in(session, &program)
}

/// Like [`check_source`] but without the prelude.
pub fn check_source_raw(src: &str) -> Result<Module, CheckError> {
    check_program_in(&mut Session::global(), &parse_program(src)?)
}

/// Like [`check_source_in`] but without the prelude.
pub fn check_source_raw_in(session: &mut Session, src: &str) -> Result<Module, CheckError> {
    check_program_in(session, &parse_program(src)?)
}

/// Elaborates and type-checks an already-parsed program against a fresh
/// global-store session (see [`check_source`] for the trade-off).
pub fn check_program(program: &Program) -> Result<Module, CheckError> {
    check_program_in(&mut Session::global(), program)
}

/// Elaborates and type-checks an already-parsed program against
/// `session`.
pub fn check_program_in(session: &mut Session, program: &Program) -> Result<Module, CheckError> {
    let elaborate::Elaborated { decls, sigs, defs } = elaborate::elaborate(program, session)?;

    // Kind-check signatures and build the global (unrestricted) context.
    let mut kctx = algst_core::kindcheck::KindCtx::new(&decls);
    let mut norm_sigs = HashMap::new();
    let mut ctx = Ctx::new();
    for (name, ty) in &sigs {
        kctx.check(ty, algst_core::kind::Kind::Value)?;
        let n = nrm_pos(ty);
        ctx.push_unrestricted(session, *name, n.clone());
        norm_sigs.insert(*name, n);
    }

    // Check every definition against its (normalized) signature.
    let mut checker = Checker::new(&decls, session);
    for (name, def) in &defs {
        let goal = norm_sigs[name].clone();
        checker
            .check(&mut ctx, def, &goal)
            .map_err(CheckError::Type)?;
    }

    let defs: Vec<(Symbol, Arc<Expr>)> = defs.into_iter().map(|(n, e)| (n, Arc::new(e))).collect();
    let def_map = defs.iter().map(|(n, e)| (*n, e.clone())).collect();
    Ok(Module {
        decls,
        sigs,
        norm_sigs,
        defs,
        def_map,
    })
}
