//! Linear typing contexts with leftover threading (paper Section 4).
//!
//! Judgments have the shape `Δ | Γ₁ ⊢ e ⇒ T | Γ₂` where `Γ₂` is the part
//! of `Γ₁` *not consumed* by `e`. We implement the thread by mutating a
//! single [`Ctx`] in place: using a linear entry removes it; unrestricted
//! entries (`x :⋆ T`, used for recursive bindings, globals and builtins)
//! survive lookup.
//!
//! Entries store interned [`TypeId`]s, not trees: every type is interned
//! into the checker's [`Session`] on the way in. Because ids are
//! α-canonical, comparing the outgoing contexts of branches
//! ([`Ctx::same_linear`], rule E-Match's `Γ₃ =α Γᵢ` side condition) is a
//! per-entry integer comparison instead of a tree walk — and cloning a
//! context for a branch copies small ids, never types.
//!
//! Ids are only meaningful in the session (and its siblings) that
//! created them; every interning/extracting method therefore takes the
//! `&mut Session` the surrounding check runs against — there is no
//! ambient store a `Ctx` could silently reach instead.

use crate::error::TypeError;
use algst_core::store::TypeId;
use algst_core::symbol::Symbol;
use algst_core::types::Type;
use algst_core::Session;

/// How an entry may be used.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Usage {
    /// `x : T` — must be consumed exactly once.
    Linear,
    /// `x :⋆ T` — may be used any number of times (rule E-Var⋆).
    Unrestricted,
}

/// One context entry.
#[derive(Copy, Clone, Debug)]
pub struct Entry {
    pub name: Symbol,
    /// The entry's type, interned in the thread-shared store.
    pub ty: TypeId,
    pub usage: Usage,
}

/// A typing context `Γ`. Entries form a stack; lookup finds the most
/// recent binding, so local shadowing behaves as expected.
#[derive(Clone, Debug, Default)]
pub struct Ctx {
    entries: Vec<Entry>,
}

impl Ctx {
    pub fn new() -> Ctx {
        Ctx::default()
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn push_linear(&mut self, s: &mut Session, name: Symbol, ty: Type) {
        let id = s.intern(&ty);
        self.push_linear_id(name, id);
    }

    pub fn push_linear_id(&mut self, name: Symbol, ty: TypeId) {
        self.entries.push(Entry {
            name,
            ty,
            usage: Usage::Linear,
        });
    }

    /// Pushes a term binder with an explicitly chosen usage discipline.
    /// Use [`is_unrestricted`] to compute it from the binder's type.
    pub fn push_term(&mut self, s: &mut Session, name: Symbol, ty: Type, unrestricted: bool) {
        if unrestricted {
            self.push_unrestricted(s, name, ty);
        } else {
            self.push_linear(s, name, ty);
        }
    }

    pub fn push_unrestricted(&mut self, s: &mut Session, name: Symbol, ty: Type) {
        let id = s.intern(&ty);
        self.push_unrestricted_id(name, id);
    }

    pub fn push_unrestricted_id(&mut self, name: Symbol, ty: TypeId) {
        self.entries.push(Entry {
            name,
            ty,
            usage: Usage::Unrestricted,
        });
    }

    /// Looks up `name`, applying the use discipline: a linear entry is
    /// removed (consumed, rule E-Var); an unrestricted entry is kept
    /// (rule E-Var⋆).
    pub fn use_var(&mut self, name: Symbol) -> Option<TypeId> {
        let ix = self.entries.iter().rposition(|e| e.name == name)?;
        match self.entries[ix].usage {
            Usage::Linear => Some(self.entries.remove(ix).ty),
            Usage::Unrestricted => Some(self.entries[ix].ty),
        }
    }

    /// Like [`Ctx::use_var`], but extracting the boundary [`Type`] for
    /// callers that destructure it. Extraction is memoized per id, so a
    /// global referenced many times pays one tree build, then shallow
    /// clones (extracted trees share subterms via `Arc`).
    pub fn use_var_ty(&mut self, s: &mut Session, name: Symbol) -> Option<Type> {
        let id = self.use_var(name)?;
        Some(s.extract_cached(id))
    }

    /// True if `name` is still present (most recent binding).
    pub fn contains(&self, name: Symbol) -> bool {
        self.entries.iter().any(|e| e.name == name)
    }

    /// Removes the most recent entry for `name`, regardless of usage.
    /// Used to pop unrestricted binders at scope exit.
    pub fn remove(&mut self, name: Symbol) -> Option<Entry> {
        let ix = self.entries.iter().rposition(|e| e.name == name)?;
        Some(self.entries.remove(ix))
    }

    /// Checks the side condition `x ∉ Γ₂` of the binder rules: after the
    /// body of a `λ`/`let`/`match` the bound linear variable must be gone.
    /// Removes leftover *unrestricted* entries silently (they are scoped).
    pub fn expect_consumed(&mut self, name: Symbol) -> Result<(), TypeError> {
        if let Some(ix) = self.entries.iter().rposition(|e| e.name == name) {
            match self.entries[ix].usage {
                Usage::Linear => return Err(TypeError::UnusedLinear(name)),
                Usage::Unrestricted => {
                    self.entries.remove(ix);
                }
            }
        }
        Ok(())
    }

    /// A stable fingerprint of the linear entries, used to compare the
    /// outgoing contexts of `match`/`if` branches (rule E-Match requires
    /// `Γ₃ =α Γᵢ`) and to enforce E-Rec's "no linear captures".
    pub fn linear_names(&self) -> Vec<Symbol> {
        self.entries
            .iter()
            .filter(|e| e.usage == Usage::Linear)
            .map(|e| e.name)
            .collect()
    }

    /// Compares the linear parts of two contexts. Entry types are
    /// α-canonical ids, so the whole comparison is name + integer
    /// equality per entry — O(1) per entry, no tree traversal. Reports a
    /// human-readable diff on mismatch (`s` only extracts types for the
    /// diagnostic; the comparison itself never touches the store).
    pub fn same_linear(&self, other: &Ctx, s: &mut Session) -> Result<(), String> {
        let a = self.linear_entries();
        let b = other.linear_entries();
        if a.len() != b.len() {
            return Err(diff_message(s, &a, &b));
        }
        for (ea, eb) in a.iter().zip(&b) {
            if ea.name != eb.name || ea.ty != eb.ty {
                return Err(diff_message(s, &a, &b));
            }
        }
        Ok(())
    }

    fn linear_entries(&self) -> Vec<&Entry> {
        self.entries
            .iter()
            .filter(|e| e.usage == Usage::Linear)
            .collect()
    }

    pub fn entries(&self) -> impl Iterator<Item = &Entry> {
        self.entries.iter()
    }
}

/// Types whose values may be freely dropped and duplicated.
///
/// This realizes the implementation-level kind split of the paper's
/// Section 5 (`Tᵘⁿ < Tˡⁱⁿ`; the formal system in the paper body is
/// uniformly linear):
///
/// * base types are unrestricted;
/// * pairs are unrestricted when both components are;
/// * datatypes are unrestricted when every constructor field is
///   (coinductively, so recursive datatypes like `Ast` qualify);
/// * function and ∀-types are treated as unrestricted, matching the
///   artifact's examples (e.g. the generic `stream` server applies its
///   `Service a` argument repeatedly). This is an approximation: the
///   artifact tracks the linearity of *captured* variables through kinds,
///   which we do not model — a closure over a channel can be duplicated
///   here. Session types, protocols and type variables are linear.
pub fn is_unrestricted(decls: &algst_core::protocol::Declarations, ty: &Type) -> bool {
    fn go(
        decls: &algst_core::protocol::Declarations,
        ty: &Type,
        assumed: &mut Vec<Symbol>,
    ) -> bool {
        match ty {
            Type::Unit | Type::Base(_) => true,
            Type::Arrow(..) | Type::Forall(..) => true,
            Type::Pair(a, b) => go(decls, a, assumed) && go(decls, b, assumed),
            Type::Data(name, args) => {
                if assumed.contains(name) {
                    return true; // coinductive: assume while checking
                }
                let Some(decl) = decls.data(*name) else {
                    return false;
                };
                if !args.iter().all(|a| go(decls, a, assumed)) {
                    return false;
                }
                assumed.push(*name);
                let ok = decl
                    .ctors
                    .iter()
                    .all(|c| c.args.iter().all(|f| go(decls, f, assumed)));
                assumed.pop();
                ok
            }
            _ => false,
        }
    }
    go(decls, ty, &mut Vec::new())
}

fn diff_message(s: &mut Session, a: &[&Entry], b: &[&Entry]) -> String {
    let mut show = |es: &[&Entry]| {
        if es.is_empty() {
            "(none)".to_owned()
        } else {
            es.iter()
                .map(|e| format!("{}: {}", e.name, s.extract(e.ty)))
                .collect::<Vec<_>>()
                .join(", ")
        }
    };
    let left = show(a);
    format!("one branch leaves [{left}], another [{}]", show(b))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(s: &str) -> Symbol {
        Symbol::intern(s)
    }

    #[test]
    fn linear_use_consumes() {
        let mut s = Session::new();
        let mut ctx = Ctx::new();
        ctx.push_linear(&mut s, sym("c"), Type::EndOut);
        assert!(ctx.use_var(sym("c")).is_some());
        assert!(ctx.use_var(sym("c")).is_none());
    }

    #[test]
    fn unrestricted_use_persists() {
        let mut s = Session::new();
        let mut ctx = Ctx::new();
        ctx.push_unrestricted(&mut s, sym("f"), Type::arrow(Type::Unit, Type::Unit));
        assert!(ctx.use_var(sym("f")).is_some());
        assert!(ctx.use_var(sym("f")).is_some());
    }

    #[test]
    fn shadowing_uses_innermost() {
        let mut s = Session::new();
        let mut ctx = Ctx::new();
        ctx.push_linear(&mut s, sym("x"), Type::int());
        ctx.push_linear(&mut s, sym("x"), Type::bool());
        let t = ctx.use_var_ty(&mut s, sym("x")).unwrap();
        assert_eq!(t, Type::bool());
        let t = ctx.use_var_ty(&mut s, sym("x")).unwrap();
        assert_eq!(t, Type::int());
    }

    #[test]
    fn expect_consumed_flags_leftover_linear() {
        let mut s = Session::new();
        let mut ctx = Ctx::new();
        ctx.push_linear(&mut s, sym("c"), Type::EndOut);
        assert!(matches!(
            ctx.expect_consumed(sym("c")),
            Err(TypeError::UnusedLinear(_))
        ));
        // Unrestricted leftovers are popped silently.
        let mut ctx = Ctx::new();
        ctx.push_unrestricted(&mut s, sym("g"), Type::Unit);
        ctx.expect_consumed(sym("g")).unwrap();
        assert!(!ctx.contains(sym("g")));
    }

    #[test]
    fn same_linear_ignores_unrestricted() {
        let mut s = Session::new();
        let mut a = Ctx::new();
        a.push_unrestricted(&mut s, sym("f"), Type::Unit);
        a.push_linear(&mut s, sym("c"), Type::EndIn);
        let mut b = Ctx::new();
        b.push_linear(&mut s, sym("c"), Type::EndIn);
        a.same_linear(&b, &mut s).unwrap();
        b.use_var(sym("c"));
        assert!(a.same_linear(&b, &mut s).is_err());
    }

    #[test]
    fn same_linear_is_alpha_insensitive() {
        use algst_core::kind::Kind;
        // Entries interned to the same id despite different binder names.
        let mut s = Session::new();
        let mut a = Ctx::new();
        a.push_linear(
            &mut s,
            sym("h"),
            Type::forall("x", Kind::Session, Type::var("x")),
        );
        let mut b = Ctx::new();
        b.push_linear(
            &mut s,
            sym("h"),
            Type::forall("y", Kind::Session, Type::var("y")),
        );
        a.same_linear(&b, &mut s).unwrap();
    }
}
