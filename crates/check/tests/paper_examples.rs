//! Every program example from the paper, type-checked.
//!
//! Section 2.1: AST transmission (`sendAst`/`recvAst`).
//! Section 2.2: the arithmetic server with polarities.
//! Section 2.3: parameterized protocols, generic and active servers,
//!              the toolbox (`Seq`/`Either`/`Repeat`).
//! Appendix A.2: negated recursion (`Flipper`).
//! Appendix A.3: mutual recursion (`Flip`/`Flop`).
//! Appendix A.5: recursion and duality (`µX.!X.X`).
//! Appendix B:   `repeat` generic server.
//!
//! Plus negative tests: programs the type system must reject.

use algst_check::{check_source, CheckError, TypeError};

fn assert_checks(src: &str) {
    if let Err(e) = check_source(src) {
        panic!("expected program to type check, got: {e}");
    }
}

fn assert_type_error(src: &str) -> TypeError {
    match check_source(src) {
        Ok(_) => panic!("expected a type error, but the program checked"),
        Err(CheckError::Type(t)) => t,
        Err(other) => panic!("expected a type error, got: {other}"),
    }
}

// ---------------------------------------------------------------- §2.1

const AST_DECLS: &str = r#"
data Ast = Con Int | Add Ast Ast
protocol AstP = ConP Int | AddP AstP AstP
"#;

#[test]
fn send_ast_checks() {
    assert_checks(&format!(
        "{AST_DECLS}
sendAst : Ast -> forall (s:S). !AstP.s -> s
sendAst t [s] c = case t of {{
  Con x -> select ConP [s] c |> sendInt [s] x,
  Add l r -> select AddP [s] c |> sendAst l [!AstP.s] |> sendAst r [s] }}
"
    ));
}

#[test]
fn recv_ast_checks() {
    assert_checks(&format!(
        "{AST_DECLS}
recvAst : forall (s:S). ?AstP.s -> (Ast, s)
recvAst [s] c = match c with {{
  ConP c -> let (x, c) = receiveInt [s] c in (Con x, c),
  AddP c -> let (tl, c) = recvAst [?AstP.s] c in
            let (tr, c) = recvAst [s] c in (Add tl tr, c) }}
"
    ));
}

#[test]
fn select_conp_has_expected_continuation() {
    // select ConP [s] : !AstP.s → !Int.s ; wrong continuation must fail.
    let err = assert_type_error(&format!(
        "{AST_DECLS}
bad : forall (s:S). !AstP.s -> s
bad [s] c = select ConP [s] c |> sendBool [s] True
"
    ));
    assert!(matches!(err, TypeError::Mismatch { .. }));
}

// ---------------------------------------------------------------- §2.2

const ARITH: &str = r#"
protocol Arith = Neg Int -Int | Add2 Int Int -Int
"#;

#[test]
fn serve_arith_checks() {
    assert_checks(&format!(
        "{ARITH}
serveArith : forall (s:S). ?Arith.s -> s
serveArith [s] c = match c with {{
  Neg c -> let (x, c) = receiveInt [!Int.s] c in
           sendInt [s] (0 - x) c,
  Add2 c -> let (x, c) = receiveInt [?Int.!Int.s] c in
            let (y, c) = receiveInt [!Int.s] c in
            sendInt [s] (x + y) c }}
"
    ));
}

#[test]
fn arith_client_checks() {
    // The paper leaves the client to the reader: select Neg, send an Int,
    // receive the result.
    assert_checks(&format!(
        "{ARITH}
negate7 : forall (s:S). !Arith.s -> (Int, s)
negate7 [s] c =
  let c = select Neg [s] c in
  let c = sendInt [?Int.s] 7 c in
  receiveInt [s] c
"
    ));
}

#[test]
fn polarity_direction_matters() {
    // Writing the server against the un-negated protocol must fail:
    // after Neg, the server RECEIVES an Int and then SENDS one; sending
    // first is a protocol violation.
    let err = assert_type_error(&format!(
        "{ARITH}
bad : forall (s:S). ?Arith.s -> s
bad [s] c = match c with {{
  Neg c -> let (x, c) = receiveInt [?Int.s] c in
           let (y, c) = receiveInt [s] c in c,
  Add2 c -> let (x, c) = receiveInt [?Int.!Int.s] c in
            let (y, c) = receiveInt [!Int.s] c in
            sendInt [s] (x + y) c }}
"
    ));
    assert!(matches!(
        err,
        TypeError::Mismatch { .. } | TypeError::NotMatchable(_)
    ));
}

// ---------------------------------------------------------------- §2.3

const STREAM: &str = r#"
protocol Stream a = Next a (Stream a)
type Service a = forall (s:S). ?a.s -> s
"#;

#[test]
fn ones_checks() {
    assert_checks(&format!(
        "{STREAM}
ones : !Stream Int.End! -> Unit
ones c = select Next [Int, End!] c |> sendInt [!Stream Int.End!] 1 |> ones
"
    ));
}

#[test]
fn generic_stream_server_checks() {
    assert_checks(&format!(
        "{STREAM}{ARITH}
serveArith : forall (s:S). ?Arith.s -> s
serveArith [s] c = match c with {{
  Neg c -> let (x, c) = receiveInt [!Int.s] c in
           sendInt [s] (0 - x) c,
  Add2 c -> let (x, c) = receiveInt [?Int.!Int.s] c in
            let (y, c) = receiveInt [!Int.s] c in
            sendInt [s] (x + y) c }}

stream : forall (a:P). Service a -> ?Stream a.End! -> Unit
stream [a] serve c = match c with {{
  Next c -> serve [?Stream a.End!] c |> stream [a] serve }}

streamArith : ?Stream Arith.End! -> Unit
streamArith = stream [Arith] serveArith
"
    ));
}

#[test]
fn active_server_needs_negated_parameter() {
    // streamAct: the active server runs on !Stream -a (paper discussion).
    assert_checks(&format!(
        "{STREAM}
streamAct : forall (a:P). Service a -> !Stream -a.End! -> Unit
streamAct [a] svc c =
  select Next [-a, End!] c |> svc [!Stream -a.End!] |> streamAct [a] svc
"
    ));
}

#[test]
fn stream_act_ones_double_negation() {
    // streamActOnes = streamAct [-Int] (sendInt 1) : !Stream Int.End! → Unit
    // works because Stream -(-Int) ≡ Stream Int.
    assert_checks(&format!(
        "{STREAM}
streamAct : forall (a:P). Service a -> !Stream -a.End! -> Unit
streamAct [a] svc c =
  select Next [-a, End!] c |> svc [!Stream -a.End!] |> streamAct [a] svc

sendOne : Service -Int
sendOne [s] c = sendInt [s] 1 c

streamActOnes : !Stream Int.End! -> Unit
streamActOnes = streamAct [-Int] sendOne
"
    ));
}

#[test]
fn toolbox_checks() {
    // The Seq/Either/Repeat toolbox with generic servers and the composed
    // arithmetic server (paper §2.3 "A toolbox for generic servers").
    assert_checks(
        r#"
protocol Seq a b = SeqC a b
protocol Either a b = Left a | Right b
protocol Repeat a = More a (Repeat a) | Quit

type Service a = forall (s:S). ?a.s -> s

type NegT = Seq Int -Int
type AddT = Seq Int (Seq Int -Int)
type ArithT = Either NegT AddT

either : forall (a:P). Service a -> forall (b:P). Service b -> Service (Either a b)
either [a] sa [b] sb [s] c = match c with {
  Left c -> sa [s] c,
  Right c -> sb [s] c }

repeat : forall (p:P). Service p -> Service (Repeat p)
repeat [p] serveP [s] c = match c with {
  Quit c -> c,
  More c -> serveP [?Repeat p.s] c |> repeat [p] serveP [s] }

serveNeg : Service NegT
serveNeg [s] c = match c with {
  SeqC c -> let (x, c) = receiveInt [!Int.s] c in
            sendInt [s] (0 - x) c }

serveAdd : Service AddT
serveAdd [s] c = match c with {
  SeqC c -> let (x, c) = receiveInt [?Seq Int -Int.s] c in
            match c with {
              SeqC c -> let (y, c) = receiveInt [!Int.s] c in
                        sendInt [s] (x + y) c }}

serveArith : Service ArithT
serveArith = either [NegT] serveNeg [AddT] serveAdd

serveAriths : Service (Repeat ArithT)
serveAriths = repeat [ArithT] serveArith
"#,
    );
}

// ------------------------------------------------------------ App. A.2

#[test]
fn flipper_negated_recursion_checks() {
    assert_checks(
        r#"
protocol Flipper = FlipT -Int -Flipper

flipper : !Flipper.End! -> Unit
flipper c = let c = select FlipT [End!] c in
            let (x, c) = receiveInt [?Flipper.End!] c in
            match c with {
              FlipT c -> sendInt [!Flipper.End!] x c |> flipper }
"#,
    );
}

// ------------------------------------------------------------ App. A.3

#[test]
fn mutual_recursion_flip_flop_checks() {
    assert_checks(
        r#"
protocol Flip = FlipC -Int Flop
protocol Flop = FlopC Int Flip

flip : !Flip.End! -> Unit
flip c = select FlipC [End!] c |> receiveInt [!Flop.End!] |> flop

flop : (Int, !Flop.End!) -> Unit
flop p = let (x, c) = p in
         select FlopC [End!] c |> sendInt [!Flip.End!] x |> flip
"#,
    );
}

// ------------------------------------------------------------ App. A.5

#[test]
fn recursion_and_duality_mu_example() {
    // protocol X = Mu T X ; type T = !X.End!
    // selectMu unfolds T; matchMu unfolds Dual T; dualT is an identity.
    assert_checks(
        r#"
protocol X = Mu T X

type T = !X.End!

selectMu : T -> !T.T
selectMu c = select Mu [End!] c

dualT : Dual T -> ?X.End?
dualT c = c

matchMu : Dual T -> ?T.Dual T
matchMu d = match d with { Mu d -> d }
"#,
    );
}

// ------------------------------------------------------------ App. B

#[test]
fn repeat_arith_composition() {
    assert_checks(&format!(
        "{ARITH}
protocol Repeat x = More x (Repeat x) | Quit
type Service a = forall (s:S). ?a.s -> s

serveArith : Service Arith
serveArith [s] c = match c with {{
  Neg c -> let (x, c) = receiveInt [!Int.s] c in
           sendInt [s] (0 - x) c,
  Add2 c -> let (x, c) = receiveInt [?Int.!Int.s] c in
            let (y, c) = receiveInt [!Int.s] c in
            sendInt [s] (x + y) c }}

repeat : forall (p:P). Service p -> Service (Repeat p)
repeat [p] serveP [s] c = match c with {{
  Quit c -> c,
  More c -> serveP [?Repeat p.s] c |> repeat [p] serveP [s] }}

repeatArith : Service (Repeat Arith)
repeatArith = repeat [Arith] serveArith
"
    ));
}

// ------------------------------------------------------- negative tests

#[test]
fn unused_channel_is_rejected() {
    let err = assert_type_error(
        r#"
leak : End! -> Unit
leak c = ()
"#,
    );
    assert!(matches!(err, TypeError::UnusedLinear(_)));
}

#[test]
fn double_use_of_channel_is_rejected() {
    let err = assert_type_error(
        r#"
dup : End! -> Unit
dup c = let _ = terminate c in terminate c
"#,
    );
    assert!(matches!(err, TypeError::UnboundVariable(_)));
}

#[test]
fn nonexhaustive_match_is_rejected() {
    let err = assert_type_error(&format!(
        "{AST_DECLS}
partial : forall (s:S). ?AstP.s -> s
partial [s] c = match c with {{
  ConP c -> let (x, c) = receiveInt [s] c in c }}
"
    ));
    assert!(matches!(err, TypeError::BadCoverage { .. }));
}

#[test]
fn foreign_tag_is_rejected() {
    let err = assert_type_error(&format!(
        "{AST_DECLS}{ARITH}
confused : forall (s:S). ?Arith.s -> s
confused [s] c = match c with {{
  Neg c -> let (x, c) = receiveInt [!Int.s] c in sendInt [s] x c,
  ConP c -> let (x, c) = receiveInt [!Int.s] c in sendInt [s] x c }}
"
    ));
    assert!(matches!(err, TypeError::BadCoverage { .. }));
}

#[test]
fn wrong_direction_send_is_rejected() {
    let err = assert_type_error(
        r#"
wrong : ?Int.End? -> Unit
wrong c = sendInt [End?] 1 c |> wait
"#,
    );
    assert!(matches!(err, TypeError::Mismatch { .. }));
}

#[test]
fn terminate_on_input_end_is_rejected() {
    let err = assert_type_error(
        r#"
wrong : End? -> Unit
wrong c = terminate c
"#,
    );
    assert!(matches!(err, TypeError::Mismatch { .. }));
}

#[test]
fn branch_context_mismatch_is_rejected() {
    // One branch consumes the channel, the other leaks it.
    let err = assert_type_error(
        r#"
bad : Bool -> End! -> Unit
bad b c = if b then terminate c else ()
"#,
    );
    assert!(matches!(
        err,
        TypeError::BranchContextMismatch { .. } | TypeError::UnusedLinear(_)
    ));
}

#[test]
fn missing_signature_is_rejected() {
    let err = assert_type_error("f x = x\n");
    assert!(matches!(err, TypeError::MissingSignature(_)));
}

#[test]
fn missing_definition_is_rejected() {
    let err = assert_type_error("f : Unit\n");
    assert!(matches!(err, TypeError::MissingDefinition(_)));
}

#[test]
fn protocol_cannot_classify_values() {
    // A protocol type is not a value type: using it as a function domain
    // must fail kind checking.
    let err = assert_type_error(&format!(
        "{ARITH}
bad : Arith -> Unit
bad x = ()
"
    ));
    assert!(matches!(err, TypeError::Kind(_)));
}

#[test]
fn equivalence_used_by_checker_is_nominal() {
    // Two protocols with identical structure are NOT interchangeable.
    let err = assert_type_error(
        r#"
protocol P1 = TagA Int
protocol P2 = TagB Int

coerce : forall (s:S). !P1.s -> !P2.s
coerce [s] c = c
"#,
    );
    assert!(matches!(err, TypeError::Mismatch { .. }));
}

#[test]
fn dual_types_accepted_via_normalization() {
    // Checker identifies Dual(!Int.End!) with ?Int.End? (C-DualOut etc).
    assert_checks(
        r#"
deal : Dual (!Int.End!) -> Unit
deal c = let (x, c) = receiveInt [End?] c in wait c
"#,
    );
}

#[test]
fn double_negation_accepted_via_normalization() {
    assert_checks(
        r#"
dd : !(-(-Int)).End! -> Unit
dd c = sendInt [End!] 1 c |> terminate
"#,
    );
}
