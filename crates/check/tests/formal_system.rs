//! Tests of the formal typing rules on *core* terms (bypassing the
//! surface language): value restriction, E-Rec, leftover threading,
//! constants, and the E-Match continuation types.

use algst_check::{Checker, Ctx, TypeError};
use algst_core::expr::{Arm, Const, Expr};
use algst_core::kind::Kind;
use algst_core::normalize::nrm_pos;
use algst_core::protocol::{Ctor, Declarations, ProtocolDecl};
use algst_core::symbol::Symbol;
use algst_core::types::Type;
use algst_core::Session;

fn decls() -> Declarations {
    let mut d = Declarations::new();
    // protocol FArith = FNeg Int -Int | FAdd Int Int -Int
    d.add_protocol(ProtocolDecl {
        name: Symbol::intern("FArith"),
        params: vec![],
        ctors: vec![
            Ctor::new("FNeg", vec![Type::int(), Type::neg(Type::int())]),
            Ctor::new(
                "FAdd",
                vec![Type::int(), Type::int(), Type::neg(Type::int())],
            ),
        ],
    })
    .unwrap();
    d.validate().unwrap();
    d
}

fn synth(
    s: &mut Session,
    decls: &Declarations,
    ctx: &mut Ctx,
    e: &Expr,
) -> Result<Type, TypeError> {
    Checker::new(decls, s).synth(ctx, e)
}

#[test]
fn identity_synthesizes() {
    let d = decls();
    let mut s = Session::new();
    let id = Expr::abs("x", Type::int(), Expr::var("x"));
    let t = synth(&mut s, &d, &mut Ctx::new(), &id).unwrap();
    assert_eq!(t.to_string(), "Int -> Int");
}

#[test]
fn tabs_value_restriction() {
    let d = decls();
    let mut s = Session::new();
    // Λα:S. ((λx:Unit.x) ()) — body not a value.
    let bad = Expr::tabs(
        "a",
        Kind::Session,
        Expr::app(Expr::abs("x", Type::Unit, Expr::var("x")), Expr::unit()),
    );
    assert!(matches!(
        synth(&mut s, &d, &mut Ctx::new(), &bad),
        Err(TypeError::TAbsNotValue)
    ));
}

#[test]
fn unannotated_lambda_has_no_synthesis_rule() {
    let d = decls();
    let mut s = Session::new();
    let e = Expr::abs_u("x", Expr::var("x"));
    assert!(matches!(
        synth(&mut s, &d, &mut Ctx::new(), &e),
        Err(TypeError::NeedsAnnotation)
    ));
    // But it checks against an arrow (E-Abs').
    let mut ctx = Ctx::new();
    Checker::new(&d, &mut s)
        .check(&mut ctx, &e, &Type::arrow(Type::int(), Type::int()))
        .unwrap();
}

#[test]
fn rec_requires_arrow_annotation() {
    let d = decls();
    let mut s = Session::new();
    let bad = Expr::rec("f", Type::int(), Expr::int(3));
    assert!(matches!(
        synth(&mut s, &d, &mut Ctx::new(), &bad),
        Err(TypeError::RecNotArrow(_))
    ));
}

#[test]
fn rec_cannot_capture_linear_variables() {
    let d = decls();
    let mut s = Session::new();
    // rec f: Unit -> Unit. λu:Unit. let * = terminate c in u — captures c.
    let body = Expr::abs(
        "u",
        Type::Unit,
        Expr::let_unit(
            Expr::app(Expr::Const(Const::Terminate), Expr::var("c")),
            Expr::var("u"),
        ),
    );
    let rec = Expr::rec("f", Type::arrow(Type::Unit, Type::Unit), body);
    let mut ctx = Ctx::new();
    ctx.push_linear(&mut s, Symbol::intern("c"), Type::EndOut);
    assert!(matches!(
        synth(&mut s, &d, &mut ctx, &rec),
        Err(TypeError::LinearInRecursive { .. })
    ));
}

#[test]
fn local_rec_function_applies() {
    let d = decls();
    let mut s = Session::new();
    // (rec f: Int -> Int. λn:Int. if n == 0 then 0 else f (n - 1)) 3 ⇒ Int
    let body = Expr::abs(
        "n",
        Type::int(),
        Expr::if_(
            Expr::apps(
                Expr::Builtin(algst_core::expr::Builtin::Eq),
                [Expr::var("n"), Expr::int(0)],
            ),
            Expr::int(0),
            Expr::app(
                Expr::var("f"),
                Expr::apps(
                    Expr::Builtin(algst_core::expr::Builtin::Sub),
                    [Expr::var("n"), Expr::int(1)],
                ),
            ),
        ),
    );
    let e = Expr::app(
        Expr::rec("f", Type::arrow(Type::int(), Type::int()), body),
        Expr::int(3),
    );
    let t = synth(&mut s, &d, &mut Ctx::new(), &e).unwrap();
    assert_eq!(t, Type::int());
}

#[test]
fn leftover_threading_through_pairs() {
    // ⟨terminate c, 1⟩ consumes c from the context.
    let d = decls();
    let mut s = Session::new();
    let mut ctx = Ctx::new();
    ctx.push_linear(&mut s, Symbol::intern("c"), Type::EndOut);
    let e = Expr::pair(
        Expr::app(Expr::Const(Const::Terminate), Expr::var("c")),
        Expr::int(1),
    );
    let t = synth(&mut s, &d, &mut ctx, &e).unwrap();
    assert_eq!(t.to_string(), "(Unit, Int)");
    assert!(!ctx.contains(Symbol::intern("c")));
}

#[test]
fn match_pushes_continuations_with_polarity() {
    // match c with {FNeg c -> …, FAdd c -> …} where c : ?FArith.End?
    // FNeg arm: c : ?Int.!Int.End? ; FAdd arm: c : ?Int.?Int.!Int.End?
    let d = decls();
    let mut s = Session::new();
    let recv_int = |cont_ty: Type, chan: &str| {
        Expr::app(
            Expr::tapps(Expr::Const(Const::Receive), [Type::int(), cont_ty]),
            Expr::var(chan),
        )
    };
    let send_and_wait = |cont_after: Type, val: Expr, chan: &str| {
        // send val chan then wait
        Expr::app(
            Expr::Const(Const::Wait),
            Expr::apps(
                Expr::tapps(Expr::Const(Const::Send), [Type::int(), cont_after]),
                [val, Expr::var(chan)],
            ),
        )
    };

    let neg_arm = Arm {
        tag: Symbol::intern("FNeg"),
        binders: vec![Symbol::intern("c")],
        body: Expr::let_pair(
            "x",
            "c",
            recv_int(Type::output(Type::int(), Type::EndIn), "c"),
            send_and_wait(Type::EndIn, Expr::var("x"), "c"),
        ),
    };
    let add_arm = Arm {
        tag: Symbol::intern("FAdd"),
        binders: vec![Symbol::intern("c")],
        body: Expr::let_pair(
            "x",
            "c",
            recv_int(
                Type::input(Type::int(), Type::output(Type::int(), Type::EndIn)),
                "c",
            ),
            Expr::let_pair(
                "y",
                "c",
                recv_int(Type::output(Type::int(), Type::EndIn), "c"),
                send_and_wait(Type::EndIn, Expr::var("y"), "c"),
            ),
        ),
    };
    let e = Expr::case(Expr::var("ch"), vec![neg_arm, add_arm]);
    let mut ctx = Ctx::new();
    ctx.push_linear(
        &mut s,
        Symbol::intern("ch"),
        nrm_pos(&Type::input(Type::proto("FArith", vec![]), Type::EndIn)),
    );
    let t = synth(&mut s, &d, &mut ctx, &e).unwrap();
    assert_eq!(t, Type::Unit);
}

#[test]
fn match_with_wrong_arm_type_fails() {
    let d = decls();
    let mut s = Session::new();
    // FNeg arm treats the continuation as if it were ?Int.?Int…
    let bad_arm = Arm {
        tag: Symbol::intern("FNeg"),
        binders: vec![Symbol::intern("c")],
        body: Expr::app(Expr::Const(Const::Wait), Expr::var("c")),
    };
    let other = Arm {
        tag: Symbol::intern("FAdd"),
        binders: vec![Symbol::intern("c")],
        body: Expr::app(Expr::Const(Const::Wait), Expr::var("c")),
    };
    let e = Expr::case(Expr::var("ch"), vec![bad_arm, other]);
    let mut ctx = Ctx::new();
    ctx.push_linear(
        &mut s,
        Symbol::intern("ch"),
        nrm_pos(&Type::input(Type::proto("FArith", vec![]), Type::EndIn)),
    );
    assert!(synth(&mut s, &d, &mut ctx, &e).is_err());
}

#[test]
fn select_then_send_roundtrip_types() {
    // select FNeg [End!] ch ⇒ !Int.?Int.End!
    let d = decls();
    let mut s = Session::new();
    let e = Expr::app(
        Expr::tapp(Expr::select("FNeg"), Type::EndOut),
        Expr::var("ch"),
    );
    let mut ctx = Ctx::new();
    ctx.push_linear(
        &mut s,
        Symbol::intern("ch"),
        Type::output(Type::proto("FArith", vec![]), Type::EndOut),
    );
    let t = synth(&mut s, &d, &mut ctx, &e).unwrap();
    assert_eq!(t.to_string(), "!Int.?Int.End!");
}

#[test]
fn new_returns_dual_endpoints() {
    let d = decls();
    let mut s = Session::new();
    let e = Expr::tapp(
        Expr::Const(Const::New),
        Type::output(Type::int(), Type::EndOut),
    );
    let t = synth(&mut s, &d, &mut Ctx::new(), &e).unwrap();
    assert_eq!(t.to_string(), "(!Int.End!, ?Int.End?)");
}

#[test]
fn branches_must_agree_on_leftovers() {
    let d = decls();
    let mut s = Session::new();
    // if b then terminate c else () — one branch leaks c.
    let e = Expr::if_(
        Expr::var("b"),
        Expr::app(Expr::Const(Const::Terminate), Expr::var("c")),
        Expr::unit(),
    );
    let mut ctx = Ctx::new();
    ctx.push_unrestricted(&mut s, Symbol::intern("b"), Type::bool());
    ctx.push_linear(&mut s, Symbol::intern("c"), Type::EndOut);
    assert!(matches!(
        synth(&mut s, &d, &mut ctx, &e),
        Err(TypeError::BranchContextMismatch { .. })
    ));
}
