//! Cross-validation of the two equivalence checkers (the linchpin of the
//! Figure 10 reproduction): on every generated test case, AlgST's
//! linear-time nominal check and FreeST's bisimulation check — run on the
//! *translated* pair — must return the same verdict, which must also match
//! the ground truth built into the suite.

use algst_gen::suite::{build_suite, SuiteKind};
use algst_gen::to_grammar::to_grammar;
use freest::{bisimilar, BisimResult, Grammar};

const BUDGET: u64 = 2_000_000;

fn check_agreement(kind: SuiteKind, count: usize, seed: u64) {
    let suite = build_suite(kind, count, seed);
    let mut session = suite.session.sibling();
    let mut budget_hits = 0;
    for (i, case) in suite.cases.iter().enumerate() {
        let algst_verdict = session.equivalent(&case.instance.ty, &case.other);
        assert_eq!(
            algst_verdict, case.equivalent,
            "case {i}: AlgST verdict disagrees with ground truth\n  T  = {}\n  T' = {}",
            case.instance.ty, case.other
        );

        let mut g = Grammar::new();
        let w1 = to_grammar(
            &mut session,
            &case.instance.decls,
            &case.instance.ty,
            &mut g,
        )
        .unwrap_or_else(|e| panic!("case {i} untranslatable: {e}"));
        let w2 = to_grammar(&mut session, &case.instance.decls, &case.other, &mut g)
            .unwrap_or_else(|e| panic!("case {i} untranslatable: {e}"));
        match bisimilar(&mut g, &w1, &w2, BUDGET) {
            BisimResult::Equivalent => assert!(
                case.equivalent,
                "case {i}: FreeST says equivalent, ground truth says not\n  T  = {}\n  T' = {}",
                case.instance.ty, case.other
            ),
            BisimResult::NotEquivalent => assert!(
                !case.equivalent,
                "case {i}: FreeST says not equivalent, ground truth says equivalent\n  T  = {}\n  T' = {}",
                case.instance.ty, case.other
            ),
            BisimResult::Budget => {
                // Large instances may exhaust the budget — that is the
                // paper's observation, not a soundness issue. Keep count.
                budget_hits += 1;
            }
        }
    }
    // The suite sweeps small-to-large; small cases must decide.
    assert!(
        budget_hits < count / 2,
        "too many budget hits ({budget_hits}/{count}) to call this agreement"
    );
}

#[test]
fn agreement_on_equivalent_suite() {
    check_agreement(SuiteKind::Equivalent, 60, 101);
}

#[test]
fn agreement_on_nonequivalent_suite() {
    check_agreement(SuiteKind::NonEquivalent, 60, 202);
}

#[test]
fn agreement_on_more_seeds() {
    for seed in [7, 77, 777] {
        check_agreement(SuiteKind::Equivalent, 25, seed);
        check_agreement(SuiteKind::NonEquivalent, 25, seed + 1);
    }
}
