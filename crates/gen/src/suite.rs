//! Assembly of the paper's benchmark suites (Section 5): "Each test suite
//! comprises 324 tests" — one suite of equivalent pairs (Fig. 10a) and
//! one of non-equivalent pairs (Fig. 10b), sweeping instance sizes.

use crate::generate::{generate_instance, GenConfig};
use crate::instance::TestCase;
use crate::mutate::{equivalent_variant, nonequivalent_mutant};
use algst_core::kind::Kind;
use algst_core::store::TypeId;
use algst_core::Session;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Which of the two Fig. 10 suites to build.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum SuiteKind {
    /// Fig. 10(a): pairs (T, T′) with T′ an equivalent conversion variant.
    Equivalent,
    /// Fig. 10(b): pairs (T, mutant(T)).
    NonEquivalent,
}

/// A full benchmark suite. Cases are interned at construction time into
/// a **suite-owned [`Session`]** (private store — nothing leaks into or
/// out of other suites), so consumers can run id-level (warm, memoized)
/// equivalence queries next to the tree-level (cold) ones.
#[derive(Debug)]
pub struct Suite {
    pub kind: SuiteKind,
    pub cases: Vec<TestCase>,
    /// The session every case is interned into. Shared sub-spines
    /// across cases are stored once.
    pub session: Session,
    /// Per-case `(ty, other)` ids, parallel to `cases`.
    pub ids: Vec<(TypeId, TypeId)>,
}

/// Number of tests per suite in the paper.
pub const PAPER_SUITE_SIZE: usize = 324;

/// Builds a suite of `count` cases with sizes swept from small to large
/// (deterministic in `seed`).
pub fn build_suite(kind: SuiteKind, count: usize, seed: u64) -> Suite {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cases = Vec::with_capacity(count);
    let mut session = Session::new();
    let mut ids = Vec::with_capacity(count);
    for i in 0..count {
        // Sweep target sizes roughly linearly from ~4 to ~130 AlgST nodes,
        // matching the x-range of the paper's plots.
        let size = 4 + (i * 126) / count.max(1);
        let cfg = GenConfig::sized(size);
        let instance = generate_instance(&mut rng, &cfg);
        let other = match kind {
            SuiteKind::Equivalent => {
                equivalent_variant(&mut rng, &instance.decls, &instance.ty, Kind::Value, 10)
            }
            SuiteKind::NonEquivalent => {
                let mutant = nonequivalent_mutant(&mut rng, &instance.ty)
                    .expect("generated instances always have a mutable position");
                // Obfuscate the mutant with equivalence-preserving
                // rewrites so the comparison is not a trivial prefix
                // mismatch.
                equivalent_variant(&mut rng, &instance.decls, &mutant, Kind::Value, 6)
            }
        };
        let case = TestCase {
            instance,
            other,
            equivalent: kind == SuiteKind::Equivalent,
        };
        ids.push(case.intern_into(&mut session));
        cases.push(case);
    }
    Suite {
        kind,
        cases,
        session,
        ids,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use algst_core::Session;

    #[test]
    fn equivalent_suite_is_equivalent() {
        let mut suite = build_suite(SuiteKind::Equivalent, 40, 1);
        let mut s = suite.session.sibling();
        for case in &suite.cases {
            assert!(s.equivalent(&case.instance.ty, &case.other));
        }
        drop(s);
        // The suite's own session answers the same at the id level.
        for &(a, b) in &suite.ids {
            assert!(suite.session.equivalent_ids(a, b));
        }
    }

    #[test]
    fn nonequivalent_suite_is_not() {
        let suite = build_suite(SuiteKind::NonEquivalent, 40, 2);
        let mut s = Session::new();
        for case in &suite.cases {
            assert!(!s.equivalent(&case.instance.ty, &case.other));
        }
    }

    #[test]
    fn interned_ids_agree_with_ground_truth() {
        for (kind, seed) in [(SuiteKind::Equivalent, 4), (SuiteKind::NonEquivalent, 5)] {
            let mut suite = build_suite(kind, 25, seed);
            for (case, &(a, b)) in suite.cases.iter().zip(&suite.ids) {
                assert_eq!(
                    suite.session.equivalent_ids(a, b),
                    case.equivalent,
                    "id-level verdict disagrees on {} vs {}",
                    case.instance.ty,
                    case.other,
                );
            }
        }
    }

    #[test]
    fn sizes_sweep_upward() {
        let suite = build_suite(SuiteKind::Equivalent, 30, 3);
        let first: usize = suite.cases[..5].iter().map(|c| c.node_count()).sum();
        let last: usize = suite.cases[25..].iter().map(|c| c.node_count()).sum();
        assert!(last > first, "sizes should grow: {first} vs {last}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = build_suite(SuiteKind::Equivalent, 10, 9);
        let b = build_suite(SuiteKind::Equivalent, 10, 9);
        for (x, y) in a.cases.iter().zip(&b.cases) {
            assert_eq!(x.instance.ty, y.instance.ty);
            assert_eq!(x.other, y.other);
        }
    }
}
