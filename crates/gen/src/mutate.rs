//! Producing equivalent partners and non-equivalent mutants for a
//! generated instance (paper Section 5).
//!
//! * Equivalent: "For each instance T, we randomly apply the properties of
//!   normalization to generate an equivalent AlgST type T′" — we take a
//!   random walk over the declarative conversion rules of Fig. 2
//!   ([`algst_core::conversion`]), each step of which preserves
//!   equivalence by Theorem 1.
//! * Non-equivalent: "obtained from each T by either introducing an
//!   additional quantifier, or changing a sub-part of the type" — we
//!   insert a `∀`, swap a built-in base type, flip an `End`, or flip the
//!   direction of a message, always at a behaviourally reachable position.

use algst_core::conversion::one_step_rewrites;
use algst_core::kind::Kind;
use algst_core::protocol::Declarations;
use algst_core::symbol::Symbol;
use algst_core::types::{BaseType, Type};
use rand::Rng;
use std::sync::Arc;

/// Applies `steps` random conversion-rule rewrites to `ty` (expected kind
/// `kind` at the root), yielding an equivalent type.
pub fn equivalent_variant(
    rng: &mut impl Rng,
    decls: &Declarations,
    ty: &Type,
    kind: Kind,
    steps: usize,
) -> Type {
    let mut current = ty.clone();
    for _ in 0..steps {
        let options = one_step_rewrites(decls, &[], &current, kind);
        if options.is_empty() {
            break;
        }
        current = options[rng.gen_range(0..options.len())].clone();
    }
    current
}

/// The kinds of structural damage [`nonequivalent_mutant`] can apply.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum Damage {
    InsertQuantifier,
    SwapBase,
    FlipEnd,
    FlipDirection,
}

/// Produces a type that is *not* equivalent to `ty`, by one structural
/// mutation. Returns `None` only for types with no mutable position
/// (does not happen for generated instances, whose spines are non-empty).
pub fn nonequivalent_mutant(rng: &mut impl Rng, ty: &Type) -> Option<Type> {
    let choices = [
        Damage::InsertQuantifier,
        Damage::SwapBase,
        Damage::FlipEnd,
        Damage::FlipDirection,
    ];
    // Try damages in a random rotation until one applies.
    let start = rng.gen_range(0..choices.len());
    for i in 0..choices.len() {
        let damage = choices[(start + i) % choices.len()];
        if let Some(t) = apply(rng, ty, damage) {
            return Some(t);
        }
    }
    None
}

fn apply(rng: &mut impl Rng, ty: &Type, damage: Damage) -> Option<Type> {
    match damage {
        Damage::InsertQuantifier => {
            // An extra (vacuous) quantifier changes the type: ∀z:S.T ≢ T.
            Some(Type::forall(
                Symbol::intern("zq"),
                Kind::Session,
                ty.clone(),
            ))
        }
        Damage::SwapBase => {
            let count = count_positions(ty, &is_base);
            if count == 0 {
                return None;
            }
            let target = rng.gen_range(0..count);
            let replacement = rng.gen_range(0..3);
            Some(rewrite_nth(ty, &is_base, target, &mut |t| {
                let Type::Base(b) = t else { unreachable!() };
                Type::Base(swap_base(*b, replacement))
            }))
        }
        Damage::FlipEnd => {
            let count = count_positions(ty, &is_end);
            if count == 0 {
                return None;
            }
            let target = rng.gen_range(0..count);
            Some(rewrite_nth(ty, &is_end, target, &mut |t| match t {
                Type::EndIn => Type::EndOut,
                Type::EndOut => Type::EndIn,
                _ => unreachable!(),
            }))
        }
        Damage::FlipDirection => {
            let count = count_positions(ty, &is_msg);
            if count == 0 {
                return None;
            }
            let target = rng.gen_range(0..count);
            Some(rewrite_nth(ty, &is_msg, target, &mut |t| match t {
                Type::In(p, s) => Type::Out(p.clone(), s.clone()),
                Type::Out(p, s) => Type::In(p.clone(), s.clone()),
                _ => unreachable!(),
            }))
        }
    }
}

fn is_base(t: &Type) -> bool {
    matches!(t, Type::Base(_))
}

fn is_end(t: &Type) -> bool {
    matches!(t, Type::EndIn | Type::EndOut)
}

fn is_msg(t: &Type) -> bool {
    matches!(t, Type::In(..) | Type::Out(..))
}

fn swap_base(b: BaseType, pick: usize) -> BaseType {
    use BaseType::*;
    let others: [BaseType; 3] = match b {
        Int => [Bool, Char, Str],
        Bool => [Int, Char, Str],
        Char => [Int, Bool, Str],
        Str => [Int, Bool, Char],
    };
    others[pick % 3]
}

/// Counts positions in `ty` (outside protocol declarations — mutations
/// apply to the session type only) satisfying `pred`. Pre-order.
fn count_positions(ty: &Type, pred: &dyn Fn(&Type) -> bool) -> usize {
    let mut n = usize::from(pred(ty));
    for c in children(ty) {
        n += count_positions(c, pred);
    }
    n
}

fn children(ty: &Type) -> Vec<&Type> {
    match ty {
        Type::Unit | Type::Base(_) | Type::Var(_) | Type::EndIn | Type::EndOut => vec![],
        Type::Arrow(a, b) | Type::Pair(a, b) | Type::In(a, b) | Type::Out(a, b) => {
            vec![a, b]
        }
        Type::Forall(_, _, t) | Type::Dual(t) | Type::Neg(t) => vec![t],
        Type::Proto(_, args) | Type::Data(_, args) => args.iter().collect(),
    }
}

/// Rewrites the `target`-th (pre-order) position satisfying `pred`.
fn rewrite_nth(
    ty: &Type,
    pred: &dyn Fn(&Type) -> bool,
    target: usize,
    f: &mut dyn FnMut(&Type) -> Type,
) -> Type {
    fn go(
        ty: &Type,
        pred: &dyn Fn(&Type) -> bool,
        seen: &mut usize,
        target: usize,
        f: &mut dyn FnMut(&Type) -> Type,
    ) -> Type {
        if pred(ty) {
            if *seen == target {
                *seen += 1;
                return f(ty);
            }
            *seen += 1;
        }
        match ty {
            Type::Unit | Type::Base(_) | Type::Var(_) | Type::EndIn | Type::EndOut => ty.clone(),
            Type::Arrow(a, b) => Type::Arrow(
                Arc::new(go(a, pred, seen, target, f)),
                Arc::new(go(b, pred, seen, target, f)),
            ),
            Type::Pair(a, b) => Type::Pair(
                Arc::new(go(a, pred, seen, target, f)),
                Arc::new(go(b, pred, seen, target, f)),
            ),
            Type::In(a, b) => Type::In(
                Arc::new(go(a, pred, seen, target, f)),
                Arc::new(go(b, pred, seen, target, f)),
            ),
            Type::Out(a, b) => Type::Out(
                Arc::new(go(a, pred, seen, target, f)),
                Arc::new(go(b, pred, seen, target, f)),
            ),
            Type::Forall(v, k, t) => Type::Forall(*v, *k, Arc::new(go(t, pred, seen, target, f))),
            Type::Dual(t) => Type::Dual(Arc::new(go(t, pred, seen, target, f))),
            Type::Neg(t) => Type::Neg(Arc::new(go(t, pred, seen, target, f))),
            Type::Proto(n, args) => Type::Proto(
                *n,
                args.iter().map(|a| go(a, pred, seen, target, f)).collect(),
            ),
            Type::Data(n, args) => Type::Data(
                *n,
                args.iter().map(|a| go(a, pred, seen, target, f)).collect(),
            ),
        }
    }
    go(ty, pred, &mut 0, target, f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{generate_instance, GenConfig};
    use algst_core::Session;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn equivalent_variants_are_equivalent() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut s = Session::new();
        for i in 0..40 {
            let inst = generate_instance(&mut rng, &GenConfig::sized(10 + i));
            let variant = equivalent_variant(&mut rng, &inst.decls, &inst.ty, Kind::Value, 8);
            assert!(
                s.equivalent(&inst.ty, &variant),
                "walk broke equivalence:\n  {}\n  {}",
                inst.ty,
                variant
            );
        }
    }

    #[test]
    fn variants_usually_differ_syntactically() {
        let mut rng = StdRng::seed_from_u64(12);
        let mut changed = 0;
        for i in 0..20 {
            let inst = generate_instance(&mut rng, &GenConfig::sized(20 + i));
            let variant = equivalent_variant(&mut rng, &inst.decls, &inst.ty, Kind::Value, 8);
            if variant != inst.ty {
                changed += 1;
            }
        }
        assert!(changed >= 15, "only {changed}/20 walks moved");
    }

    #[test]
    fn mutants_are_not_equivalent() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut s = Session::new();
        for i in 0..60 {
            let inst = generate_instance(&mut rng, &GenConfig::sized(8 + i));
            let mutant = nonequivalent_mutant(&mut rng, &inst.ty).expect("mutable");
            assert!(
                !s.equivalent(&inst.ty, &mutant),
                "mutation preserved equivalence:\n  {}\n  {}",
                inst.ty,
                mutant
            );
        }
    }

    #[test]
    fn each_damage_kind_applies_somewhere() {
        let ty = Type::input(
            Type::int(),
            Type::output(Type::neg(Type::bool()), Type::EndOut),
        );
        let mut rng = StdRng::seed_from_u64(5);
        let mut s = Session::new();
        for damage in [
            Damage::InsertQuantifier,
            Damage::SwapBase,
            Damage::FlipEnd,
            Damage::FlipDirection,
        ] {
            let m = apply(&mut rng, &ty, damage).expect("applies");
            assert!(!s.equivalent(&ty, &m), "{damage:?} kept equivalence: {m}");
        }
    }
}
