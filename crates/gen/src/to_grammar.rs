//! Direct translation of AlgST benchmark instances into simple grammars,
//! bypassing the intermediate [`freest::CfType`] tree.
//!
//! Two differences to [`mod@crate::to_freest`] (which follows the paper's
//! Fig. 9 presentation for display purposes):
//!
//! 1. **Linear space.** Inlining protocols at every use site duplicates
//!    the referenced translation, so the tree is exponential in the depth
//!    of protocol-reference chains. FreeST itself never materializes that
//!    tree — its checker builds a grammar with recursion variables bound
//!    in an environment. We do the same: each (protocol, direction) pair
//!    becomes one nonterminal.
//!
//! 2. **No pre-normalization.** Normalizing before translating would hand
//!    the baseline AlgST's linear-time algorithm for free: the paper's
//!    equivalent test pairs differ by `Dual`/`-` manipulations (Fig. 2),
//!    and after `nrm⁺` both sides become syntactically identical. Instead
//!    `Dual S` is rendered *structurally*: every nonterminal reachable
//!    from `S`'s word is mirrored by a fresh dualized nonterminal
//!    (flipped actions, dualized successors). Bisimilarity must then do
//!    real equirecursive work to identify `Dual (Dual S)` with `S` — the
//!    very work AlgST's nominal check avoids.
//!
//! Negation `-T` has no FreeST counterpart at all (the paper restricts it
//! to constructor-argument positions and translates "depending on whether
//! it appears in a sending or receiving context"), so it flips the
//! translation direction, as in `to_freest`.

use crate::to_freest::UntranslatableError;
use algst_core::protocol::Declarations;
use algst_core::symbol::Symbol;
use algst_core::types::{BaseType, Type};
use algst_core::Session;
use freest::grammar::{Action, Grammar, NonTerm, Word};
use freest::{CfType, Dir, Payload};
use std::collections::HashMap;

/// Translates a session type over `decls` into a word of `g`.
///
/// # Errors
/// Fails on constructs outside the benchmark fragment (parameterized
/// protocols, function types in message positions).
pub fn to_grammar(
    session: &mut Session,
    decls: &Declarations,
    ty: &Type,
    g: &mut Grammar,
) -> Result<Word, UntranslatableError> {
    let mut tr = GrammarTranslator {
        session,
        decls,
        g,
        protocols: HashMap::new(),
        in_progress: Vec::new(),
        duals: HashMap::new(),
        bound: Vec::new(),
    };
    tr.session(ty)
}

struct GrammarTranslator<'d, 'g, 's> {
    /// Value payloads are canonicalized (normalized) through this
    /// session, so repeated payloads across a suite hit its memo.
    session: &'s mut Session,
    decls: &'d Declarations,
    g: &'g mut Grammar,
    /// Finished (protocol, direction) words.
    protocols: HashMap<(Symbol, Dir), Word>,
    /// Cyclic references resolve to the nonterminal being defined.
    in_progress: Vec<((Symbol, Dir), NonTerm)>,
    /// Structural dualization: nonterminal → its mirrored dual.
    duals: HashMap<NonTerm, NonTerm>,
    /// ∀-bound variables, canonically renamed by depth.
    bound: Vec<(Symbol, String)>,
}

impl GrammarTranslator<'_, '_, '_> {
    fn session(&mut self, ty: &Type) -> Result<Word, UntranslatableError> {
        Ok(match ty {
            Type::EndOut => self.g.word_of(&CfType::End(Dir::Out)),
            Type::EndIn => self.g.word_of(&CfType::End(Dir::In)),
            Type::Var(v) => {
                let name = self.var_name(*v);
                self.g.word_of(&CfType::var(name))
            }
            // Structural duality: mirror the translated word.
            Type::Dual(inner) => {
                let w = self.session(inner)?;
                w.iter().map(|&x| self.dual_nonterm(x)).collect()
            }
            Type::In(p, s) => {
                let mut w = self.message(p, Dir::In)?;
                w.extend(self.session(s)?);
                w
            }
            Type::Out(p, s) => {
                let mut w = self.message(p, Dir::Out)?;
                w.extend(self.session(s)?);
                w
            }
            Type::Forall(v, _, body) => {
                let canon = format!("$bv{}", self.bound.len());
                self.bound.push((*v, canon));
                let inner = self.session(body);
                self.bound.pop();
                let x = self.g.fresh_nonterm();
                self.g.set_productions(x, vec![(Action::Forall, inner?)]);
                vec![x]
            }
            other => {
                return Err(UntranslatableError(format!(
                    "unsupported session construct: {other}"
                )))
            }
        })
    }

    fn var_name(&self, v: Symbol) -> String {
        self.bound
            .iter()
            .rev()
            .find(|(b, _)| *b == v)
            .map(|(_, c)| c.clone())
            .unwrap_or_else(|| v.as_str().to_owned())
    }

    /// The mirrored dual of a nonterminal: flipped action, dualized
    /// successors. Cycles are tied through the memo table; repeated
    /// dualization builds fresh mirror layers (no involution shortcut —
    /// discovering `Dual (Dual S) ≈ S` is the checker's job).
    fn dual_nonterm(&mut self, x: NonTerm) -> NonTerm {
        if x == Grammar::DEAD {
            return Grammar::DEAD;
        }
        if let Some(&y) = self.duals.get(&x) {
            return y;
        }
        let y = self.g.fresh_nonterm();
        self.duals.insert(x, y);
        let prods: Vec<(Action, Word)> = self
            .g
            .productions(x)
            .to_vec()
            .into_iter()
            .map(|(a, w)| {
                let a = match a {
                    Action::End(d) => Action::End(d.flip()),
                    Action::Msg(d, p) => Action::Msg(d.flip(), p),
                    Action::Choice(d, l) => Action::Choice(d.flip(), l),
                    Action::Var(v) => Action::Var(toggle_dual(&v)),
                    Action::Forall => Action::Forall,
                };
                let w = w.iter().map(|&z| self.dual_nonterm(z)).collect();
                (a, w)
            })
            .collect();
        self.g.set_productions(y, prods);
        y
    }

    fn message(&mut self, payload: &Type, dir: Dir) -> Result<Word, UntranslatableError> {
        match payload {
            Type::Neg(inner) => self.message(inner, dir.flip()),
            Type::Proto(name, args) => {
                if !args.is_empty() {
                    return Err(UntranslatableError(format!(
                        "parameterized protocol {name}"
                    )));
                }
                self.protocol(*name, dir)
            }
            other => {
                let p = self.value_payload(other)?;
                Ok(self.g.word_of(&CfType::Msg(dir, p)))
            }
        }
    }

    fn protocol(&mut self, name: Symbol, dir: Dir) -> Result<Word, UntranslatableError> {
        if let Some(w) = self.protocols.get(&(name, dir)) {
            return Ok(w.clone());
        }
        if let Some((_, x)) = self.in_progress.iter().find(|(key, _)| *key == (name, dir)) {
            return Ok(vec![*x]);
        }
        let decl = self
            .decls
            .protocol(name)
            .ok_or_else(|| UntranslatableError(format!("unknown protocol {name}")))?
            .clone();
        if decl.ctors.len() == 1 {
            // Tagless (Fig. 9): a plain word; recursion through a tagless
            // protocol would be unguarded, so reject it.
            self.in_progress.push(((name, dir), Grammar::DEAD));
            let mut w = Word::new();
            let result = (|| {
                for arg in &decl.ctors[0].args {
                    let seg = self.message(arg, dir)?;
                    if seg.as_slice() == [Grammar::DEAD] {
                        return Err(UntranslatableError(format!(
                            "unguarded recursion through single-constructor protocol {name}"
                        )));
                    }
                    w.extend(seg);
                }
                Ok(())
            })();
            self.in_progress.pop();
            result?;
            self.protocols.insert((name, dir), w.clone());
            return Ok(w);
        }

        // Multi-constructor: one nonterminal; cyclic references resolve to
        // it while its productions are being built.
        let x = self.g.fresh_nonterm();
        self.in_progress.push(((name, dir), x));
        let prods = (|| {
            let mut prods = Vec::with_capacity(decl.ctors.len());
            for c in &decl.ctors {
                let mut w = Word::new();
                for arg in &c.args {
                    w.extend(self.message(arg, dir)?);
                }
                prods.push((Action::Choice(dir, c.tag.as_str().to_owned()), w));
            }
            Ok(prods)
        })();
        self.in_progress.pop();
        let prods = prods?;
        self.g.set_productions(x, prods);
        self.protocols.insert((name, dir), vec![x]);
        Ok(vec![x])
    }

    /// Value payloads become part of the `Msg` *action* and are compared
    /// structurally by the grammar, so they are canonicalized first —
    /// this mirrors FreeST, where payloads are functional types with
    /// their own (cheap) equivalence, distinct from the spine's
    /// equirecursive reasoning.
    fn value_payload(&mut self, ty: &Type) -> Result<Payload, UntranslatableError> {
        // Normalize through the session: repeated payloads across a
        // suite (protocol argument types recur constantly) hit the memo.
        let n = self.session.normalize(ty);
        self.canonical_payload(&n)
    }

    fn canonical_payload(&mut self, ty: &Type) -> Result<Payload, UntranslatableError> {
        Ok(match ty {
            Type::Unit => Payload::Unit,
            Type::Base(BaseType::Int) => Payload::Int,
            Type::Base(BaseType::Bool) => Payload::Bool,
            Type::Base(BaseType::Char) => Payload::Char,
            Type::Base(BaseType::Str) => Payload::Str,
            Type::Var(v) => Payload::Var(self.var_name(*v)),
            Type::Pair(a, b) => Payload::Pair(
                Box::new(self.canonical_payload(a)?),
                Box::new(self.canonical_payload(b)?),
            ),
            Type::EndIn => Payload::Session(Box::new(CfType::End(Dir::In))),
            Type::EndOut => Payload::Session(Box::new(CfType::End(Dir::Out))),
            other => return Err(UntranslatableError(format!("unsupported payload: {other}"))),
        })
    }
}

/// `dual_x ↔ x` for variable actions.
fn toggle_dual(name: &str) -> String {
    match name.strip_prefix("dual_") {
        Some(rest) => rest.to_owned(),
        None => format!("dual_{name}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{generate_instance, GenConfig};
    use crate::mutate::{equivalent_variant, nonequivalent_mutant};
    use algst_core::kind::Kind;
    use freest::{bisimilar, BisimResult};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn verdict(decls: &Declarations, a: &Type, b: &Type, budget: u64) -> BisimResult {
        let mut s = Session::new();
        let mut g = Grammar::new();
        let wa = to_grammar(&mut s, decls, a, &mut g).expect("translatable");
        let wb = to_grammar(&mut s, decls, b, &mut g).expect("translatable");
        bisimilar(&mut g, &wa, &wb, budget)
    }

    #[test]
    fn dual_is_rendered_structurally() {
        // Dual S produces *different* nonterminals than the pushed-down
        // form — the words differ syntactically but are bisimilar.
        let d = Declarations::new();
        let s = Type::output(Type::int(), Type::input(Type::bool(), Type::EndOut));
        let dual = Type::dual(s.clone());
        let pushed = Type::input(Type::int(), Type::output(Type::bool(), Type::EndIn));
        let mut s = Session::new();
        let mut g = Grammar::new();
        let w_dual = to_grammar(&mut s, &d, &dual, &mut g).unwrap();
        let w_pushed = to_grammar(&mut s, &d, &pushed, &mut g).unwrap();
        assert_ne!(w_dual, w_pushed, "structural rendering must not normalize");
        assert_eq!(
            bisimilar(&mut g, &w_dual, &w_pushed, 100_000),
            BisimResult::Equivalent
        );
    }

    #[test]
    fn double_dual_requires_real_work_but_holds() {
        let d = Declarations::new();
        let s = Type::output(Type::int(), Type::EndOut);
        let dd = Type::dual(Type::dual(s.clone()));
        let mut sess = Session::new();
        let mut g = Grammar::new();
        let w1 = to_grammar(&mut sess, &d, &s, &mut g).unwrap();
        let w2 = to_grammar(&mut sess, &d, &dd, &mut g).unwrap();
        assert_ne!(w1, w2);
        assert_eq!(
            bisimilar(&mut g, &w1, &w2, 100_000),
            BisimResult::Equivalent
        );
    }

    #[test]
    fn suite_verdicts_on_generated_instances() {
        let mut rng = StdRng::seed_from_u64(5150);
        for i in 0..25 {
            let mut cfg = GenConfig::sized(6 + 3 * i);
            cfg.deep_norms = 0.0; // keep the check cheap here
            let inst = generate_instance(&mut rng, &cfg);
            let variant = equivalent_variant(&mut rng, &inst.decls, &inst.ty, Kind::Value, 8);
            assert_eq!(
                verdict(&inst.decls, &inst.ty, &variant, 5_000_000),
                BisimResult::Equivalent,
                "equivalent pair judged wrong for {}",
                inst.ty
            );
            let mutant = nonequivalent_mutant(&mut rng, &inst.ty).expect("mutable");
            assert_eq!(
                verdict(&inst.decls, &inst.ty, &mutant, 5_000_000),
                BisimResult::NotEquivalent,
                "mutant pair judged wrong for {}",
                inst.ty
            );
        }
    }

    #[test]
    fn deep_chains_stay_linear_in_grammar_size() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut cfg = GenConfig::sized(120);
        cfg.deep_norms = 1.0;
        let inst = generate_instance(&mut rng, &cfg);
        let mut s = Session::new();
        let mut g = Grammar::new();
        let w = to_grammar(&mut s, &inst.decls, &inst.ty, &mut g).expect("translatable");
        assert!(
            g.len() < 4096,
            "grammar should be small, got {} nonterminals",
            g.len()
        );
        assert!(!w.is_empty());
    }

    #[test]
    fn directions_are_distinct() {
        use algst_core::protocol::{Ctor, ProtocolDecl};
        let mut d = Declarations::new();
        d.add_protocol(ProtocolDecl {
            name: Symbol::intern("TwoDirG"),
            params: vec![],
            ctors: vec![
                Ctor::new("TDGo", vec![Type::int(), Type::proto("TwoDirG", vec![])]),
                Ctor::new("TDHalt", vec![]),
            ],
        })
        .unwrap();
        d.validate().unwrap();
        let send = Type::output(Type::proto("TwoDirG", vec![]), Type::EndOut);
        let recv = Type::input(Type::proto("TwoDirG", vec![]), Type::EndOut);
        assert_eq!(
            verdict(&d, &send, &recv, 100_000),
            BisimResult::NotEquivalent
        );
    }

    #[test]
    fn forall_alpha_equivalence_via_canonical_names() {
        let d = Declarations::new();
        let mk = |v: &str| Type::forall(v, Kind::Session, Type::output(Type::int(), Type::var(v)));
        assert_eq!(
            verdict(&d, &mk("a"), &mk("b"), 100_000),
            BisimResult::Equivalent
        );
        // An extra quantifier is observable.
        let extra = Type::forall("c", Kind::Session, mk("a"));
        assert_eq!(
            verdict(&d, &extra, &mk("a"), 100_000),
            BisimResult::NotEquivalent
        );
    }

    #[test]
    fn dual_variable_tails_are_nominal() {
        let d = Declarations::new();
        let a = Type::dual(Type::var("sv"));
        let b = Type::var("sv");
        assert_eq!(verdict(&d, &a, &b, 10_000), BisimResult::NotEquivalent);
        // Dual (Dual sv) ≈ sv — through two mirror layers.
        let dd = Type::dual(Type::dual(Type::var("sv")));
        assert_eq!(verdict(&d, &dd, &b, 10_000), BisimResult::Equivalent);
    }
}
