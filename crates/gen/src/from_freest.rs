//! Embedding of (linear, monomorphic) context-free session types into
//! AlgST (paper Appendix E, Fig. 13).
//!
//! ```text
//! L Skip M        = ε
//! L !T M          = ⌜T⌝            L ?T M = -⌜T⌝
//! L T;U M         = L T M L U M
//! L ⊕{l: Tl} M    = X    where protocol X = { l L Tl M }
//! L &{l: Tl} M    = -X   where protocol X = { l L dual Tl M }
//! L rec x.T M     = X    where protocol X = UnfoldX L T M
//! J T : Slin K    = !X_T.End!   where protocol X_T = X_T L T M
//! ```
//!
//! The embedding is *generative*: each syntactic occurrence of a choice
//! or recursion mints a fresh protocol. As the paper discusses, the
//! isorecursive reading inserts explicit `UnfoldX` messages, so the
//! embedded type is related to the original by an adapter process
//! (App. E, Tables 1–3), not by action-for-action equality.

use algst_core::protocol::{Ctor, Declarations, ProtocolDecl};
use algst_core::symbol::Symbol;
use algst_core::types::Type;
use freest::{CfType, Dir, Payload};
use std::collections::HashMap;
use std::fmt;

/// CFST constructs outside the embeddable (monomorphic) fragment.
#[derive(Clone, Debug)]
pub struct UnembeddableError(pub String);

impl fmt::Display for UnembeddableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot embed into AlgST: {}", self.0)
    }
}

impl std::error::Error for UnembeddableError {}

/// Result of an embedding: fresh protocol declarations plus the AlgST
/// session type `!X_T.End!`.
#[derive(Debug)]
pub struct Embedded {
    pub decls: Declarations,
    pub ty: Type,
}

/// Embeds a closed, contractive CFST into AlgST per Fig. 13.
pub fn from_freest(t: &CfType) -> Result<Embedded, UnembeddableError> {
    if !t.is_contractive() {
        return Err(UnembeddableError("type is not contractive".into()));
    }
    let mut emb = Embedder {
        decls: Declarations::new(),
        fresh: 0,
        rec_vars: HashMap::new(),
    };
    let segments = emb.segments(t)?;
    // J T K = !X_T.End! where protocol X_T = X_T ⟨segments⟩.
    let top = emb.fresh_name("XT");
    let tag = emb.fresh_name("MkXT");
    emb.decls
        .add_protocol(ProtocolDecl {
            name: top,
            params: vec![],
            ctors: vec![Ctor {
                tag,
                args: segments,
            }],
        })
        .map_err(|e| UnembeddableError(e.to_string()))?;
    emb.decls
        .validate()
        .map_err(|e| UnembeddableError(e.to_string()))?;
    Ok(Embedded {
        decls: emb.decls,
        ty: Type::output(Type::proto(top, vec![]), Type::EndOut),
    })
}

struct Embedder {
    decls: Declarations,
    fresh: u32,
    /// `rec`-bound variables in scope, mapped to their protocol name.
    rec_vars: HashMap<String, Symbol>,
}

impl Embedder {
    fn fresh_name(&mut self, prefix: &str) -> Symbol {
        self.fresh += 1;
        Symbol::fresh(&format!("{prefix}{}", self.fresh))
    }

    /// `L T M`: the sequence of protocol-kinded segments of `T`.
    fn segments(&mut self, t: &CfType) -> Result<Vec<Type>, UnembeddableError> {
        Ok(match t {
            CfType::Skip => vec![],
            CfType::Seq(a, b) => {
                let mut out = self.segments(a)?;
                out.extend(self.segments(b)?);
                out
            }
            CfType::Msg(Dir::Out, p) => vec![self.payload(p)?],
            CfType::Msg(Dir::In, p) => vec![Type::neg(self.payload(p)?)],
            CfType::End(d) => {
                // End absorbs: embed as a dedicated zero-field terminal
                // protocol transmission followed by nothing. We model it
                // as transmitting a Unit in the End's direction; the
                // session-level End of the embedding (J·K) closes the
                // channel.
                let dirty = match d {
                    Dir::Out => Type::Unit,
                    Dir::In => Type::neg(Type::Unit),
                };
                vec![dirty]
            }
            CfType::Choice(dir, branches) => {
                let name = self.fresh_name("XC");
                let mut ctors = Vec::with_capacity(branches.len());
                for (label, cont) in branches {
                    let body = match dir {
                        Dir::Out => cont.clone(),
                        // & branches embed the *dual* continuation under
                        // a top-level negation (Fig. 13).
                        Dir::In => dual_cf(cont),
                    };
                    ctors.push(Ctor {
                        tag: self.fresh_name(&format!("{label}_")),
                        args: self.segments(&body)?,
                    });
                }
                self.decls
                    .add_protocol(ProtocolDecl {
                        name,
                        params: vec![],
                        ctors,
                    })
                    .map_err(|e| UnembeddableError(e.to_string()))?;
                let head = Type::proto(name, vec![]);
                vec![match dir {
                    Dir::Out => head,
                    Dir::In => Type::neg(head),
                }]
            }
            CfType::Rec(x, body) => {
                let name = self.fresh_name("XR");
                self.rec_vars.insert(x.clone(), name);
                let args = self.segments(body)?;
                self.rec_vars.remove(x);
                let tag = self.fresh_name(&format!("Unfold{}", self.fresh));
                self.decls
                    .add_protocol(ProtocolDecl {
                        name,
                        params: vec![],
                        ctors: vec![Ctor { tag, args }],
                    })
                    .map_err(|e| UnembeddableError(e.to_string()))?;
                vec![Type::proto(name, vec![])]
            }
            CfType::Var(x) => match self.rec_vars.get(x) {
                Some(name) => vec![Type::proto(*name, vec![])],
                None => {
                    return Err(UnembeddableError(format!(
                        "free variable {x} (only the monomorphic fragment embeds)"
                    )))
                }
            },
            CfType::Forall(..) => {
                return Err(UnembeddableError(
                    "polymorphic fragment not embedded (App. E treats it informally)".into(),
                ))
            }
        })
    }

    fn payload(&mut self, p: &Payload) -> Result<Type, UnembeddableError> {
        Ok(match p {
            Payload::Unit => Type::Unit,
            Payload::Int => Type::int(),
            Payload::Bool => Type::bool(),
            Payload::Char => Type::char(),
            Payload::Str => Type::string(),
            Payload::Pair(a, b) => Type::pair(self.payload(a)?, self.payload(b)?),
            Payload::Session(s) => match &**s {
                CfType::End(Dir::Out) => Type::EndOut,
                CfType::End(Dir::In) => Type::EndIn,
                other => {
                    return Err(UnembeddableError(format!(
                        "higher-order session payload {other}"
                    )))
                }
            },
            Payload::Var(v) => return Err(UnembeddableError(format!("polymorphic payload {v}"))),
        })
    }
}

/// The syntactic dual of a CFST: flips every direction.
pub fn dual_cf(t: &CfType) -> CfType {
    match t {
        CfType::Skip => CfType::Skip,
        CfType::End(d) => CfType::End(d.flip()),
        CfType::Msg(d, p) => CfType::Msg(d.flip(), p.clone()),
        CfType::Choice(d, bs) => CfType::Choice(
            d.flip(),
            bs.iter().map(|(l, t)| (l.clone(), dual_cf(t))).collect(),
        ),
        CfType::Seq(a, b) => CfType::seq(dual_cf(a), dual_cf(b)),
        CfType::Rec(x, body) => CfType::rec(x.clone(), dual_cf(body)),
        CfType::Var(x) => CfType::var(x.clone()),
        CfType::Forall(x, body) => CfType::forall(x.clone(), dual_cf(body)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use algst_core::kind::Kind;
    use algst_core::kindcheck::KindCtx;

    fn embeds(t: &CfType) -> Embedded {
        let e = from_freest(t).unwrap_or_else(|err| panic!("cannot embed {t}: {err}"));
        // Every embedding must be well-kinded.
        let mut ctx = KindCtx::new(&e.decls);
        ctx.check(&e.ty, Kind::Session)
            .unwrap_or_else(|err| panic!("ill-kinded embedding of {t}: {err}"));
        e
    }

    #[test]
    fn message_embeds_as_promoted_payload() {
        let e = embeds(&CfType::Msg(Dir::Out, Payload::Int));
        // !XT.End! with protocol XT = MkXT Int
        let Type::Out(payload, _) = &e.ty else {
            panic!()
        };
        let Type::Proto(name, _) = &**payload else {
            panic!()
        };
        let decl = e.decls.protocol(*name).unwrap();
        assert_eq!(decl.ctors.len(), 1);
        assert_eq!(decl.ctors[0].args, vec![Type::int()]);
    }

    #[test]
    fn input_embeds_with_negation() {
        let e = embeds(&CfType::Msg(Dir::In, Payload::Int));
        let Type::Out(payload, _) = &e.ty else {
            panic!()
        };
        let Type::Proto(name, _) = &**payload else {
            panic!()
        };
        let decl = e.decls.protocol(*name).unwrap();
        assert_eq!(decl.ctors[0].args, vec![Type::neg(Type::int())]);
    }

    #[test]
    fn choice_embeds_as_protocol() {
        let t = CfType::choice(
            Dir::Out,
            vec![
                ("A".into(), CfType::Msg(Dir::Out, Payload::Int)),
                ("B".into(), CfType::Skip),
            ],
        );
        let e = embeds(&t);
        // Two protocols: the choice and the top wrapper.
        assert_eq!(e.decls.protocols().count(), 2);
        let choice = e
            .decls
            .protocols()
            .find(|p| p.ctors.len() == 2)
            .expect("choice protocol");
        assert_eq!(choice.ctors[0].args.len(), 1);
        assert!(choice.ctors[1].args.is_empty());
    }

    #[test]
    fn branch_embeds_negated_with_dualized_continuations() {
        let t = CfType::choice(
            Dir::In,
            vec![("A".into(), CfType::Msg(Dir::In, Payload::Int))],
        );
        let e = embeds(&t);
        let choice = e
            .decls
            .protocols()
            .find(|p| p.name.as_str().starts_with("XC"))
            .expect("choice protocol");
        // dual(?Int) = !Int embeds positively.
        assert_eq!(choice.ctors[0].args, vec![Type::int()]);
    }

    #[test]
    fn recursion_embeds_with_unfold_protocol() {
        let t = CfType::rec(
            "x",
            CfType::seq(CfType::Msg(Dir::Out, Payload::Int), CfType::var("x")),
        );
        let e = embeds(&t);
        let rec = e
            .decls
            .protocols()
            .find(|p| p.name.as_str().starts_with("XR"))
            .expect("rec protocol");
        // UnfoldX ⟨!Int, X⟩ — self-reference in the second slot.
        assert_eq!(rec.ctors[0].args.len(), 2);
        assert_eq!(rec.ctors[0].args[0], Type::int());
        assert_eq!(rec.ctors[0].args[1], Type::proto(rec.name, vec![]));
    }

    #[test]
    fn fig9_like_type_embeds() {
        let t = crate::to_freest_roundtrip_sample();
        embeds(&t);
    }

    #[test]
    fn free_variables_are_rejected() {
        assert!(from_freest(&CfType::var("loose")).is_err());
    }

    #[test]
    fn dual_is_involutory() {
        let t = crate::to_freest_roundtrip_sample();
        assert_eq!(dual_cf(&dual_cf(&t)), t);
    }
}
