//! Benchmark instances (paper Section 5, "Benchmarking").
//!
//! "An instance comprises a set of mutually recursive algebraic protocols
//! and a session type referring to them."

use algst_core::protocol::Declarations;
use algst_core::store::{StoreOps, TypeId};
use algst_core::types::Type;

/// One benchmark instance.
#[derive(Clone, Debug)]
pub struct Instance {
    /// The protocol declarations (unparameterized, possibly mutually
    /// recursive — the generator "avoids polymorphic and nested
    /// recursion" so that a FreeST translation exists).
    pub decls: Declarations,
    /// A session type referring to the protocols.
    pub ty: Type,
}

impl Instance {
    /// Number of AlgST AST nodes — the x-axis of the paper's Figure 10.
    /// Counts the session type plus all constructor argument types of the
    /// declared protocols.
    pub fn node_count(&self) -> usize {
        let decl_nodes: usize = self
            .decls
            .protocols()
            .map(|p| {
                p.ctors
                    .iter()
                    .map(|c| 1 + c.args.iter().map(Type::node_count).sum::<usize>())
                    .sum::<usize>()
            })
            .sum();
        self.ty.node_count() + decl_nodes
    }
}

/// A benchmark test case: a pair of types over shared declarations and
/// the ground-truth verdict.
#[derive(Clone, Debug)]
pub struct TestCase {
    pub instance: Instance,
    /// The comparison partner for `instance.ty`.
    pub other: Type,
    /// Whether the pair is equivalent by construction.
    pub equivalent: bool,
}

impl TestCase {
    pub fn node_count(&self) -> usize {
        self.instance.node_count()
    }

    /// Interns both sides of the pair into `store` — any [`StoreOps`]
    /// implementor: a private `TypeStore`, a `WorkerStore`, or a
    /// [`Session`](algst_core::Session) — returning `(ty, other)` ids.
    /// Suites built by [`crate::suite::build_suite`] carry these ids
    /// already ([`crate::suite::Suite::ids`]); use this for ad-hoc cases.
    pub fn intern_into<S: StoreOps>(&self, store: &mut S) -> (TypeId, TypeId) {
        (store.intern(&self.instance.ty), store.intern(&self.other))
    }
}
