//! # algst-gen
//!
//! The benchmark-instance machinery of the paper's Section 5:
//!
//! * [`generate`] — random instances (mutually recursive, unparameterized
//!   protocols plus a session type) in the FreeST-translatable fragment;
//! * [`program`] — random *whole programs* (client/server pairs over a
//!   channel, with known output) for the cross-layer conformance fuzzer;
//! * [`mutate`] — equivalent partners via random walks over the
//!   conversion rules (Fig. 2), and non-equivalent mutants via quantifier
//!   insertion / sub-part replacement;
//! * [`mod@to_freest`] — the AlgST → FreeST translation of Fig. 9 / App. E;
//! * [`from_freest`] — the reverse embedding of App. E Fig. 13;
//! * [`suite`] — assembly of the paper's 324-test suites for Fig. 10.

pub mod from_freest;
pub mod generate;
pub mod instance;
pub mod mutate;
pub mod program;
pub mod suite;
pub mod to_freest;
pub mod to_grammar;
pub mod workload;

pub use generate::{generate_instance, GenConfig};
pub use instance::{Instance, TestCase};
pub use mutate::{equivalent_variant, nonequivalent_mutant};
pub use program::{expected_output_of, generate_program, GenProgram, ProgConfig};
pub use suite::{build_suite, Suite, SuiteKind};
pub use to_freest::to_freest;
pub use to_grammar::to_grammar;

/// A mid-size sample type shared by tests: the Fig. 9 `Repeat` shape.
pub fn to_freest_roundtrip_sample() -> freest::CfType {
    use freest::{CfType, Dir, Payload};
    CfType::seq(
        CfType::rec(
            "r",
            CfType::choice(
                Dir::In,
                vec![
                    (
                        "More".into(),
                        CfType::seq(CfType::Msg(Dir::In, Payload::Int), CfType::var("r")),
                    ),
                    ("Quit".into(), CfType::Skip),
                ],
            ),
        ),
        CfType::seq(
            CfType::Msg(
                Dir::Out,
                Payload::Pair(
                    Box::new(Payload::Char),
                    Box::new(Payload::Session(Box::new(CfType::End(Dir::Out)))),
                ),
            ),
            CfType::End(Dir::Out),
        ),
    )
}
