//! Synthetic server load: request streams over the Fig. 10 suites.
//!
//! The Figure-10 suites measure one isolated query per pair. A *server*
//! sees something else: a long stream in which the same pairs recur
//! (every client of a protocol asks the same compatibility questions),
//! arguments arrive in either order, and cold pairs are interleaved with
//! warm ones. [`equiv_workload`] models that: it takes the suites'
//! ground-truth pairs and samples a request sequence with repetition
//! and random orientation — deterministic in the seed, so soak tests
//! and benchmarks are reproducible.

use crate::suite::{build_suite, Suite, SuiteKind};
use algst_core::types::Type;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One ground-truth pair a request can draw from.
#[derive(Clone, Debug)]
pub struct WorkloadPair {
    /// Index of the originating suite in the `suites` slice.
    pub suite: usize,
    /// Index of the case within that suite.
    pub case: usize,
    pub lhs: Type,
    pub rhs: Type,
    /// Ground-truth verdict (by construction of the suite).
    pub expected: bool,
}

/// One request of the stream: a pair reference, possibly flipped
/// (equivalence is symmetric, so the expected verdict is unchanged).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WorkloadRequest {
    pub pair: usize,
    pub flipped: bool,
}

/// A reproducible request stream over a set of suites.
#[derive(Clone, Debug)]
pub struct Workload {
    pub pairs: Vec<WorkloadPair>,
    pub requests: Vec<WorkloadRequest>,
}

impl Workload {
    /// The (lhs, rhs, expected) view of request `i`, flip applied.
    pub fn request(&self, i: usize) -> (&Type, &Type, bool) {
        let r = self.requests[i];
        let p = &self.pairs[r.pair];
        if r.flipped {
            (&p.rhs, &p.lhs, p.expected)
        } else {
            (&p.lhs, &p.rhs, p.expected)
        }
    }

    pub fn len(&self) -> usize {
        self.requests.len()
    }

    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Deals the request stream round-robin onto `clients` per-client
    /// streams (client `c` takes requests `c`, `c+clients`, …), each
    /// sharing the same ground-truth pair table. Round-robin keeps every
    /// client's stream a representative slice of the whole — the cold
    /// first-pass pairs are spread across clients instead of all landing
    /// on the first one — so concurrent-serving benchmarks drive each
    /// connection with the same warm/cold mix the sequential stream has.
    pub fn split_round_robin(&self, clients: usize) -> Vec<Workload> {
        let clients = clients.max(1);
        let mut streams: Vec<Vec<WorkloadRequest>> = vec![Vec::new(); clients];
        for (i, r) in self.requests.iter().enumerate() {
            streams[i % clients].push(*r);
        }
        streams
            .into_iter()
            .map(|requests| Workload {
                pairs: self.pairs.clone(),
                requests,
            })
            .collect()
    }
}

/// Builds a stream of `requests` equivalence queries over the pairs of
/// `suites`. Every pair appears at least once (while `requests` allows),
/// so verdicts can be checked exhaustively against the ground truth;
/// the rest of the stream re-samples pairs uniformly, flipping
/// orientation half the time — the warm-hit-dominated shape a
/// long-running service actually sees.
pub fn equiv_workload(suites: &[&Suite], requests: usize, seed: u64) -> Workload {
    let mut pairs = Vec::new();
    for (si, suite) in suites.iter().enumerate() {
        for (ci, case) in suite.cases.iter().enumerate() {
            pairs.push(WorkloadPair {
                suite: si,
                case: ci,
                lhs: case.instance.ty.clone(),
                rhs: case.other.clone(),
                expected: case.equivalent,
            });
        }
    }
    if pairs.is_empty() {
        // No cases to draw from (empty suites): an empty stream, not a
        // panic inside the sampler.
        return Workload {
            pairs,
            requests: Vec::new(),
        };
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut stream = Vec::with_capacity(requests);
    for i in 0..requests {
        let pair = if i < pairs.len() {
            i // first pass: cover every pair in order (the cold phase)
        } else {
            rng.gen_range(0..pairs.len())
        };
        let flipped = i >= pairs.len() && rng.gen_range(0..2) == 1;
        stream.push(WorkloadRequest { pair, flipped });
    }
    Workload {
        pairs,
        requests: stream,
    }
}

/// A session-syntax tag type unique to `i`: the binary digits of `i`
/// (LSB outermost) as a `!Int.` / `?Bool.` chain over `End!`. Distinct
/// `i` give non-equivalent (already normal) session types, the encoding
/// uses only constructs every wire renderer/parser round-trips, and
/// tags share suffixes so the arena grows O(1) nodes per tag.
fn fresh_tag(i: usize) -> Type {
    let mut t = Type::EndOut;
    let mut n = i;
    loop {
        t = if n & 1 == 0 {
            Type::output(Type::int(), t)
        } else {
            Type::input(Type::bool(), t)
        };
        n >>= 1;
        if n == 0 {
            break;
        }
    }
    t
}

/// A **cold-heavy** request stream: roughly `fresh_permille`/1000 of
/// the requests query a *never-seen-before* pair, modeling tenants that
/// keep bringing new protocols instead of replaying warm ones.
///
/// A fresh pair is a base pair with both sides wrapped in the same
/// `!(tag).·` guard, where an internal tag generator makes the tag unique per fresh
/// request. Wrapping both sides in an identical send of a non-`Neg`
/// payload preserves the verdict exactly — `nrm` distributes to
/// `!(nrm tag).nrm lhs` vs `!(nrm tag).nrm rhs`, which are equal iff the
/// normal forms of the originals are — so the stream stays fully
/// checkable against the suites' ground truth while forcing cold
/// interning and normalization on nearly every such request.
pub fn cold_heavy_workload(
    suites: &[&Suite],
    requests: usize,
    fresh_permille: u32,
    seed: u64,
) -> Workload {
    let base = equiv_workload(suites, 0, seed);
    let mut pairs = base.pairs;
    let base_len = pairs.len();
    if base_len == 0 {
        return Workload {
            pairs,
            requests: Vec::new(),
        };
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut stream = Vec::with_capacity(requests);
    let mut fresh = 0usize;
    for _ in 0..requests {
        if rng.gen_range(0..1000u32) < fresh_permille {
            let b = rng.gen_range(0..base_len);
            let tag = fresh_tag(fresh);
            fresh += 1;
            let p = pairs[b].clone();
            pairs.push(WorkloadPair {
                suite: p.suite,
                case: p.case,
                lhs: Type::output(tag.clone(), p.lhs),
                rhs: Type::output(tag, p.rhs),
                expected: p.expected,
            });
            stream.push(WorkloadRequest {
                pair: pairs.len() - 1,
                flipped: false,
            });
        } else {
            stream.push(WorkloadRequest {
                pair: rng.gen_range(0..base_len),
                flipped: rng.gen_range(0..2) == 1,
            });
        }
    }
    Workload {
        pairs,
        requests: stream,
    }
}

/// `tenants` independently-seeded suite pairs: tenant `t` gets its own
/// `(equivalent, non-equivalent)` protocol universe, so by construction
/// no type, verdict, or cache entry is shared across tenants. This is
/// the tenant-skew generator shared by the soak harness's churn
/// universe and the multi-tenant serving benchmark.
pub fn tenant_suites(tenants: usize, cases: usize, seed: u64) -> Vec<[Suite; 2]> {
    (0..tenants)
        .map(|t| {
            let s = seed + 101 * t as u64;
            [
                build_suite(SuiteKind::Equivalent, cases, s),
                build_suite(SuiteKind::NonEquivalent, cases, s + 1),
            ]
        })
        .collect()
}

/// Per-tenant request streams over [`tenant_suites`]: tenant `t`
/// replays `requests` queries drawn only from its own universe (its
/// stream is seeded apart from its neighbours', so streams differ even
/// though each is deterministic).
pub fn tenant_workloads(tenants: usize, cases: usize, requests: usize, seed: u64) -> Vec<Workload> {
    tenant_suites(tenants, cases, seed)
        .iter()
        .enumerate()
        .map(|(t, pair)| equiv_workload(&[&pair[0], &pair[1]], requests, seed + 17 * t as u64))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use algst_core::Session;

    #[test]
    fn covers_every_pair_then_repeats() {
        let eq = build_suite(SuiteKind::Equivalent, 10, 21);
        let ne = build_suite(SuiteKind::NonEquivalent, 10, 22);
        let w = equiv_workload(&[&eq, &ne], 100, 7);
        assert_eq!(w.pairs.len(), 20);
        assert_eq!(w.len(), 100);
        // Cold phase covers each pair once, unflipped.
        for (i, r) in w.requests[..20].iter().enumerate() {
            assert_eq!((r.pair, r.flipped), (i, false));
        }
        // The tail actually repeats pairs.
        assert!(w.requests[20..].iter().any(|r| r.pair < 20));
        assert!(w.requests[20..].iter().any(|r| r.flipped));
    }

    #[test]
    fn ground_truth_matches_equivalent() {
        let eq = build_suite(SuiteKind::Equivalent, 6, 31);
        let ne = build_suite(SuiteKind::NonEquivalent, 6, 32);
        let w = equiv_workload(&[&eq, &ne], 30, 8);
        let mut s = Session::new();
        for i in 0..w.len() {
            let (lhs, rhs, expected) = w.request(i);
            assert_eq!(s.equivalent(lhs, rhs), expected, "request {i}");
        }
    }

    #[test]
    fn empty_suites_yield_an_empty_stream() {
        let w = equiv_workload(&[], 100, 1);
        assert!(w.is_empty());
        assert!(w.pairs.is_empty());
    }

    #[test]
    fn split_round_robin_partitions_the_stream() {
        let eq = build_suite(SuiteKind::Equivalent, 8, 51);
        let ne = build_suite(SuiteKind::NonEquivalent, 8, 52);
        let w = equiv_workload(&[&eq, &ne], 103, 11);
        let parts = w.split_round_robin(4);
        assert_eq!(parts.len(), 4);
        // Sizes are balanced (103 = 26+26+26+25) and nothing is lost:
        // re-interleaving the parts reproduces the original stream.
        assert_eq!(parts.iter().map(Workload::len).sum::<usize>(), w.len());
        assert!(parts.iter().all(|p| p.len() >= w.len() / 4));
        for (i, r) in w.requests.iter().enumerate() {
            assert_eq!(parts[i % 4].requests[i / 4], *r, "request {i}");
        }
        // Every part shares the full pair table, so `request(i)` views
        // resolve identically to the parent workload's.
        for p in &parts {
            assert_eq!(p.pairs.len(), w.pairs.len());
        }
        // The cold first-pass is spread across clients, not front-loaded
        // onto client 0: each part starts with a distinct cold pair.
        let first_pairs: Vec<usize> = parts.iter().map(|p| p.requests[0].pair).collect();
        assert_eq!(first_pairs, vec![0, 1, 2, 3]);
        // Degenerate client counts still cover the stream.
        let one = w.split_round_robin(0);
        assert_eq!(one.len(), 1);
        assert_eq!(one[0].requests, w.requests);
    }

    #[test]
    fn deterministic_in_the_seed() {
        let eq = build_suite(SuiteKind::Equivalent, 5, 41);
        let a = equiv_workload(&[&eq], 40, 9);
        let b = equiv_workload(&[&eq], 40, 9);
        assert_eq!(a.requests, b.requests);
        let a = cold_heavy_workload(&[&eq], 40, 750, 9);
        let b = cold_heavy_workload(&[&eq], 40, 750, 9);
        assert_eq!(a.requests, b.requests);
        assert_eq!(a.pairs.len(), b.pairs.len());
    }

    #[test]
    fn tenant_universes_are_disjoint_and_deterministic() {
        let a = tenant_suites(3, 6, 5);
        let b = tenant_suites(3, 6, 5);
        assert_eq!(a.len(), 3);
        // Deterministic in the seed.
        for (ua, ub) in a.iter().zip(&b) {
            for (sa, sb) in ua.iter().zip(ub) {
                assert_eq!(sa.cases.len(), sb.cases.len());
                for (ca, cb) in sa.cases.iter().zip(&sb.cases) {
                    assert_eq!(ca.instance.ty, cb.instance.ty);
                    assert_eq!(ca.other, cb.other);
                }
            }
        }
        // Per-tenant workloads draw only from their own universe and
        // still match ground truth.
        let loads = tenant_workloads(3, 6, 30, 5);
        assert_eq!(loads.len(), 3);
        let mut s = Session::new();
        for (t, w) in loads.iter().enumerate() {
            assert_eq!(w.len(), 30);
            for i in 0..w.len() {
                let (lhs, rhs, expected) = w.request(i);
                assert_eq!(s.equivalent(lhs, rhs), expected, "tenant {t} request {i}");
            }
        }
        // Distinct tenants see distinct pair tables (different seeds).
        assert_ne!(loads[0].pairs[0].lhs, loads[1].pairs[0].lhs);
    }

    #[test]
    fn fresh_tags_are_distinct_and_normal() {
        let mut s = Session::new();
        let ids: Vec<_> = (0..64).map(|i| s.intern(&fresh_tag(i))).collect();
        for (i, &a) in ids.iter().enumerate() {
            assert_eq!(s.nrm(a), a, "tag {i} must be its own normal form");
            for (j, &b) in ids.iter().enumerate().skip(i + 1) {
                assert_ne!(a, b, "tags {i} and {j} collide");
            }
        }
    }

    #[test]
    fn cold_heavy_is_mostly_fresh_and_ground_truth_holds() {
        let eq = build_suite(SuiteKind::Equivalent, 6, 61);
        let ne = build_suite(SuiteKind::NonEquivalent, 6, 62);
        let w = cold_heavy_workload(&[&eq, &ne], 200, 750, 13);
        assert_eq!(w.len(), 200);
        let base = 12;
        let fresh = w.requests.iter().filter(|r| r.pair >= base).count();
        assert!(
            (100..=200).contains(&fresh),
            "expected ~75% fresh pairs, got {fresh}/200"
        );
        // Fresh pairs are unique: each is queried exactly once.
        let mut seen = std::collections::HashSet::new();
        for r in w.requests.iter().filter(|r| r.pair >= base) {
            assert!(seen.insert(r.pair), "fresh pair {} repeated", r.pair);
        }
        // Wrapping preserved every verdict.
        let mut s = Session::new();
        for i in 0..w.len() {
            let (lhs, rhs, expected) = w.request(i);
            assert_eq!(s.equivalent(lhs, rhs), expected, "request {i}");
        }
    }
}
