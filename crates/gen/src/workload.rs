//! Synthetic server load: request streams over the Fig. 10 suites.
//!
//! The Figure-10 suites measure one isolated query per pair. A *server*
//! sees something else: a long stream in which the same pairs recur
//! (every client of a protocol asks the same compatibility questions),
//! arguments arrive in either order, and cold pairs are interleaved with
//! warm ones. [`equiv_workload`] models that: it takes the suites'
//! ground-truth pairs and samples a request sequence with repetition
//! and random orientation — deterministic in the seed, so soak tests
//! and benchmarks are reproducible.

use crate::suite::Suite;
use algst_core::types::Type;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One ground-truth pair a request can draw from.
#[derive(Clone, Debug)]
pub struct WorkloadPair {
    /// Index of the originating suite in the `suites` slice.
    pub suite: usize,
    /// Index of the case within that suite.
    pub case: usize,
    pub lhs: Type,
    pub rhs: Type,
    /// Ground-truth verdict (by construction of the suite).
    pub expected: bool,
}

/// One request of the stream: a pair reference, possibly flipped
/// (equivalence is symmetric, so the expected verdict is unchanged).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WorkloadRequest {
    pub pair: usize,
    pub flipped: bool,
}

/// A reproducible request stream over a set of suites.
#[derive(Clone, Debug)]
pub struct Workload {
    pub pairs: Vec<WorkloadPair>,
    pub requests: Vec<WorkloadRequest>,
}

impl Workload {
    /// The (lhs, rhs, expected) view of request `i`, flip applied.
    pub fn request(&self, i: usize) -> (&Type, &Type, bool) {
        let r = self.requests[i];
        let p = &self.pairs[r.pair];
        if r.flipped {
            (&p.rhs, &p.lhs, p.expected)
        } else {
            (&p.lhs, &p.rhs, p.expected)
        }
    }

    pub fn len(&self) -> usize {
        self.requests.len()
    }

    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }
}

/// Builds a stream of `requests` equivalence queries over the pairs of
/// `suites`. Every pair appears at least once (while `requests` allows),
/// so verdicts can be checked exhaustively against the ground truth;
/// the rest of the stream re-samples pairs uniformly, flipping
/// orientation half the time — the warm-hit-dominated shape a
/// long-running service actually sees.
pub fn equiv_workload(suites: &[&Suite], requests: usize, seed: u64) -> Workload {
    let mut pairs = Vec::new();
    for (si, suite) in suites.iter().enumerate() {
        for (ci, case) in suite.cases.iter().enumerate() {
            pairs.push(WorkloadPair {
                suite: si,
                case: ci,
                lhs: case.instance.ty.clone(),
                rhs: case.other.clone(),
                expected: case.equivalent,
            });
        }
    }
    if pairs.is_empty() {
        // No cases to draw from (empty suites): an empty stream, not a
        // panic inside the sampler.
        return Workload {
            pairs,
            requests: Vec::new(),
        };
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut stream = Vec::with_capacity(requests);
    for i in 0..requests {
        let pair = if i < pairs.len() {
            i // first pass: cover every pair in order (the cold phase)
        } else {
            rng.gen_range(0..pairs.len())
        };
        let flipped = i >= pairs.len() && rng.gen_range(0..2) == 1;
        stream.push(WorkloadRequest { pair, flipped });
    }
    Workload {
        pairs,
        requests: stream,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::{build_suite, SuiteKind};
    use algst_core::Session;

    #[test]
    fn covers_every_pair_then_repeats() {
        let eq = build_suite(SuiteKind::Equivalent, 10, 21);
        let ne = build_suite(SuiteKind::NonEquivalent, 10, 22);
        let w = equiv_workload(&[&eq, &ne], 100, 7);
        assert_eq!(w.pairs.len(), 20);
        assert_eq!(w.len(), 100);
        // Cold phase covers each pair once, unflipped.
        for (i, r) in w.requests[..20].iter().enumerate() {
            assert_eq!((r.pair, r.flipped), (i, false));
        }
        // The tail actually repeats pairs.
        assert!(w.requests[20..].iter().any(|r| r.pair < 20));
        assert!(w.requests[20..].iter().any(|r| r.flipped));
    }

    #[test]
    fn ground_truth_matches_equivalent() {
        let eq = build_suite(SuiteKind::Equivalent, 6, 31);
        let ne = build_suite(SuiteKind::NonEquivalent, 6, 32);
        let w = equiv_workload(&[&eq, &ne], 30, 8);
        let mut s = Session::new();
        for i in 0..w.len() {
            let (lhs, rhs, expected) = w.request(i);
            assert_eq!(s.equivalent(lhs, rhs), expected, "request {i}");
        }
    }

    #[test]
    fn empty_suites_yield_an_empty_stream() {
        let w = equiv_workload(&[], 100, 1);
        assert!(w.is_empty());
        assert!(w.pairs.is_empty());
    }

    #[test]
    fn deterministic_in_the_seed() {
        let eq = build_suite(SuiteKind::Equivalent, 5, 41);
        let a = equiv_workload(&[&eq], 40, 9);
        let b = equiv_workload(&[&eq], 40, 9);
        assert_eq!(a.requests, b.requests);
    }
}
