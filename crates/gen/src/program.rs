//! Random *program* generation: whole well-typed AlgST modules that
//! exercise every layer — lexer, parser, elaborator, checker, and the
//! channel runtime — not just the type language.
//!
//! Each generated module is a client/server pair over one channel: a
//! random session spine of base-type messages (optionally guarded by a
//! binary protocol choice), a `main` that forks the client and runs the
//! server, and a deterministic expected output (the server prints every
//! `Int` it receives; rendezvous on a single channel makes the print
//! order unique). The `algst-conform` fuzzer uses these programs for
//! three oracles: the checker must accept them, metamorphic surface
//! transformations must preserve the checker's verdict, and running
//! `main` must terminate with the expected output — or hit the step
//! budget — but never panic.
//!
//! With [`ProgConfig::damage`] the client *signature* gets one payload
//! type flipped while the body keeps using the original send/receive
//! helper, producing a module that is ill-typed by construction (the
//! negative side of the metamorphic oracle).

use algst_core::expr::Lit;
use rand::Rng;
use std::fmt::Write;

/// Parameters for [`generate_program`].
#[derive(Clone, Debug)]
pub struct ProgConfig {
    /// Number of messages on the channel (≥ 1).
    pub spine: usize,
    /// Upper bound on `select`/`match` choice points woven into the
    /// spine. Each candidate position is taken with probability ½, so
    /// `choices: 2` yields zero, one, or two — possibly *nested* —
    /// choices (every `match` duplicates its whole continuation into
    /// both arms, so nesting grows the server body exponentially; keep
    /// this small).
    pub choices: usize,
    /// Route `Int` traffic through generated `forall (s:S).` forwarder
    /// declarations instead of calling `sendInt`/`receiveInt` directly,
    /// exercising user-defined polymorphic session functions on both
    /// ends of the channel.
    pub poly: bool,
    /// Flip one payload type in the client signature, making the module
    /// ill-typed while leaving it parseable.
    pub damage: bool,
}

impl Default for ProgConfig {
    fn default() -> ProgConfig {
        ProgConfig {
            spine: 4,
            choices: 1,
            poly: false,
            damage: false,
        }
    }
}

/// A generated module plus everything an oracle needs to judge a run.
#[derive(Clone, Debug)]
pub struct GenProgram {
    /// The module source (one declaration per line).
    pub source: String,
    /// Whether the module type checks, by construction.
    pub well_typed: bool,
    /// Lines `main` prints when run (only meaningful when well-typed).
    pub expected_output: Vec<String>,
    /// The entry point (always `main`).
    pub entry: &'static str,
}

/// A base-type message payload with the concrete value the sending side
/// transmits.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum Payload {
    Int(i64),
    Bool(bool),
    Char(char),
}

impl Payload {
    fn ty(self) -> &'static str {
        match self {
            Payload::Int(_) => "Int",
            Payload::Bool(_) => "Bool",
            Payload::Char(_) => "Char",
        }
    }

    fn helper(self, send: bool) -> &'static str {
        match (self, send) {
            (Payload::Int(_), true) => "sendInt",
            (Payload::Int(_), false) => "receiveInt",
            (Payload::Bool(_), true) => "sendBool",
            (Payload::Bool(_), false) => "receiveBool",
            (Payload::Char(_), true) => "sendChar",
            (Payload::Char(_), false) => "receiveChar",
        }
    }

    fn literal(self) -> String {
        match self {
            Payload::Int(n) => n.to_string(),
            Payload::Bool(true) => "True".into(),
            Payload::Bool(false) => "False".into(),
            Payload::Char(c) => format!("'{c}'"),
        }
    }
}

/// One step of the spine, from the *client's* perspective.
#[derive(Copy, Clone, Debug)]
enum Step {
    /// Client sends the payload.
    Send(Payload),
    /// Server sends the payload (client receives).
    Recv(Payload),
    /// Client selects one of the two protocol tags (`0` or `1`).
    Choice(usize),
}

fn random_payload<R: Rng>(rng: &mut R) -> Payload {
    match rng.gen_range(0..4) {
        0 => Payload::Bool(rng.gen_range(0..2) == 0),
        1 => Payload::Char((b'a' + rng.gen_range(0..26u8)) as char),
        _ => Payload::Int(rng.gen_range(0..1000)),
    }
}

/// Generates one module (see the module docs for its shape).
pub fn generate_program<R: Rng>(rng: &mut R, cfg: &ProgConfig) -> GenProgram {
    let stamp: u32 = rng.gen();
    let proto = format!("PgP{stamp}");
    let tags = [format!("PgA{stamp}"), format!("PgB{stamp}")];
    let client = format!("pgClient{stamp}");
    let server = format!("pgServer{stamp}");
    let fwd_send = format!("pgFwdS{stamp}");
    let fwd_recv = format!("pgFwdR{stamp}");

    // ---------------------------------------------------------- the spine
    let mut steps = Vec::new();
    for _ in 0..cfg.spine.max(1) {
        let payload = random_payload(rng);
        steps.push(if rng.gen_range(0..2) == 0 {
            Step::Send(payload)
        } else {
            Step::Recv(payload)
        });
    }
    for _ in 0..cfg.choices {
        if rng.gen_range(0..2) == 0 {
            let at = rng.gen_range(0..=steps.len());
            steps.insert(at, Step::Choice(rng.gen_range(0..2)));
        }
    }
    let has_choice = steps.iter().any(|s| matches!(s, Step::Choice(_)));
    // The client actively closes half the time, otherwise it waits.
    let client_closes = rng.gen_range(0..2) == 0;

    // ----------------------------------------------- session type suffixes
    // `client_ty[k]` / `server_ty[k]` is the channel type *after* the
    // first k steps, from each side's perspective.
    let suffix = |view_client: bool| -> Vec<String> {
        let mut tys = vec![if view_client == client_closes {
            "End!".to_owned()
        } else {
            "End?".to_owned()
        }];
        for step in steps.iter().rev() {
            let rest = tys.last().expect("seeded").clone();
            let prefix = match (step, view_client) {
                (Step::Send(p), true) | (Step::Recv(p), false) => format!("!{}", p.ty()),
                (Step::Send(p), false) | (Step::Recv(p), true) => format!("?{}", p.ty()),
                (Step::Choice(_), true) => format!("!{proto}"),
                (Step::Choice(_), false) => format!("?{proto}"),
            };
            tys.push(format!("{prefix}.{rest}"));
        }
        tys.reverse();
        tys
    };
    let client_ty = suffix(true);
    let server_ty = suffix(false);

    // -------------------------------------------------------------- bodies
    // With `poly`, `Int` traffic on both ends goes through the generated
    // `forall` forwarders; everything else calls the builtins directly.
    let helper = |p: Payload, send: bool| -> String {
        if cfg.poly && matches!(p, Payload::Int(_)) {
            if send {
                fwd_send.clone()
            } else {
                fwd_recv.clone()
            }
        } else {
            p.helper(send).to_owned()
        }
    };
    let mut client_body = String::new();
    for (k, step) in steps.iter().enumerate() {
        let rest = &client_ty[k + 1];
        match step {
            Step::Send(p) => {
                let _ = write!(
                    client_body,
                    "let c = {} [{rest}] {} c in ",
                    helper(*p, true),
                    p.literal()
                );
            }
            Step::Recv(p) => {
                let _ = write!(
                    client_body,
                    "let (x{k}, c) = {} [{rest}] c in ",
                    helper(*p, false)
                );
            }
            Step::Choice(sel) => {
                let _ = write!(client_body, "let c = select {} [{rest}] c in ", tags[*sel]);
            }
        }
    }
    client_body.push_str(if client_closes {
        "terminate c"
    } else {
        "wait c"
    });

    // The server prints every Int it receives; built back-to-front so a
    // `match` can duplicate the whole continuation into both arms.
    let mut server_body = if client_closes {
        "wait c".to_owned()
    } else {
        "terminate c".to_owned()
    };
    for (k, step) in steps.iter().enumerate().rev() {
        let rest = &server_ty[k + 1];
        server_body = match step {
            Step::Send(p) => {
                let recv = format!("let (y{k}, c) = {} [{rest}] c in ", helper(*p, false));
                if matches!(p, Payload::Int(_)) {
                    format!("{recv}let _ = printInt y{k} in {server_body}")
                } else {
                    format!("{recv}{server_body}")
                }
            }
            Step::Recv(p) => format!(
                "let c = {} [{rest}] {} c in {server_body}",
                helper(*p, true),
                p.literal()
            ),
            Step::Choice(_) => format!(
                "match c with {{ {} c -> {server_body}, {} c -> {server_body} }}",
                tags[0], tags[1]
            ),
        };
    }

    // ------------------------------------------------- optional signature damage
    // Flip one message payload type in the *client signature* only; the
    // body still uses the helper for the original type, so checking must
    // fail while parsing succeeds.
    let mut client_sig = client_ty[0].clone();
    let well_typed = if cfg.damage {
        let target = steps.iter().enumerate().find_map(|(k, s)| match s {
            Step::Send(p) | Step::Recv(p) => Some((k, *p)),
            Step::Choice(_) => None,
        });
        match target {
            Some((_, p)) => {
                let from = p.ty();
                let to = match p {
                    Payload::Int(_) => "Bool",
                    Payload::Bool(_) => "Char",
                    Payload::Char(_) => "Int",
                };
                client_sig = client_sig.replacen(from, to, 1);
                false
            }
            None => true, // a pure-choice spine has no payload to damage
        }
    } else {
        true
    };

    // ------------------------------------------------------------- assembly
    let mut source = String::new();
    if has_choice {
        let _ = writeln!(source, "protocol {proto} = {} | {}", tags[0], tags[1]);
    }
    if cfg.poly {
        let _ = writeln!(source, "{fwd_send} : forall (s:S). Int -> !Int.s -> s");
        let _ = writeln!(source, "{fwd_send} [s] n c = sendInt [s] n c");
        let _ = writeln!(source, "{fwd_recv} : forall (s:S). ?Int.s -> (Int, s)");
        let _ = writeln!(source, "{fwd_recv} [s] c = receiveInt [s] c");
    }
    let _ = writeln!(source, "{client} : {client_sig} -> Unit");
    let _ = writeln!(source, "{client} c = {client_body}");
    let _ = writeln!(source, "{server} : {} -> Unit", server_ty[0]);
    let _ = writeln!(source, "{server} c = {server_body}");
    let _ = writeln!(source, "main : Unit");
    let _ = writeln!(
        source,
        "main = let (p, q) = new [{}] in let _ = fork (\\u -> {client} p) in {server} q",
        client_ty[0]
    );

    let expected_output = steps
        .iter()
        .filter_map(|s| match s {
            Step::Send(Payload::Int(n)) => Some(n.to_string()),
            _ => None,
        })
        .collect();

    GenProgram {
        source,
        well_typed,
        expected_output,
        entry: "main",
    }
}

// ------------------------------------------------ recomputed expectation

/// Recomputes the expected output of a generated module *from its
/// source alone*: the `Int` literals the forked client sends, in
/// program order (the server prints exactly those, and rendezvous on a
/// single channel makes the order unique).
///
/// This is what lets runtime counterexamples shrink: after
/// [`reduce_program`](../../algst_conform) drops declarations, the
/// original [`GenProgram::expected_output`] no longer describes the
/// candidate, but the candidate's own client body still does. Returns
/// `None` when the module does not have the generated shape (no
/// parseable `main`, no `fork`ed client, or no client binding) — such a
/// candidate cannot be judged and must not count as failing.
pub fn expected_output_of(source: &str) -> Option<Vec<String>> {
    use algst_syntax::ast::{Decl, Program, SExpr};

    let program: Program = algst_syntax::parse_program(source).ok()?;
    let binding = |name: &str| {
        program.decls.iter().find_map(|d| match d {
            Decl::Binding(b) if b.name.as_str() == name => Some(b),
            _ => None,
        })
    };

    // `main = let (p, q) = new [T] in let _ = fork (\u -> client p) in …`
    // — find the lambda handed to `fork` and take its head variable.
    fn forked_client(e: &SExpr) -> Option<&'static str> {
        match e {
            SExpr::App(f, a, _) => {
                if let SExpr::Var(name, _) = spine_head(f) {
                    if name.as_str() == "fork" {
                        if let SExpr::Lambda(_, body, _) = &**a {
                            if let SExpr::Var(callee, _) = spine_head(body) {
                                return Some(callee.as_str());
                            }
                        }
                    }
                }
                forked_client(f).or_else(|| forked_client(a))
            }
            SExpr::TApp(f, _, _) | SExpr::Lambda(_, f, _) => forked_client(f),
            SExpr::Let(_, rhs, body, _) => forked_client(rhs).or_else(|| forked_client(body)),
            SExpr::Pair(l, r, _) | SExpr::BinOp(_, l, r, _) => {
                forked_client(l).or_else(|| forked_client(r))
            }
            SExpr::If(c, t, f, _) => forked_client(c)
                .or_else(|| forked_client(t))
                .or_else(|| forked_client(f)),
            SExpr::Case(scrut, arms, _) => forked_client(scrut)
                .or_else(|| arms.iter().find_map(|arm| forked_client(&arm.body))),
            _ => None,
        }
    }

    /// The variable (or other atom) at the head of an application spine.
    fn spine_head(e: &SExpr) -> &SExpr {
        match e {
            SExpr::App(f, _, _) | SExpr::TApp(f, _, _) => spine_head(f),
            _ => e,
        }
    }

    let client = forked_client(&binding("main")?.body)?;

    // Int-sending functions: `sendInt` itself plus any binding that
    // bottoms out in one (the generated `forall` forwarders are a single
    // level deep, but close transitively for safety).
    let mut senders: Vec<&str> = vec!["sendInt"];
    loop {
        let before = senders.len();
        for d in &program.decls {
            if let Decl::Binding(b) = d {
                if let SExpr::Var(head, _) = spine_head(&b.body) {
                    if senders.contains(&head.as_str()) && !senders.contains(&b.name.as_str()) {
                        senders.push(b.name.as_str());
                    }
                }
            }
        }
        if senders.len() == before {
            break;
        }
    }

    // Collect the literal `Int` arguments of maximal application spines
    // headed by an Int-sender, left to right. Only spine roots are
    // inspected, so `((sendInt [T]) 5) c` counts once.
    fn collect(e: &SExpr, senders: &[&str], out: &mut Vec<String>) {
        match e {
            SExpr::App(..) | SExpr::TApp(..) => {
                let mut args = Vec::new();
                let mut head = e;
                loop {
                    match head {
                        SExpr::App(f, a, _) => {
                            args.push(&**a);
                            head = f;
                        }
                        SExpr::TApp(f, _, _) => head = f,
                        _ => break,
                    }
                }
                args.reverse();
                if let SExpr::Var(name, _) = head {
                    if senders.contains(&name.as_str()) {
                        for a in &args {
                            if let SExpr::Lit(Lit::Int(n), _) = a {
                                out.push(n.to_string());
                            }
                        }
                    }
                } else {
                    collect(head, senders, out);
                }
                for a in args {
                    collect(a, senders, out);
                }
            }
            SExpr::Lambda(_, b, _) => collect(b, senders, out),
            SExpr::Let(_, rhs, body, _) => {
                collect(rhs, senders, out);
                collect(body, senders, out);
            }
            SExpr::Pair(l, r, _) | SExpr::BinOp(_, l, r, _) => {
                collect(l, senders, out);
                collect(r, senders, out);
            }
            SExpr::If(c, t, f, _) => {
                collect(c, senders, out);
                collect(t, senders, out);
                collect(f, senders, out);
            }
            SExpr::Case(scrut, arms, _) => {
                collect(scrut, senders, out);
                for arm in arms {
                    collect(&arm.body, senders, out);
                }
            }
            _ => {}
        }
    }

    let mut out = Vec::new();
    collect(&binding(client)?.body, &senders, &mut out);
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generated_programs_type_check() {
        let mut rng = StdRng::seed_from_u64(41);
        for i in 0..30 {
            let cfg = ProgConfig {
                spine: 1 + i % 6,
                choices: i % 3,
                poly: i % 2 == 0,
                damage: false,
            };
            let p = generate_program(&mut rng, &cfg);
            assert!(p.well_typed);
            algst_check::check_source(&p.source)
                .unwrap_or_else(|e| panic!("generated program ill-typed: {e}\n{}", p.source));
        }
    }

    #[test]
    fn damaged_programs_fail_to_check() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut damaged = 0;
        for i in 0..30 {
            let cfg = ProgConfig {
                spine: 1 + i % 6,
                choices: 0,
                poly: i % 2 == 0,
                damage: true,
            };
            let p = generate_program(&mut rng, &cfg);
            if !p.well_typed {
                damaged += 1;
                assert!(
                    algst_check::check_source(&p.source).is_err(),
                    "damaged program still checks:\n{}",
                    p.source
                );
            }
        }
        assert!(damaged >= 25, "only {damaged}/30 runs produced damage");
    }

    #[test]
    fn generated_programs_run_to_the_expected_output() {
        let mut rng = StdRng::seed_from_u64(43);
        for _ in 0..10 {
            let p = generate_program(&mut rng, &ProgConfig::default());
            let module = algst_check::check_source(&p.source).expect("well-typed");
            let interp = algst_runtime::Interp::new(&module);
            interp
                .run_timeout(p.entry, std::time::Duration::from_secs(20))
                .unwrap_or_else(|e| panic!("runtime error: {e}\n{}", p.source));
            assert_eq!(interp.output(), p.expected_output, "\n{}", p.source);
        }
    }

    #[test]
    fn nested_choice_and_poly_programs_run_to_the_expected_output() {
        let mut rng = StdRng::seed_from_u64(44);
        for i in 0..12 {
            let cfg = ProgConfig {
                spine: 1 + i % 4,
                choices: 3,
                poly: true,
                damage: false,
            };
            let p = generate_program(&mut rng, &cfg);
            let module = algst_check::check_source(&p.source).unwrap_or_else(|e| {
                panic!("poly/nested-choice program ill-typed: {e}\n{}", p.source)
            });
            let interp = algst_runtime::Interp::new(&module);
            interp
                .run_timeout(p.entry, std::time::Duration::from_secs(20))
                .unwrap_or_else(|e| panic!("runtime error: {e}\n{}", p.source));
            assert_eq!(interp.output(), p.expected_output, "\n{}", p.source);
        }
    }

    #[test]
    fn expected_output_is_recomputable_from_source() {
        let mut rng = StdRng::seed_from_u64(45);
        for i in 0..40 {
            let cfg = ProgConfig {
                spine: 1 + i % 6,
                choices: i % 3,
                poly: i % 2 == 0,
                damage: false,
            };
            let p = generate_program(&mut rng, &cfg);
            assert_eq!(
                expected_output_of(&p.source).as_ref(),
                Some(&p.expected_output),
                "recomputed expectation diverged from the generator's\n{}",
                p.source
            );
        }
    }

    #[test]
    fn expected_output_of_rejects_shapeless_modules() {
        assert_eq!(expected_output_of("not a ( program"), None);
        assert_eq!(expected_output_of("f : Unit\nf = ()"), None);
        // A `main` that forks nothing still has no client to read.
        assert_eq!(expected_output_of("main : Unit\nmain = ()"), None);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = generate_program(&mut StdRng::seed_from_u64(7), &ProgConfig::default());
        let b = generate_program(&mut StdRng::seed_from_u64(7), &ProgConfig::default());
        assert_eq!(a.source, b.source);
        assert_eq!(a.expected_output, b.expected_output);
    }
}
