//! Random instance generation (paper Section 5).
//!
//! "To create a collection of equivalent and non-equivalent test cases, we
//! implemented a generator of instances of AlgST types. […] We carefully
//! restrict protocols and types so that a translation from AlgST instances
//! to FreeST types is possible: the generator avoids polymorphic and
//! nested recursion and restricts the occurrences of the negation operator
//! to the top level of protocol constructor arguments."
//!
//! Additional invariants guaranteeing that translation preserves the
//! verdicts (so both systems are asked the *same* question) and stays
//! polynomially sized (the paper: "carefully restrict protocols and types
//! so that a translation … is possible"):
//!
//! * every protocol has an **exit constructor** whose arguments mention no
//!   protocols, so every protocol is normed (terminating) and every
//!   position in the session type is behaviourally reachable — a mutation
//!   can never hide in dead code that FreeST's equirecursive view would
//!   ignore;
//! * single-constructor protocols (whose FreeST translation omits the
//!   choice tag, cf. Fig. 9) consist of base-type arguments only, keeping
//!   the translation contractive — and carry at least one argument:
//!   a *nullary* single-constructor protocol would translate to the empty
//!   behaviour, making `?P.S` and `!P.S` FreeST-equal while AlgST keeps
//!   them nominally apart;
//! * protocol references point to the protocol itself or its successor in
//!   a single mutual-recursion cycle, with at most two protocol-reference
//!   arguments per protocol — the tag-inlining FreeST translation then
//!   grows like 2^(2·cycle) in the worst case instead of exploding with
//!   unrestricted fan-out (recursion through `-P` flips direction, hence
//!   the factor 2 in the exponent);
//! * with probability [`GenConfig::deep_norms`], a contiguous prefix of
//!   the protocol chain consists of *deep* protocols whose only finishing
//!   constructor triplicates a reference to the next protocol
//!   (`exit_i = C P_{i+1} P_{i+1} P_{i+1}`), the classic family whose
//!   norms grow exponentially (3^prefix) while the grammar stays linear —
//!   these are the instances that drive the baseline bisimulation checker
//!   into the paper's timeouts, while AlgST's nominal check is unaffected.

use crate::instance::Instance;
use algst_core::kind::Kind;
use algst_core::protocol::{Ctor, Declarations, ProtocolDecl};
use algst_core::symbol::Symbol;
use algst_core::types::{BaseType, Type};
use rand::Rng;

/// Generator parameters.
#[derive(Clone, Debug)]
pub struct GenConfig {
    /// Number of (mutually recursive) protocol declarations.
    pub protocols: usize,
    /// Maximum constructors per protocol (≥ 2 enables recursion).
    pub max_ctors: usize,
    /// Maximum arguments per constructor.
    pub max_args: usize,
    /// Number of messages on the session type's spine.
    pub spine: usize,
    /// Probability of wrapping the type in `∀(s:S). …s` with a variable
    /// tail instead of closing it with `End`.
    pub poly_tail: f64,
    /// Probability that a protocol's exit constructor duplicates a
    /// reference to the next protocol in the chain (exponential norms).
    pub deep_norms: f64,
}

impl Default for GenConfig {
    fn default() -> GenConfig {
        GenConfig {
            protocols: 2,
            max_ctors: 3,
            max_args: 3,
            spine: 4,
            poly_tail: 0.3,
            deep_norms: 0.0,
        }
    }
}

impl GenConfig {
    /// A configuration whose expected instance size grows with `size`
    /// (used to sweep the x-axis of Figure 10).
    pub fn sized(size: usize) -> GenConfig {
        GenConfig {
            protocols: (1 + size / 6).min(22),
            max_ctors: 2 + (size / 12).min(3),
            max_args: 1 + (size / 10).min(3),
            spine: 2 + size / 6,
            poly_tail: 0.3,
            deep_norms: 0.55,
        }
    }
}

/// Deterministically numbered fresh names, unique per generated instance.
struct Names {
    stamp: u64,
    tags: usize,
}

impl Names {
    fn protocol(&self, i: usize) -> Symbol {
        Symbol::intern(&format!("G{}P{i}", self.stamp))
    }

    fn tag(&mut self) -> Symbol {
        self.tags += 1;
        Symbol::intern(&format!("G{}C{}", self.stamp, self.tags))
    }
}

fn base(rng: &mut impl Rng) -> Type {
    match rng.gen_range(0..4) {
        0 => Type::Base(BaseType::Int),
        1 => Type::Base(BaseType::Bool),
        2 => Type::Base(BaseType::Char),
        _ => Type::Base(BaseType::Str),
    }
}

/// Generates one instance.
pub fn generate_instance<R: Rng>(rng: &mut R, cfg: &GenConfig) -> Instance {
    let mut names = Names {
        stamp: rng.gen::<u32>() as u64,
        tags: 0,
    };
    let n = cfg.protocols.max(1);

    // Exponential-norm family: with probability `deep_norms` the instance
    // gets a *contiguous* prefix of deep protocols (P_0 … P_{deep_len-1}),
    // each of whose only finishing path duplicates the next protocol —
    // norms then multiply along the whole run (2^deep_len). Consecutive
    // placement matters: isolated deep protocols multiply only once.
    let deep_len = if n >= 4 && rng.gen_bool(cfg.deep_norms) {
        rng.gen_range(n / 2..n)
    } else {
        0
    };

    let mut decls = Declarations::new();
    for i in 0..n {
        let mut num_ctors = rng.gen_range(1..=cfg.max_ctors.max(1));
        // Deep-exit protocols must carry a choice tag (multi-constructor)
        // so their grammar rendering is one nonterminal per protocol —
        // a tagless 2-reference exit would double the *word* instead.
        let deep_exit = i + 1 < n && i < deep_len;
        if deep_exit {
            num_ctors = num_ctors.max(2);
        }
        let mut ctors = Vec::with_capacity(num_ctors);
        // Recursion discipline: references go to this protocol or the
        // next one in the cycle, at most two per protocol overall.
        let mut proto_refs_left = 2usize;
        // Exit constructor (c == 0): base types only, except that a
        // deep-norm exit duplicates a reference to the next protocol
        // *down the chain* (strictly forward, hence still normed) — the
        // exponential-norm family.
        for c in 0..num_ctors {
            if c == 0 && deep_exit {
                let next = Type::proto(names.protocol(i + 1), vec![]);
                ctors.push(Ctor {
                    tag: names.tag(),
                    args: vec![next.clone(), next.clone(), next],
                });
                continue;
            }
            if deep_exit {
                // Every other constructor of a deep protocol recurses, so
                // the duplicated exit is the *only* finishing path and the
                // norm is genuinely exponential (a base-only alternative
                // would undercut it).
                let mut args = vec![Type::proto(names.protocol(i), vec![])];
                if rng.gen_bool(0.5) {
                    args.insert(0, base(rng));
                }
                ctors.push(Ctor {
                    tag: names.tag(),
                    args,
                });
                continue;
            }
            let mut num_args = rng.gen_range(0..=cfg.max_args);
            if num_ctors == 1 {
                num_args = num_args.max(1);
            }
            let mut args = Vec::with_capacity(num_args);
            for _ in 0..num_args {
                // Exit constructor (c == 0) and single-constructor
                // protocols use base arguments only; otherwise protocol
                // references (possibly negated) are allowed.
                let allow_proto = c > 0 && num_ctors > 1 && proto_refs_left > 0;
                // Deep-exit protocols keep their other references
                // self-directed: together with the two exit references
                // this bounds the inlining translation by 2 references
                // per chain level (2^depth overall) instead of 4^depth.
                let target = if deep_exit || rng.gen_bool(0.5) {
                    i
                } else {
                    (i + 1) % n
                };
                let arg = match rng.gen_range(0..4) {
                    0 if allow_proto => {
                        proto_refs_left -= 1;
                        Type::proto(names.protocol(target), vec![])
                    }
                    1 if allow_proto => {
                        proto_refs_left -= 1;
                        Type::neg(Type::proto(names.protocol(target), vec![]))
                    }
                    2 => Type::neg(base(rng)),
                    _ => base(rng),
                };
                args.push(arg);
            }
            ctors.push(Ctor {
                tag: names.tag(),
                args,
            });
        }
        decls
            .add_protocol(ProtocolDecl {
                name: names.protocol(i),
                params: vec![],
                ctors,
            })
            .expect("generated names are fresh");
    }
    decls
        .validate()
        .expect("generated declarations are well-kinded");

    // The session type: a spine of messages over the declared protocols
    // and base types, closed by End or a quantified variable tail.
    let poly = rng.gen_bool(cfg.poly_tail);
    let tail_var = Symbol::intern("s");
    let mut ty = if poly {
        Type::Var(tail_var)
    } else if rng.gen_bool(0.5) {
        Type::EndOut
    } else {
        Type::EndIn
    };
    // Protocol payloads are biased toward the head of the declaration
    // chain so the deep-norm prefix is actually exercised by the type.
    let pick_protocol = |rng: &mut R| {
        if rng.gen_bool(0.5) {
            0
        } else {
            rng.gen_range(0..n)
        }
    };
    for _ in 0..cfg.spine {
        let payload = match rng.gen_range(0..5) {
            0 => Type::proto(names.protocol(pick_protocol(rng)), vec![]),
            1 => Type::neg(Type::proto(names.protocol(pick_protocol(rng)), vec![])),
            2 => Type::neg(base(rng)),
            3 => Type::pair(
                base(rng),
                if rng.gen_bool(0.5) {
                    Type::EndOut
                } else {
                    Type::EndIn
                },
            ),
            _ => base(rng),
        };
        ty = if rng.gen_bool(0.5) {
            Type::input(payload, ty)
        } else {
            Type::output(payload, ty)
        };
    }
    if poly {
        ty = Type::forall(tail_var, Kind::Session, ty);
    }

    Instance { decls, ty }
}

#[cfg(test)]
mod tests {
    use super::*;
    use algst_core::kindcheck::KindCtx;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generated_instances_are_well_kinded() {
        let mut rng = StdRng::seed_from_u64(7);
        for i in 0..50 {
            let cfg = GenConfig::sized(5 + i);
            let inst = generate_instance(&mut rng, &cfg);
            let mut ctx = KindCtx::new(&inst.decls);
            let kind = ctx
                .synth(&inst.ty)
                .unwrap_or_else(|e| panic!("ill-kinded generated type {}: {e}", inst.ty));
            assert!(
                kind.is_subkind_of(Kind::Value),
                "unexpected kind {kind} for {}",
                inst.ty
            );
        }
    }

    #[test]
    fn generated_instances_grow_with_size() {
        let mut rng = StdRng::seed_from_u64(42);
        let small: usize = (0..20)
            .map(|_| generate_instance(&mut rng, &GenConfig::sized(5)).node_count())
            .sum();
        let large: usize = (0..20)
            .map(|_| generate_instance(&mut rng, &GenConfig::sized(90)).node_count())
            .sum();
        assert!(
            large > small * 2,
            "sized(90) ({large}) should dwarf sized(5) ({small})"
        );
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = generate_instance(&mut StdRng::seed_from_u64(1), &GenConfig::default());
        let b = generate_instance(&mut StdRng::seed_from_u64(1), &GenConfig::default());
        assert_eq!(a.ty, b.ty);
    }

    #[test]
    fn exit_constructors_keep_protocols_normed() {
        // Exit constructors may only reference *later* protocols in the
        // chain (the exponential-norm family), never earlier ones or
        // themselves — this keeps every protocol normed, hence every
        // position behaviourally reachable.
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..30 {
            let inst = generate_instance(&mut rng, &GenConfig::sized(60));
            let order: Vec<_> = inst.decls.protocols().map(|p| p.name).collect();
            for (i, p) in inst.decls.protocols().enumerate() {
                let exit = &p.ctors[0];
                for arg in &exit.args {
                    if let Some(name) = proto_ref(arg) {
                        let j = order.iter().position(|n| *n == name).expect("declared");
                        assert!(
                            j > i,
                            "exit ctor of {} references {} (not strictly later)",
                            p.name,
                            name
                        );
                    }
                }
            }
        }
    }

    fn proto_ref(t: &Type) -> Option<algst_core::symbol::Symbol> {
        match t {
            Type::Proto(name, _) => Some(*name),
            Type::Neg(inner) => proto_ref(inner),
            _ => None,
        }
    }
}
