//! Translation of AlgST benchmark instances to FreeST context-free
//! session types (paper Section 5 and Fig. 9; the formal function `H·I`
//! appears in Appendix E).
//!
//! "The AlgST type is translated to a session type in FreeST. Protocols
//! are translated inline at every point of use as recursive branch or
//! choice types, depending on whether it appears in a sending or
//! receiving context. For single constructor types, the translation omits
//! the constructor tag. The arguments of the constructors are translated
//! into nested sequences of single interactions."
//!
//! The translation works on *normalized* types; callers normalize first
//! (we do it here for robustness). Recursion is tied with `rec` binders
//! keyed by (protocol, direction): a protocol used under negation
//! recurses through the *opposite*-direction binder.

use algst_core::protocol::Declarations;
use algst_core::symbol::Symbol;
use algst_core::types::{BaseType, Type};
use algst_core::Session;
use freest::{CfType, Dir, Payload};
use std::fmt;

/// A type construct outside the translatable fragment (the generator
/// never produces these).
#[derive(Clone, Debug)]
pub struct UntranslatableError(pub String);

impl fmt::Display for UntranslatableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "type not in the FreeST-translatable fragment: {}",
            self.0
        )
    }
}

impl std::error::Error for UntranslatableError {}

/// Translates an AlgST session type (over `decls`) to a FreeST type,
/// normalizing through the caller's `session` (repeated (sub)types
/// across a suite hit its memo).
///
/// # Errors
/// Fails on parameterized protocol applications, function types in
/// message positions, and other constructs outside the benchmark
/// fragment.
pub fn to_freest(
    session: &mut Session,
    decls: &Declarations,
    ty: &Type,
) -> Result<CfType, UntranslatableError> {
    let n = session.normalize(ty);
    let mut tr = Translator {
        decls,
        stack: Vec::new(),
    };
    tr.session(&n)
}

struct Translator<'d> {
    decls: &'d Declarations,
    /// In-scope `rec` binders: (protocol, direction) → binder name.
    stack: Vec<(Symbol, Dir)>,
}

impl Translator<'_> {
    fn session(&mut self, ty: &Type) -> Result<CfType, UntranslatableError> {
        Ok(match ty {
            Type::EndOut => CfType::End(Dir::Out),
            Type::EndIn => CfType::End(Dir::In),
            // Session type variables and their (irreducible) duals map to
            // nominally distinct FreeST variables.
            Type::Var(v) => CfType::var(v.as_str()),
            Type::Dual(inner) => match &**inner {
                Type::Var(v) => CfType::var(format!("dual_{v}")),
                other => {
                    return Err(UntranslatableError(format!(
                        "Dual of a non-variable survived normalization: {other}"
                    )))
                }
            },
            Type::In(p, s) => CfType::seq(self.message(p, Dir::In)?, self.session(s)?),
            Type::Out(p, s) => CfType::seq(self.message(p, Dir::Out)?, self.session(s)?),
            Type::Forall(v, _, body) => CfType::forall(v.as_str(), self.session(body)?),
            other => {
                return Err(UntranslatableError(format!(
                    "unsupported session construct: {other}"
                )))
            }
        })
    }

    /// One transmission of a protocol-kinded payload in direction `dir`.
    fn message(&mut self, payload: &Type, dir: Dir) -> Result<CfType, UntranslatableError> {
        match payload {
            // Negation flips direction inside-out.
            Type::Neg(inner) => self.message(inner, dir.flip()),
            Type::Proto(name, args) => {
                if !args.is_empty() {
                    return Err(UntranslatableError(format!(
                        "parameterized protocol {name} (the generator avoids nested recursion)"
                    )));
                }
                self.protocol(*name, dir)
            }
            // Ordinary types promoted to protocols: one interaction.
            other => Ok(CfType::Msg(dir, self.value_payload(other)?)),
        }
    }

    /// Inlines the declaration of `name` as a recursive choice/branch.
    fn protocol(&mut self, name: Symbol, dir: Dir) -> Result<CfType, UntranslatableError> {
        let binder = format!(
            "{}_{}",
            name.as_str().to_lowercase(),
            if dir == Dir::Out { "o" } else { "i" }
        );
        if self.stack.contains(&(name, dir)) {
            return Ok(CfType::var(binder));
        }
        let decl = self
            .decls
            .protocol(name)
            .ok_or_else(|| UntranslatableError(format!("unknown protocol {name}")))?
            .clone();
        self.stack.push((name, dir));
        let body = if decl.ctors.len() == 1 {
            // Single-constructor protocols omit the tag (Fig. 9).
            let segs = decl.ctors[0]
                .args
                .iter()
                .map(|a| self.message(a, dir))
                .collect::<Result<Vec<_>, _>>()?;
            CfType::seq_all(segs)
        } else {
            let branches = decl
                .ctors
                .iter()
                .map(|c| {
                    let segs = c
                        .args
                        .iter()
                        .map(|a| self.message(a, dir))
                        .collect::<Result<Vec<_>, _>>()?;
                    Ok((c.tag.as_str().to_owned(), CfType::seq_all(segs)))
                })
                .collect::<Result<Vec<_>, UntranslatableError>>()?;
            CfType::choice(dir, branches)
        };
        self.stack.pop();
        // Tie the knot only if the body actually recurses.
        if body.free_vars().contains(&binder) {
            Ok(CfType::rec(binder, body))
        } else {
            Ok(body)
        }
    }

    /// Payload values of kind T: base types, unit, pairs, sessions.
    fn value_payload(&mut self, ty: &Type) -> Result<Payload, UntranslatableError> {
        Ok(match ty {
            Type::Unit => Payload::Unit,
            Type::Base(BaseType::Int) => Payload::Int,
            Type::Base(BaseType::Bool) => Payload::Bool,
            Type::Base(BaseType::Char) => Payload::Char,
            Type::Base(BaseType::Str) => Payload::Str,
            Type::Var(v) => Payload::Var(v.as_str().to_owned()),
            Type::Pair(a, b) => Payload::Pair(
                Box::new(self.value_payload(a)?),
                Box::new(self.value_payload(b)?),
            ),
            Type::EndIn | Type::EndOut | Type::In(..) | Type::Out(..) | Type::Dual(_) => {
                Payload::Session(Box::new(self.session(ty)?))
            }
            other => return Err(UntranslatableError(format!("unsupported payload: {other}"))),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use algst_core::protocol::{Ctor, ProtocolDecl};

    /// The paper's Fig. 9 instance:
    /// `protocol Repeat x = More x (Repeat x) | Quit` (instantiated at Int
    /// by the generator's unparameterized discipline) with type
    /// `?Repeat Int . !(Char, End!) . End!`.
    fn fig9() -> (Declarations, Type) {
        let mut d = Declarations::new();
        d.add_protocol(ProtocolDecl {
            name: Symbol::intern("RepeatF9"),
            params: vec![],
            ctors: vec![
                Ctor::new("MoreF9", vec![Type::int(), Type::proto("RepeatF9", vec![])]),
                Ctor::new("QuitF9", vec![]),
            ],
        })
        .unwrap();
        d.validate().unwrap();
        let ty = Type::input(
            Type::proto("RepeatF9", vec![]),
            Type::output(Type::pair(Type::char(), Type::EndOut), Type::EndOut),
        );
        (d, ty)
    }

    #[test]
    fn fig9_translation_matches_paper_shape() {
        let (d, ty) = fig9();
        let mut s = Session::new();
        let cf = to_freest(&mut s, &d, &ty).unwrap();
        let s = cf.to_string();
        // (rec repeatf9_i. &{MoreF9: ?Int; repeatf9_i, QuitF9: Skip}); !(Char, End!); End!
        assert!(s.contains("rec repeatf9_i"), "{s}");
        assert!(s.contains("MoreF9: ?Int; repeatf9_i"), "{s}");
        assert!(s.contains("QuitF9: Skip"), "{s}");
        assert!(s.contains("!(Char, End!)"), "{s}");
        assert!(s.ends_with("End!"), "{s}");
    }

    #[test]
    fn sending_context_uses_internal_choice() {
        let (d, _) = fig9();
        let mut s = Session::new();
        let ty = Type::output(Type::proto("RepeatF9", vec![]), Type::EndOut);
        let cf = to_freest(&mut s, &d, &ty).unwrap();
        assert!(cf.to_string().contains("+{MoreF9: !Int"), "{cf}");
    }

    #[test]
    fn negation_flips_the_inlined_direction() {
        let (d, _) = fig9();
        let mut s = Session::new();
        let ty = Type::output(Type::neg(Type::proto("RepeatF9", vec![])), Type::EndOut);
        let cf = to_freest(&mut s, &d, &ty).unwrap();
        // !( -Repeat ) behaves as a receive of Repeat.
        assert!(cf.to_string().contains("&{MoreF9: ?Int"), "{cf}");
    }

    #[test]
    fn single_constructor_protocols_drop_the_tag() {
        let mut d = Declarations::new();
        d.add_protocol(ProtocolDecl {
            name: Symbol::intern("PairF9"),
            params: vec![],
            ctors: vec![Ctor::new("MkPairF9", vec![Type::int(), Type::char()])],
        })
        .unwrap();
        d.validate().unwrap();
        let mut s = Session::new();
        let ty = Type::output(Type::proto("PairF9", vec![]), Type::EndOut);
        let cf = to_freest(&mut s, &d, &ty).unwrap();
        // No choice tag in sight — just the field sequence.
        assert!(!cf.to_string().contains("MkPairF9"), "{cf}");
        let expected = CfType::seq_all([
            CfType::Msg(Dir::Out, Payload::Int),
            CfType::Msg(Dir::Out, Payload::Char),
            CfType::End(Dir::Out),
        ]);
        assert_eq!(
            freest::equivalent_types(&cf, &expected, 10_000),
            freest::BisimResult::Equivalent
        );
    }

    #[test]
    fn dual_variables_are_distinct() {
        let d = Declarations::new();
        let mut s = Session::new();
        let a = to_freest(&mut s, &d, &Type::dual(Type::var("sv"))).unwrap();
        let b = to_freest(&mut s, &d, &Type::var("sv")).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn normalization_happens_first() {
        // Dual(?Int.End?) translates like !Int.End!.
        let d = Declarations::new();
        let mut s = Session::new();
        let a = to_freest(
            &mut s,
            &d,
            &Type::dual(Type::input(Type::int(), Type::EndIn)),
        )
        .unwrap();
        let b = to_freest(&mut s, &d, &Type::output(Type::int(), Type::EndOut)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn translations_are_contractive() {
        use crate::generate::{generate_instance, GenConfig};
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(21);
        let mut s = Session::new();
        for i in 0..40 {
            // Without deep-norm chains: the inlining translation is
            // exponential in chain depth by construction (see
            // `to_grammar` for the linear-space rendering).
            let mut cfg = GenConfig::sized(10 + 2 * i);
            cfg.deep_norms = 0.0;
            let inst = generate_instance(&mut rng, &cfg);
            let cf = to_freest(&mut s, &inst.decls, &inst.ty)
                .unwrap_or_else(|e| panic!("untranslatable {}: {e}", inst.ty));
            assert!(cf.is_contractive(), "non-contractive: {cf}");
        }
    }
}
