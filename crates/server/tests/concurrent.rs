//! Connection-layer tests for the concurrent TCP front-end: client
//! interleaving, pipelining past the batch size, slow-loris timeouts,
//! graceful drain, capacity refusal, and verdict correctness under
//! simultaneous connections sharing one engine.

use algst_core::Session;
use algst_server::{json, serve_listener, Engine, ServeConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Barrier, Mutex};
use std::time::Duration;

/// Equivalent / non-equivalent pairs with ground-truth verdicts.
const PAIRS: &[(&str, &str, bool)] = &[
    ("!Int.End!", "Dual (?Int.End?)", true),
    ("?Repeat Int.End?", "?Repeat Int.End?", true),
    ("Dual (Dual End!)", "End!", true),
    ("!Int.End!", "!Bool.End!", false),
    ("End?", "End!", false),
    ("!(-Int).End!", "!Int.End!", false),
];

/// Well-typed and ill-typed check sources (cached after first use).
const CHECKS: &[(&str, bool)] = &[
    ("main : Unit\\nmain = ()", true),
    ("main : Int\\nmain = ()", false),
];

fn send_shutdown(addr: std::net::SocketAddr) {
    let mut stream = TcpStream::connect(addr).expect("connect for shutdown");
    stream.write_all(b"{\"op\":\"shutdown\"}\n").unwrap();
    let mut line = String::new();
    let mut reader = BufReader::new(stream);
    reader.read_line(&mut line).unwrap();
    assert!(line.contains("\"shutdown\""), "unexpected: {line}");
}

/// 8 clients pipeline interleaved equiv/check traffic over one shared
/// engine; every verdict must match ground truth and every connection
/// must get its responses back in request order.
#[test]
fn eight_concurrent_clients_interleaved_verdicts() {
    let engine = Engine::with_session(4, Session::new());
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    const CLIENTS: usize = 8;
    const REQS: usize = 120;

    std::thread::scope(|scope| {
        let server = scope.spawn(|| serve_listener(&engine, &listener, ServeConfig::default()));
        let clients: Vec<_> = (0..CLIENTS)
            .map(|c| {
                scope.spawn(move || {
                    let mut stream = TcpStream::connect(addr).unwrap();
                    // One pipelined burst: requests interleave equiv and
                    // check ops, offset per client so connections hit
                    // different pairs at the same time.
                    let mut burst = String::new();
                    let mut expected: Vec<(u64, &str, bool)> = Vec::new();
                    for i in 0..REQS {
                        let id = (c * REQS + i + 1) as u64;
                        if i % 5 == 4 {
                            let (source, ok) = CHECKS[(c + i) % CHECKS.len()];
                            burst.push_str(&format!(
                                "{{\"id\":{id},\"op\":\"check\",\"source\":\"{source}\"}}\n"
                            ));
                            expected.push((id, "check", ok));
                        } else {
                            let (lhs, rhs, verdict) = PAIRS[(c + i) % PAIRS.len()];
                            burst.push_str(&format!(
                                "{{\"id\":{id},\"op\":\"equiv\",\"lhs\":\"{lhs}\",\"rhs\":\"{rhs}\"}}\n"
                            ));
                            expected.push((id, "equiv", verdict));
                        }
                    }
                    stream.write_all(burst.as_bytes()).unwrap();
                    let mut reader = BufReader::new(stream);
                    let mut line = String::new();
                    for (id, op, want) in expected {
                        line.clear();
                        assert!(reader.read_line(&mut line).unwrap() > 0, "early EOF");
                        let pairs = json::parse_object(line.trim()).unwrap();
                        // In-order demux: the next response is exactly
                        // the next request's, even at this depth.
                        assert_eq!(
                            json::get(&pairs, "id").and_then(json::Value::as_int),
                            Some(id as i64),
                            "client {c}: out-of-order response {line}"
                        );
                        assert_eq!(
                            json::get(&pairs, "op").and_then(json::Value::as_str),
                            Some(op)
                        );
                        let field = if op == "equiv" { "verdict" } else { "ok" };
                        assert_eq!(
                            json::get(&pairs, field),
                            Some(&json::Value::Bool(want)),
                            "client {c} id {id}: wrong {field} in {line}"
                        );
                    }
                })
            })
            .collect();
        for c in clients {
            c.join().unwrap();
        }
        send_shutdown(addr);
        let summary = server.join().unwrap().unwrap();
        assert!(summary.saw_shutdown);
        assert_eq!(summary.connections, CLIENTS as u64 + 1);
        assert_eq!(summary.requests, (CLIENTS * REQS) as u64 + 1);
        assert_eq!(summary.responses, summary.requests);
    });
}

/// Pipelining depth far beyond batch_max: many batches are in flight
/// per connection at once, and the demux still restores request order.
#[test]
fn pipelining_deeper_than_batch_max() {
    let engine = Engine::with_session(2, Session::new());
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let config = ServeConfig {
        batch_max: 4,
        ..ServeConfig::default()
    };

    std::thread::scope(|scope| {
        let server = scope.spawn(|| serve_listener(&engine, &listener, config));
        let mut stream = TcpStream::connect(addr).unwrap();
        const DEPTH: usize = 300; // 75 batches of 4 for one connection
        let mut burst = String::new();
        for i in 0..DEPTH {
            let (lhs, rhs, _) = PAIRS[i % PAIRS.len()];
            burst.push_str(&format!(
                "{{\"id\":{},\"op\":\"equiv\",\"lhs\":\"{lhs}\",\"rhs\":\"{rhs}\"}}\n",
                i + 1
            ));
        }
        stream.write_all(burst.as_bytes()).unwrap();
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        for i in 0..DEPTH {
            line.clear();
            assert!(reader.read_line(&mut line).unwrap() > 0, "early EOF at {i}");
            let pairs = json::parse_object(line.trim()).unwrap();
            assert_eq!(
                json::get(&pairs, "id").and_then(json::Value::as_int),
                Some(i as i64 + 1),
                "out of order at {i}: {line}"
            );
            let (_, _, want) = PAIRS[i % PAIRS.len()];
            assert_eq!(json::get(&pairs, "verdict"), Some(&json::Value::Bool(want)));
        }
        drop(reader);
        send_shutdown(addr);
        server.join().unwrap().unwrap();
    });
}

/// A slow-loris client (half a line, then silence) is cut off by the
/// read timeout with an error response; other connections are not.
#[test]
fn slow_loris_client_hits_the_read_timeout() {
    let engine = Engine::with_session(2, Session::new());
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let config = ServeConfig {
        read_timeout: Some(Duration::from_millis(200)),
        ..ServeConfig::default()
    };

    std::thread::scope(|scope| {
        let server = scope.spawn(|| serve_listener(&engine, &listener, config));
        let mut loris = TcpStream::connect(addr).unwrap();
        loris.write_all(b"{\"op\":\"equiv\",\"lhs\":\"!In").unwrap();
        // While the loris dangles, a live client gets served.
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(b"{\"op\":\"equiv\",\"lhs\":\"End!\",\"rhs\":\"Dual End?\"}\n")
            .unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let pairs = json::parse_object(line.trim()).unwrap();
        assert_eq!(json::get(&pairs, "verdict"), Some(&json::Value::Bool(true)));
        drop(reader);
        drop(stream);
        // The loris gets a timeout error and EOF, never an answer to its
        // half-request.
        let mut loris_reader = BufReader::new(loris.try_clone().unwrap());
        line.clear();
        loris_reader.read_line(&mut line).unwrap();
        let pairs = json::parse_object(line.trim()).unwrap();
        let error = json::get(&pairs, "error")
            .and_then(json::Value::as_str)
            .unwrap_or_default()
            .to_owned();
        assert!(error.contains("read timeout"), "unexpected: {line}");
        line.clear();
        assert_eq!(
            loris_reader.read_line(&mut line).unwrap(),
            0,
            "expected EOF"
        );
        send_shutdown(addr);
        server.join().unwrap().unwrap();
    });
}

/// Graceful drain: several clients write pipelined bursts (without
/// reading), then `shutdown` lands on a separate connection mid-stream.
/// Every request already sent must still be answered — each client
/// reads its full burst back, in order, before its socket closes.
#[test]
fn drain_on_shutdown_answers_every_in_flight_request() {
    let engine = Engine::with_session(4, Session::new());
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    const CLIENTS: usize = 4;
    const BURST: usize = 150;
    // All clients written + shutdown sender.
    let written = Barrier::new(CLIENTS + 1);

    std::thread::scope(|scope| {
        let server = scope.spawn(|| serve_listener(&engine, &listener, ServeConfig::default()));
        let written = &written;
        let clients: Vec<_> = (0..CLIENTS)
            .map(|c| {
                scope.spawn(move || {
                    let mut stream = TcpStream::connect(addr).unwrap();
                    let mut burst = String::new();
                    for i in 0..BURST {
                        let (lhs, rhs, _) = PAIRS[(c + i) % PAIRS.len()];
                        burst.push_str(&format!(
                            "{{\"id\":{},\"op\":\"equiv\",\"lhs\":\"{lhs}\",\"rhs\":\"{rhs}\"}}\n",
                            i + 1
                        ));
                    }
                    stream.write_all(burst.as_bytes()).unwrap();
                    // Burst fully written (it is at least in the kernel
                    // buffers): now shutdown may fire.
                    written.wait();
                    let mut reader = BufReader::new(stream);
                    let mut line = String::new();
                    let mut got = 0usize;
                    loop {
                        line.clear();
                        if reader.read_line(&mut line).unwrap() == 0 {
                            break; // drained and closed
                        }
                        let pairs = json::parse_object(line.trim()).unwrap();
                        got += 1;
                        assert_eq!(
                            json::get(&pairs, "id").and_then(json::Value::as_int),
                            Some(got as i64),
                            "client {c}: out of order during drain: {line}"
                        );
                        let (_, _, want) = PAIRS[(c + got - 1) % PAIRS.len()];
                        assert_eq!(json::get(&pairs, "verdict"), Some(&json::Value::Bool(want)));
                    }
                    assert_eq!(got, BURST, "client {c}: drain dropped in-flight requests");
                })
            })
            .collect();
        written.wait();
        send_shutdown(addr);
        for c in clients {
            c.join().unwrap();
        }
        let summary = server.join().unwrap().unwrap();
        assert!(summary.saw_shutdown);
        assert_eq!(summary.requests, (CLIENTS * BURST) as u64 + 1);
        assert_eq!(summary.responses, summary.requests);
    });
}

/// Clients past `max_conns` are refused with an error line; capacity
/// freed by a closing client is reusable.
#[test]
fn over_capacity_clients_are_refused() {
    let engine = Engine::with_session(1, Session::new());
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let config = ServeConfig {
        max_conns: 1,
        ..ServeConfig::default()
    };

    std::thread::scope(|scope| {
        let server = scope.spawn(|| serve_listener(&engine, &listener, config));
        // First client occupies the only slot (held open, interactive).
        let mut held = TcpStream::connect(addr).unwrap();
        held.write_all(b"{\"op\":\"equiv\",\"lhs\":\"End!\",\"rhs\":\"Dual End?\"}\n")
            .unwrap();
        let mut held_reader = BufReader::new(held.try_clone().unwrap());
        let mut line = String::new();
        held_reader.read_line(&mut line).unwrap();
        assert!(line.contains("\"verdict\":true"), "unexpected: {line}");
        // Second client is refused.
        let refused = TcpStream::connect(addr).unwrap();
        let mut refused_reader = BufReader::new(refused);
        line.clear();
        refused_reader.read_line(&mut line).unwrap();
        assert!(line.contains("capacity"), "unexpected: {line}");
        line.clear();
        assert_eq!(refused_reader.read_line(&mut line).unwrap(), 0);
        // Freeing the slot lets a new client in.
        drop(held_reader);
        drop(held);
        // The slot frees when the server notices the EOF; retry briefly.
        let mut served = false;
        for _ in 0..100 {
            let mut retry = TcpStream::connect(addr).unwrap();
            retry
                .write_all(b"{\"op\":\"equiv\",\"lhs\":\"End!\",\"rhs\":\"Dual End?\"}\n")
                .unwrap();
            let mut retry_reader = BufReader::new(retry);
            line.clear();
            retry_reader.read_line(&mut line).unwrap();
            if line.contains("\"verdict\":true") {
                served = true;
                break;
            }
            assert!(line.contains("capacity"), "unexpected: {line}");
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(served, "slot never freed after client disconnect");
        send_shutdown(addr);
        server.join().unwrap().unwrap();
    });
}

/// Heavy shared-engine cross-talk: all connections ask about the same
/// pairs concurrently, so verdict-cache and store publication races
/// would surface as wrong verdicts; counts are checked via `stats`.
#[test]
fn verdicts_stay_correct_under_connection_cross_talk() {
    let engine = Engine::with_session(4, Session::new());
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    const CLIENTS: usize = 8;
    const ROUNDS: usize = 40;
    let wrong = AtomicUsize::new(0);
    let answered = Mutex::new(0u64);

    std::thread::scope(|scope| {
        let server = scope.spawn(|| serve_listener(&engine, &listener, ServeConfig::default()));
        let wrong = &wrong;
        let answered = &answered;
        let clients: Vec<_> = (0..CLIENTS)
            .map(|c| {
                scope.spawn(move || {
                    // Interactive (depth-1) client: every round waits for
                    // its answer, maximizing interleaving across conns.
                    let mut stream = TcpStream::connect(addr).unwrap();
                    let mut reader = BufReader::new(stream.try_clone().unwrap());
                    let mut line = String::new();
                    for i in 0..ROUNDS {
                        let (lhs, rhs, want) = PAIRS[(c * 3 + i) % PAIRS.len()];
                        stream
                            .write_all(
                                format!(
                                    "{{\"op\":\"equiv\",\"lhs\":\"{lhs}\",\"rhs\":\"{rhs}\"}}\n"
                                )
                                .as_bytes(),
                            )
                            .unwrap();
                        line.clear();
                        reader.read_line(&mut line).unwrap();
                        if !line.contains(&format!("\"verdict\":{want}")) {
                            wrong.fetch_add(1, Ordering::Relaxed);
                        }
                        *answered.lock().unwrap() += 1;
                    }
                })
            })
            .collect();
        for c in clients {
            c.join().unwrap();
        }
        assert_eq!(wrong.load(Ordering::Relaxed), 0, "verdict corruption");
        assert_eq!(*answered.lock().unwrap(), (CLIENTS * ROUNDS) as u64);
        // Stats via a live connection report the connection gauges.
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(b"{\"op\":\"stats\"}\n").unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let pairs = json::parse_object(line.trim()).unwrap();
        assert_eq!(
            json::get(&pairs, "conns_accepted").and_then(json::Value::as_int),
            Some(CLIENTS as i64 + 1)
        );
        assert!(
            json::get(&pairs, "requests")
                .and_then(json::Value::as_int)
                .unwrap()
                >= (CLIENTS * ROUNDS) as i64
        );
        drop(reader);
        drop(stream);
        send_shutdown(addr);
        let summary = server.join().unwrap().unwrap();
        assert!(summary.saw_shutdown);
    });
}

/// A drop-mid-batch client (full request burst, half a trailing line,
/// never reads) must not panic the writer or stall the other
/// connections that are mid-traffic at the same moment.
#[test]
fn abrupt_disconnect_does_not_stall_other_connections() {
    let engine = Engine::with_session(2, Session::new());
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();

    std::thread::scope(|scope| {
        let server = scope.spawn(|| serve_listener(&engine, &listener, ServeConfig::default()));
        // The rude client: deep burst + half line, dropped without
        // reading. Its responses must be discarded quietly.
        scope.spawn(move || {
            let mut rude = TcpStream::connect(addr).unwrap();
            let mut burst = String::new();
            for i in 0..400 {
                let (lhs, rhs, _) = PAIRS[i % PAIRS.len()];
                burst.push_str(&format!(
                    "{{\"op\":\"equiv\",\"lhs\":\"{lhs}\",\"rhs\":\"{rhs}\"}}\n"
                ));
            }
            burst.push_str("{\"op\":\"equiv\",\"lhs\":\"!In");
            rude.write_all(burst.as_bytes()).unwrap();
            std::thread::sleep(Duration::from_millis(50));
            // Dropped with unread responses pending: likely a reset.
        });
        // Meanwhile a polite client runs interactive traffic throughout.
        let mut stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut line = String::new();
        for i in 0..60 {
            let (lhs, rhs, want) = PAIRS[i % PAIRS.len()];
            stream
                .write_all(
                    format!("{{\"op\":\"equiv\",\"lhs\":\"{lhs}\",\"rhs\":\"{rhs}\"}}\n")
                        .as_bytes(),
                )
                .unwrap();
            line.clear();
            assert!(reader.read_line(&mut line).unwrap() > 0, "stalled at {i}");
            assert!(
                line.contains(&format!("\"verdict\":{want}")),
                "round {i}: {line}"
            );
        }
        drop(reader);
        drop(stream);
        send_shutdown(addr);
        let summary = server.join().unwrap().unwrap();
        assert!(summary.saw_shutdown);
    });
}

/// Sanity check on the test table itself, so PAIRS rot is caught here
/// rather than as confusing server assertions.
#[test]
fn pair_table_matches_ground_truth() {
    let mut session = Session::new();
    for (lhs, rhs, want) in PAIRS {
        let l = algst_server::resolve::type_from_str(lhs).unwrap();
        let r = algst_server::resolve::type_from_str(rhs).unwrap();
        assert_eq!(session.equivalent(&l, &r), *want, "{lhs} vs {rhs}");
    }
}
