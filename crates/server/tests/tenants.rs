//! Tenant lifecycle edge cases (ISSUE 10 acceptance): eviction under
//! in-flight load, `--max-tenants` overflow, exact quota boundaries,
//! default-tenant wire back-compat, and the zero-lock criterion — a
//! 200K-request warm replay routed through the tenant registry takes
//! exactly zero registry lock acquisitions and zero store/cache lock
//! acquisitions in any tenant engine.

use algst_core::Session;
use algst_gen::workload::tenant_workloads;
use algst_server::{
    json, serve_session, serve_session_tenants, Engine, Op, Request, Response, ServeConfig,
    TenantConfig, TenantQuotas, TenantRegistry, ThrottleKind,
};
use std::sync::Arc;

fn equiv(id: u64, lhs: &str, rhs: &str) -> Request {
    Request {
        id,
        op: Op::Equiv {
            lhs: lhs.into(),
            rhs: rhs.into(),
        },
    }
}

#[test]
fn eviction_under_inflight_load_keeps_the_held_engine_answering() {
    // A connection mid-batch holds an `Arc<TenantHandle>`; eviction
    // removes the tenant from the registry snapshot but must not tear
    // down the engine under the held handle — the store dies only when
    // the last reference drops.
    let registry = TenantRegistry::new(TenantConfig {
        max_tenants: 1,
        ..TenantConfig::default()
    });
    let mut view = registry.view();
    let held = registry.tenant(&mut view, "alpha");
    let warmup = held
        .engine()
        .process(vec![equiv(1, "!Int.End!", "Dual (?Int.End?)")]);
    assert!(matches!(warmup[0], Response::Equiv { verdict: true, .. }));

    // Creating "beta" overflows max_tenants = 1 and evicts "alpha".
    registry.tenant(&mut view, "beta");
    assert!(
        registry.resolve(&mut view, "alpha").is_none(),
        "alpha must be gone from the snapshot"
    );
    assert_eq!(registry.stats().evictions, 1);

    // The in-flight holder still gets answers — warm ones, from the
    // same engine it started on.
    let after = held
        .engine()
        .process(vec![equiv(2, "!Int.End!", "Dual (?Int.End?)")]);
    assert!(matches!(
        after[0],
        Response::Equiv {
            verdict: true,
            warm: true,
            ..
        }
    ));

    // The registry dropped its reference at eviction: ours is the last,
    // so dropping it actually returns the engine (and its store).
    assert_eq!(
        Arc::strong_count(&held),
        1,
        "eviction must release the registry's reference while a batch is in flight"
    );
    drop(held);

    // Recontacting the evicted tenant builds a cold engine.
    let back = registry.tenant(&mut view, "alpha");
    assert_eq!(registry.stats().recreations, 1);
    let cold = back
        .engine()
        .process(vec![equiv(3, "!Int.End!", "Dual (?Int.End?)")]);
    assert!(matches!(
        cold[0],
        Response::Equiv {
            verdict: true,
            warm: false,
            ..
        }
    ));
}

#[test]
fn max_tenants_overflow_evicts_the_lru_tenant() {
    let registry = TenantRegistry::new(TenantConfig {
        max_tenants: 2,
        ..TenantConfig::default()
    });
    let mut view = registry.view();
    registry.tenant(&mut view, "a");
    registry.tenant(&mut view, "b");
    // Touch "a" again so "b" is the least recently active.
    registry.admit(&registry.tenant(&mut view, "a"), 1);

    registry.tenant(&mut view, "c");
    assert!(registry.resolve(&mut view, "b").is_none(), "b was the LRU");
    assert!(registry.resolve(&mut view, "a").is_some());
    assert!(registry.resolve(&mut view, "c").is_some());
    let stats = registry.stats();
    assert_eq!((stats.tenants, stats.evictions), (2, 1));
}

#[test]
fn quota_boundaries_grant_exactly_at_limit() {
    // In-flight cap: a batch of exactly max_inflight is granted in
    // full; the next request is refused as quota_exceeded until a slot
    // completes.
    let registry = TenantRegistry::new(TenantConfig {
        quotas: TenantQuotas {
            max_inflight: 4,
            ..TenantQuotas::default()
        },
        ..TenantConfig::default()
    });
    let mut view = registry.view();
    let handle = registry.tenant(&mut view, "t");
    let at_limit = registry.admit(&handle, 4);
    assert_eq!(at_limit.granted, 4);
    assert_eq!(at_limit.kind, None, "exactly-at-limit must not refuse");
    let over = registry.admit(&handle, 1);
    assert_eq!(over.granted, 0);
    assert_eq!(over.kind, Some(ThrottleKind::QuotaExceeded));
    handle.complete(1);
    let freed = registry.admit(&handle, 1);
    assert_eq!((freed.granted, freed.kind), (1, None));

    // Rate limit: a burst-sized batch is granted in full, the next
    // request is throttled (the bucket refills far slower than the test
    // runs).
    let registry = TenantRegistry::new(TenantConfig {
        quotas: TenantQuotas {
            rate_limit: 10,
            burst: 5,
            ..TenantQuotas::default()
        },
        ..TenantConfig::default()
    });
    let mut view = registry.view();
    let handle = registry.tenant(&mut view, "t");
    let at_burst = registry.admit(&handle, 5);
    assert_eq!(at_burst.granted, 5);
    assert_eq!(at_burst.kind, None, "exactly-at-burst must not refuse");
    let over = registry.admit(&handle, 1);
    assert_eq!(over.granted, 0);
    assert_eq!(over.kind, Some(ThrottleKind::Throttled));
    assert_eq!(registry.stats().throttled, 1);
}

/// Strips the per-response `ns` timing (the only nondeterministic
/// field) and keeps everything else for exact comparison.
fn parsed_without_ns(output: &[u8]) -> Vec<Vec<(String, json::Value)>> {
    String::from_utf8(output.to_vec())
        .unwrap()
        .lines()
        .map(|l| {
            json::parse_object(l)
                .unwrap_or_else(|e| panic!("bad line {l}: {e}"))
                .into_iter()
                .filter(|(k, _)| k != "ns")
                .collect()
        })
        .collect()
}

#[test]
fn tenantless_requests_behave_identically_to_single_engine_mode() {
    // The default-tenant back-compat regression: a client that never
    // says "tenant" must see exactly the responses the single-engine
    // server gave — same fields, same values, same order — including
    // error paths. (The `ns` timing is the one field that cannot be
    // bit-stable across runs.)
    let input = concat!(
        "{\"id\":1,\"op\":\"equiv\",\"lhs\":\"!Int.End!\",\"rhs\":\"Dual (?Int.End?)\"}\n",
        "{\"id\":2,\"op\":\"equiv\",\"lhs\":\"End!\",\"rhs\":\"End?\"}\n",
        "not json at all\n",
        "{\"id\":4,\"op\":\"equiv\",\"lhs\":\"!Int.End!\",\"rhs\":\"Dual (?Int.End?)\"}\n",
        "{\"id\":5,\"op\":\"check\",\"source\":\"main : Unit\\nmain = ()\"}\n",
        "{\"id\":6,\"op\":\"frobnicate\"}\n",
    );

    let engine = Engine::with_session(1, Session::new());
    let mut single_out = Vec::new();
    serve_session(
        &engine,
        input.as_bytes(),
        &mut single_out,
        ServeConfig::default(),
    )
    .unwrap();

    let registry = TenantRegistry::new(TenantConfig::default());
    let mut routed_out = Vec::new();
    serve_session_tenants(
        &registry,
        input.as_bytes(),
        &mut routed_out,
        ServeConfig::default(),
    )
    .unwrap();

    assert_eq!(
        parsed_without_ns(&single_out),
        parsed_without_ns(&routed_out),
        "routed default-tenant output diverged from single-engine output\n\
         --- single ---\n{}\n--- routed ---\n{}",
        String::from_utf8_lossy(&single_out),
        String::from_utf8_lossy(&routed_out),
    );
}

#[test]
fn warm_200k_replay_through_the_tenant_router_takes_zero_locks() {
    // ISSUE 10 acceptance: the warm path stays zero-lock under
    // tenancy. Three tenants over disjoint universes; after one full
    // pass has warmed every pair, replaying 200K+ requests through the
    // registry's resolve→admit→engine path must not acquire a single
    // registry lock, store lock, or verdict-cache lock.
    const TENANTS: usize = 3;
    const PER_TENANT: usize = 70_000; // 3 × 70K = 210K ≥ 200K replayed
    let workloads = tenant_workloads(TENANTS, 8, PER_TENANT, 23);
    let registry = TenantRegistry::new(TenantConfig::default());
    let mut view = registry.view();

    let replay = |view: &mut algst_server::TenantView, label: &str| {
        for (t, workload) in workloads.iter().enumerate() {
            let name = format!("tenant{t}");
            let mut i = 0;
            while i < workload.len() {
                let batch: Vec<Request> = (i..workload.len().min(i + 256))
                    .map(|j| {
                        let (lhs, rhs, _) = workload.request(j);
                        equiv(j as u64 + 1, &lhs.to_string(), &rhs.to_string())
                    })
                    .collect();
                i += batch.len();
                for r in registry.process(view, &name, batch) {
                    match r {
                        Response::Equiv { id, verdict, .. } => {
                            let expected = workload.request(id as usize - 1).2;
                            assert_eq!(verdict, expected, "{label} verdict for {name}");
                        }
                        other => panic!("unexpected response {other:?}"),
                    }
                }
            }
        }
    };

    replay(&mut view, "warm-up");

    let engine_locks = |registry: &TenantRegistry| -> (u64, u64) {
        registry
            .handles()
            .iter()
            .map(|h| {
                let s = h.engine().snapshot();
                (s.store_locks, s.cache_locks)
            })
            .fold((0, 0), |(a, b), (x, y)| (a + x, b + y))
    };
    let (store_before, cache_before) = engine_locks(&registry);
    // `handles()` itself takes the registry read lock, so capture the
    // registry baseline after the engine baseline and read it back
    // before the post-replay `handles()` call.
    let locks_before = registry.lock_acquisitions();

    replay(&mut view, "replay");

    assert_eq!(
        registry.lock_acquisitions(),
        locks_before,
        "a warm replay on a stable tenant set must not touch the registry locks"
    );
    let (store_after, cache_after) = engine_locks(&registry);
    assert_eq!(
        (store_after, cache_after),
        (store_before, cache_before),
        "a warm routed replay must be lock-free in every tenant engine"
    );
}
