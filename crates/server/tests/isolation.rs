//! Engine/session isolation (ISSUE 5 acceptance): two engines in one
//! process, each over its own injected [`Session`], are observably
//! independent — for `equiv` **and** for `check`, whose elaboration
//! used to leak through a process-global store.

use algst_core::{Session, Type};
use algst_server::{Engine, Op, Request, Response};

fn equiv(id: u64, lhs: &str, rhs: &str) -> Request {
    Request {
        id,
        op: Op::Equiv {
            lhs: lhs.into(),
            rhs: rhs.into(),
        },
    }
}

fn check(id: u64, source: &str) -> Request {
    Request {
        id,
        op: Op::Check {
            source: source.into(),
        },
    }
}

const MODULE: &str = "main : Unit\nmain = ()";

#[test]
fn two_engines_share_no_state() {
    let a = Engine::with_session(2, Session::new());
    let b = Engine::with_session(2, Session::new());

    // Drive engine `a` through both request families.
    let responses = a.process(vec![
        equiv(1, "!Int.End!", "Dual (?Int.End?)"),
        equiv(2, "!Int.End!", "Dual (?Int.End?)"),
        check(3, MODULE),
        check(4, MODULE),
    ]);
    assert!(matches!(
        responses[0],
        Response::Equiv {
            verdict: true,
            warm: false,
            ..
        }
    ));
    assert!(matches!(responses[1], Response::Equiv { warm: true, .. }));
    assert!(matches!(
        responses[2],
        Response::Check {
            ok: true,
            cached: false,
            ..
        }
    ));
    assert!(matches!(
        responses[3],
        Response::Check {
            ok: true,
            cached: true,
            ..
        }
    ));

    // `a` is warm across the board; `b` has seen *nothing* of it.
    let snap_a = a.snapshot();
    let snap_b = b.snapshot();
    assert!(snap_a.nodes > 0 && snap_a.equiv_entries == 1 && snap_a.module_entries == 1);
    assert_eq!(snap_b.requests, 0);
    assert_eq!(snap_b.nodes, 0, "b's store must not contain a's types");
    assert_eq!(snap_b.equiv_entries, 0, "b's verdict cache must be empty");
    assert_eq!(snap_b.parse_entries, 0, "b's parse cache must be empty");
    assert_eq!(snap_b.module_entries, 0, "b's module cache must be empty");
    assert_eq!(
        snap_b.nrm_hits + snap_b.nrm_misses,
        0,
        "b's store must have normalized nothing"
    );

    // The same traffic on `b` is answered correctly but *cold*: its
    // first contact is a verdict-cache miss and an uncached check.
    let responses = b.process(vec![
        equiv(1, "!Int.End!", "Dual (?Int.End?)"),
        check(2, MODULE),
    ]);
    assert!(matches!(
        responses[0],
        Response::Equiv {
            verdict: true,
            warm: false,
            ..
        }
    ));
    assert!(matches!(
        responses[1],
        Response::Check {
            ok: true,
            cached: false,
            ..
        }
    ));

    // Counters stay independent afterwards, too.
    let snap_a2 = a.snapshot();
    let snap_b2 = b.snapshot();
    assert_eq!(snap_a2.requests, 4);
    assert_eq!(snap_b2.requests, 2);
    assert_eq!(snap_a2.equiv_misses, 1);
    assert_eq!(snap_b2.equiv_misses, 1);
}

#[test]
fn engine_check_interns_into_the_injected_store_only() {
    // The check op's elaboration must land in the engine's own store —
    // the nodes counter moves on the injected session's store, while an
    // unrelated session observes nothing.
    let session = Session::new();
    let mut outside = Session::new();
    let engine = Engine::with_session(1, session);

    let before = engine.snapshot().nodes;
    let responses = engine.process(vec![check(
        1,
        "ping : forall (s:S). !Int.s -> s\nping [s] c = sendInt [s] 7 c\n\nmain : Unit\nmain = ()",
    )]);
    assert!(matches!(responses[0], Response::Check { ok: true, .. }));
    assert!(
        engine.snapshot().nodes > before,
        "elaborated signatures must intern into the engine's store"
    );
    assert_eq!(
        outside.stats().nodes,
        0,
        "an unrelated session must observe none of the engine's work"
    );
}

#[test]
fn sessions_reinterpret_each_others_ids() {
    // TypeIds are meaningful only within one store: the "same" id names
    // different types in different sessions once their intern orders
    // diverge — so ids can never silently cross an isolation boundary.
    let mut a = Session::new();
    let mut b = Session::new();
    let t = Type::output(Type::int(), Type::input(Type::bool(), Type::EndIn));
    b.intern(&Type::pair(Type::string(), Type::string()));
    let in_a = a.intern(&t);
    let in_b = b.intern(&t);
    assert_ne!(in_a, in_b, "intern orders diverged, so ids must too");
    assert!(
        !b.extract(in_a).alpha_eq(&t),
        "a's id re-read in b names a different type"
    );
}
