//! Engine/session isolation (ISSUE 5 acceptance): two engines in one
//! process, each over its own injected [`Session`], are observably
//! independent — for `equiv` **and** for `check`, whose elaboration
//! used to leak through a process-global store. ISSUE 10 extends the
//! two-engine pairing to N dynamically created tenants in one
//! [`TenantRegistry`], including across an eviction/recreation cycle.

use algst_core::{Session, Type};
use algst_server::{Engine, Op, Request, Response, TenantConfig, TenantRegistry};
use std::sync::Arc;

fn equiv(id: u64, lhs: &str, rhs: &str) -> Request {
    Request {
        id,
        op: Op::Equiv {
            lhs: lhs.into(),
            rhs: rhs.into(),
        },
    }
}

fn check(id: u64, source: &str) -> Request {
    Request {
        id,
        op: Op::Check {
            source: source.into(),
        },
    }
}

const MODULE: &str = "main : Unit\nmain = ()";

#[test]
fn two_engines_share_no_state() {
    let a = Engine::with_session(2, Session::new());
    let b = Engine::with_session(2, Session::new());

    // Drive engine `a` through both request families.
    let responses = a.process(vec![
        equiv(1, "!Int.End!", "Dual (?Int.End?)"),
        equiv(2, "!Int.End!", "Dual (?Int.End?)"),
        check(3, MODULE),
        check(4, MODULE),
    ]);
    assert!(matches!(
        responses[0],
        Response::Equiv {
            verdict: true,
            warm: false,
            ..
        }
    ));
    assert!(matches!(responses[1], Response::Equiv { warm: true, .. }));
    assert!(matches!(
        responses[2],
        Response::Check {
            ok: true,
            cached: false,
            ..
        }
    ));
    assert!(matches!(
        responses[3],
        Response::Check {
            ok: true,
            cached: true,
            ..
        }
    ));

    // `a` is warm across the board; `b` has seen *nothing* of it.
    let snap_a = a.snapshot();
    let snap_b = b.snapshot();
    assert!(snap_a.nodes > 0 && snap_a.equiv_entries == 1 && snap_a.module_entries == 1);
    assert_eq!(snap_b.requests, 0);
    assert_eq!(snap_b.nodes, 0, "b's store must not contain a's types");
    assert_eq!(snap_b.equiv_entries, 0, "b's verdict cache must be empty");
    assert_eq!(snap_b.parse_entries, 0, "b's parse cache must be empty");
    assert_eq!(snap_b.module_entries, 0, "b's module cache must be empty");
    assert_eq!(
        snap_b.nrm_hits + snap_b.nrm_misses,
        0,
        "b's store must have normalized nothing"
    );

    // The same traffic on `b` is answered correctly but *cold*: its
    // first contact is a verdict-cache miss and an uncached check.
    let responses = b.process(vec![
        equiv(1, "!Int.End!", "Dual (?Int.End?)"),
        check(2, MODULE),
    ]);
    assert!(matches!(
        responses[0],
        Response::Equiv {
            verdict: true,
            warm: false,
            ..
        }
    ));
    assert!(matches!(
        responses[1],
        Response::Check {
            ok: true,
            cached: false,
            ..
        }
    ));

    // Counters stay independent afterwards, too.
    let snap_a2 = a.snapshot();
    let snap_b2 = b.snapshot();
    assert_eq!(snap_a2.requests, 4);
    assert_eq!(snap_b2.requests, 2);
    assert_eq!(snap_a2.equiv_misses, 1);
    assert_eq!(snap_b2.equiv_misses, 1);
}

#[test]
fn engine_check_interns_into_the_injected_store_only() {
    // The check op's elaboration must land in the engine's own store —
    // the nodes counter moves on the injected session's store, while an
    // unrelated session observes nothing.
    let session = Session::new();
    let mut outside = Session::new();
    let engine = Engine::with_session(1, session);

    let before = engine.snapshot().nodes;
    let responses = engine.process(vec![check(
        1,
        "ping : forall (s:S). !Int.s -> s\nping [s] c = sendInt [s] 7 c\n\nmain : Unit\nmain = ()",
    )]);
    assert!(matches!(responses[0], Response::Check { ok: true, .. }));
    assert!(
        engine.snapshot().nodes > before,
        "elaborated signatures must intern into the engine's store"
    );
    assert_eq!(
        outside.stats().nodes,
        0,
        "an unrelated session must observe none of the engine's work"
    );
}

#[test]
fn n_dynamic_tenants_are_pairwise_isolated_across_eviction() {
    // The two-engine pairing above, generalized: N tenants created on
    // demand in one registry, each over its own universe (a send chain
    // of tenant-specific depth). Every pair of tenants must be as
    // isolated as `a` and `b` are — and the isolation must survive an
    // LRU eviction/recreation cycle.
    const N: usize = 6;
    let registry = TenantRegistry::new(TenantConfig {
        max_tenants: N,
        ..TenantConfig::default()
    });
    let mut view = registry.view();

    // Tenant t's pair: t+1 nested `!Int.` sends vs the dual of the
    // matching receive chain — equivalent, and unique to the tenant.
    let pair = |t: usize| {
        let sends = "!Int.".repeat(t + 1);
        let recvs = "?Int.".repeat(t + 1);
        (format!("{sends}End!"), format!("Dual ({recvs}End?)"))
    };
    let ask = |view: &mut algst_server::TenantView, name: &str, t: usize, id: u64| {
        let (lhs, rhs) = pair(t);
        match registry.process(view, name, vec![equiv(id, &lhs, &rhs)])[..] {
            [Response::Equiv { verdict, warm, .. }] => (verdict, warm),
            ref other => panic!("unexpected responses {other:?}"),
        }
    };

    // Own pair: correct and cold on first contact (the tenant was
    // created by this very request), correct and warm on the second.
    for t in 0..N {
        let name = format!("team{t}");
        assert_eq!(ask(&mut view, &name, t, 1), (true, false), "{name} cold");
        assert_eq!(ask(&mut view, &name, t, 2), (true, true), "{name} warm");
    }

    // Pairwise: stores are distinct allocations, and every tenant is
    // cold on every *other* tenant's pair even though its owner is warm.
    let handles = registry.handles();
    assert_eq!(handles.len(), N);
    for (i, a) in handles.iter().enumerate() {
        for b in handles.iter().skip(i + 1) {
            assert!(
                !Arc::ptr_eq(a.engine().store(), b.engine().store()),
                "{} and {} share a store allocation",
                a.name(),
                b.name()
            );
        }
    }
    for t in 0..N {
        let neighbor = format!("team{}", (t + 1) % N);
        assert_eq!(
            ask(&mut view, &neighbor, t, 3),
            (true, false),
            "{neighbor} must be cold on team{t}'s pair"
        );
    }

    // Eviction/recreation: the registry is at capacity, so one more
    // tenant evicts the LRU — team0, untouched since the neighbor pass
    // wrapped around to warm every other tenant after it. Recreated,
    // it is cold again while a surviving neighbor kept its warmth.
    for t in 1..N {
        ask(&mut view, &format!("team{t}"), t, 4);
    }
    ask(&mut view, "extra", 0, 5);
    assert!(
        registry.resolve(&mut view, "team0").is_none(),
        "team0 was the LRU victim"
    );
    assert_eq!(registry.stats().evictions, 1);
    // Re-touch survivors so recreating team0 (at capacity again) evicts
    // "extra" rather than a tenant the final assertions observe.
    for t in 1..N {
        ask(&mut view, &format!("team{t}"), t, 6);
    }
    assert_eq!(
        ask(&mut view, "team0", 0, 7),
        (true, false),
        "recreated team0 must be cold — its old cache died with the engine"
    );
    assert_eq!(registry.stats().recreations, 1);
    assert_eq!(
        ask(&mut view, "team1", 1, 8),
        (true, true),
        "team1 must stay warm through team0's eviction/recreation"
    );
}

#[test]
fn sessions_reinterpret_each_others_ids() {
    // TypeIds are meaningful only within one store: the "same" id names
    // different types in different sessions once their intern orders
    // diverge — so ids can never silently cross an isolation boundary.
    let mut a = Session::new();
    let mut b = Session::new();
    let t = Type::output(Type::int(), Type::input(Type::bool(), Type::EndIn));
    b.intern(&Type::pair(Type::string(), Type::string()));
    let in_a = a.intern(&t);
    let in_b = b.intern(&t);
    assert_ne!(in_a, in_b, "intern orders diverged, so ids must too");
    assert!(
        !b.extract(in_a).alpha_eq(&t),
        "a's id re-read in b names a different type"
    );
}
