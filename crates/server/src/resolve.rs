//! Standalone type resolution for `equiv` requests.
//!
//! The checker's elaborator resolves surface types against a module's
//! protocol/data/alias declarations. A bare equivalence query has no
//! module, and does not need one: the paper's equivalence is *nominal*
//! in protocol names — `P ā ≡ P b̄` iff the arguments are equivalent
//! pointwise — so any unknown applied uppercase name can be treated as
//! an (undeclared) protocol reference without changing any verdict.
//! Builtins (`Int`, `Bool`, `Char`, `String`, `Unit`) resolve as usual;
//! lowercase names are type variables.

use algst_core::types::Type;
use algst_syntax::ast::SType;
use algst_syntax::parser::parse_type;
use std::sync::Arc;

/// Parses the surface syntax of a single type (e.g. `!Int.End!` or
/// `forall (s:S). ?Neg Int.s`) into a core [`Type`].
pub fn type_from_str(src: &str) -> Result<Type, String> {
    let st = parse_type(src).map_err(|e| e.to_string())?;
    Ok(resolve(&st))
}

fn resolve(st: &SType) -> Type {
    match st {
        SType::Unit(_) => Type::Unit,
        SType::Var(v, _) => Type::Var(*v),
        SType::Name(name, args, _) => {
            let rargs: Vec<Type> = args.iter().map(resolve).collect();
            match name.as_str() {
                "Int" if rargs.is_empty() => Type::int(),
                "Bool" if rargs.is_empty() => Type::bool(),
                "Char" if rargs.is_empty() => Type::char(),
                "String" if rargs.is_empty() => Type::string(),
                _ => Type::Proto(*name, rargs),
            }
        }
        SType::Arrow(a, b, _) => Type::Arrow(Arc::new(resolve(a)), Arc::new(resolve(b))),
        SType::Pair(a, b, _) => Type::Pair(Arc::new(resolve(a)), Arc::new(resolve(b))),
        SType::Forall(v, k, body, _) => Type::Forall(*v, *k, Arc::new(resolve(body))),
        SType::In(p, s, _) => Type::In(Arc::new(resolve(p)), Arc::new(resolve(s))),
        SType::Out(p, s, _) => Type::Out(Arc::new(resolve(p)), Arc::new(resolve(s))),
        SType::EndIn(_) => Type::EndIn,
        SType::EndOut(_) => Type::EndOut,
        SType::Dual(s, _) => Type::Dual(Arc::new(resolve(s))),
        SType::Neg(p, _) => Type::Neg(Arc::new(resolve(p))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use algst_core::Session;

    fn equivalent(t: &Type, u: &Type) -> bool {
        Session::new().equivalent(t, u)
    }

    #[test]
    fn parses_session_types() {
        let t = type_from_str("!Int.End!").unwrap();
        assert_eq!(t, Type::output(Type::int(), Type::EndOut));
        let u = type_from_str("Dual (?Int.End?)").unwrap();
        assert!(equivalent(&t, &u));
    }

    #[test]
    fn unknown_names_resolve_nominally() {
        let t = type_from_str("?Repeat Int.End?").unwrap();
        let u = type_from_str("?Repeat Int.End?").unwrap();
        assert!(equivalent(&t, &u));
        let v = type_from_str("?Repeat Bool.End?").unwrap();
        assert!(!equivalent(&t, &v));
    }

    #[test]
    fn forall_and_variables() {
        let t = type_from_str("forall (s:S). !Int.s -> s").unwrap();
        let u = type_from_str("forall (r:S). !Int.r -> r").unwrap();
        assert!(equivalent(&t, &u));
    }

    #[test]
    fn display_round_trips() {
        for src in [
            "!Int.End!",
            "?(-Int).End?",
            "forall (s:S). Dual s -> (Int, s)",
            "!Repeat (Int, Bool).?Neg Char.End?",
        ] {
            let t = type_from_str(src).unwrap();
            let back = type_from_str(&t.to_string())
                .unwrap_or_else(|e| panic!("reparse of `{t}` failed: {e}"));
            assert!(equivalent(&t, &back), "{src} changed through display");
        }
    }

    #[test]
    fn reports_parse_errors() {
        assert!(type_from_str("!Int.").is_err());
        assert!(type_from_str("").is_err());
    }
}
