//! Prometheus-style scrape endpoint (`algst serve --metrics-listen`).
//!
//! A deliberately tiny HTTP/1.0 responder: every connection gets one
//! `200 OK text/plain` response carrying the full metrics registry in
//! [exposition format](https://prometheus.io/docs/instrumenting/exposition_formats/)
//! plus the shared store's counters, then the connection closes. No
//! routing, no keep-alive, no TLS — it exists so `curl` and a scraper
//! can watch a serving process without speaking the JSON protocol,
//! and it never competes with the request path (its own thread, its
//! own listener, reads only atomics).

use crate::tenant::TenantRegistry;
use algst_core::shared::SharedStore;
use algst_obs::Registry;
use std::io::{self, ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// How long the acceptor sleeps when no scraper is connecting.
const ACCEPT_TICK: Duration = Duration::from_millis(20);

/// A running scrape endpoint. Dropping it stops the acceptor thread
/// (the in-flight response, if any, still completes).
#[derive(Debug)]
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// The bound address (useful when the caller asked for port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// Binds `addr` and serves metric scrapes on a dedicated thread until
/// the returned [`MetricsServer`] is dropped. Every HTTP request gets
/// the current [`Registry`] snapshot (stable, sorted key order) plus
/// the store's counters, `algst_`-prefixed.
pub fn serve_metrics(
    addr: &str,
    registry: Arc<Registry>,
    store: Arc<SharedStore>,
) -> io::Result<MetricsServer> {
    serve_metrics_with(addr, move || exposition(&registry, &store))
}

/// [`serve_metrics`] for a multi-tenant server: the shared registry
/// exposition (every tenant engine resolves the same metric names, so
/// their counters are already folded together) followed by the
/// tenant-labelled series of [`TenantRegistry::prometheus`]. There is
/// no single store in this mode; per-tenant `algst_tenant_store_*`
/// gauges replace the `algst_store_*` family.
pub fn serve_metrics_tenants(
    addr: &str,
    registry: Arc<Registry>,
    tenants: Arc<TenantRegistry>,
) -> io::Result<MetricsServer> {
    serve_metrics_with(addr, move || {
        let mut body = registry.snapshot().prometheus("algst_");
        body.push_str(&tenants.prometheus());
        body
    })
}

fn serve_metrics_with<F>(addr: &str, body: F) -> io::Result<MetricsServer>
where
    F: Fn() -> String + Send + 'static,
{
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let handle = std::thread::spawn({
        let stop = Arc::clone(&stop);
        move || accept_loop(&listener, &body, &stop)
    });
    Ok(MetricsServer {
        addr,
        stop,
        handle: Some(handle),
    })
}

fn accept_loop(listener: &TcpListener, body: &dyn Fn() -> String, stop: &AtomicBool) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            // Scrape errors (slow client, reset) are the scraper's
            // problem; the endpoint keeps serving.
            Ok((stream, _)) => {
                let _ = answer(stream, body);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(ACCEPT_TICK),
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => break,
        }
    }
}

/// Reads (and discards) the request head, writes one full exposition.
fn answer(mut stream: TcpStream, body: &dyn Fn() -> String) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_nonblocking(false)?;
    // Drain the request line + headers up to the blank line; we answer
    // every path identically so nothing needs parsing.
    let mut head = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                head.extend_from_slice(&chunk[..n]);
                if head.windows(4).any(|w| w == b"\r\n\r\n")
                    || head.windows(2).any(|w| w == b"\n\n")
                {
                    break;
                }
                if head.len() > 16 * 1024 {
                    break; // oversized head: answer anyway
                }
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let body = body();
    write!(
        stream,
        "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
        body.len(),
        body
    )?;
    stream.flush()
}

/// The full scrape body: the registry exposition followed by the
/// store's counters as gauges (they live in the store, not the
/// registry, because they predate it and are always on).
pub fn exposition(registry: &Registry, store: &SharedStore) -> String {
    let mut out = registry.snapshot().prometheus("algst_");
    let s = store.stats();
    for (name, value) in [
        ("store_arena_bytes", s.arena_bytes),
        ("store_bytes", s.live_bytes()),
        // The store's own pass counter; named apart from the engine's
        // registry counter `store_compactions_total` so one exposition
        // never carries two TYPE lines for the same family.
        ("store_compaction_passes_total", s.compactions),
        ("store_epoch", s.epoch),
        ("store_generation", s.generation),
        ("store_intern_entries", s.intern_entries),
        ("store_lock_acquisitions_total", s.lock_acquisitions),
        ("store_memo_entries", s.memo_entries),
        ("store_nodes", s.nodes),
        ("store_nrm_hits_total", s.nrm_hits),
        ("store_nrm_misses_total", s.nrm_misses),
        ("store_publishes_total", s.publishes),
        ("store_reclaimed_bytes", s.reclaimed_bytes),
        ("store_slow_path_total", s.slow_path),
        ("store_snapshot_bytes", s.snapshot_bytes),
        ("store_snapshot_installs_total", s.snapshot_installs),
        ("store_workers", s.workers),
    ] {
        out.push_str("# TYPE algst_");
        out.push_str(name);
        out.push_str(" gauge\nalgst_");
        out.push_str(name);
        out.push(' ');
        out.push_str(&value.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn scrape(addr: SocketAddr) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(b"GET /metrics HTTP/1.0\r\nHost: test\r\n\r\n")
            .unwrap();
        let mut text = String::new();
        BufReader::new(stream).read_to_string(&mut text).unwrap();
        text
    }

    #[test]
    fn scrape_returns_registry_and_store_metrics() {
        let registry = Arc::new(Registry::new());
        registry.counter("requests_total").add(7);
        registry.histogram("request_service_ns").record(1500);
        let store = Arc::new(SharedStore::new());
        let server = serve_metrics("127.0.0.1:0", Arc::clone(&registry), store).unwrap();
        let text = scrape(server.addr());
        assert!(text.starts_with("HTTP/1.0 200 OK"), "{text}");
        assert!(text.contains("algst_requests_total 7"), "{text}");
        assert!(
            text.contains("# TYPE algst_request_service_ns histogram"),
            "{text}"
        );
        assert!(text.contains("algst_request_service_ns_count 1"), "{text}");
        assert!(text.contains("algst_store_nodes "), "{text}");
        // A second scrape sees the same names (and any newer values).
        registry.counter("requests_total").add(1);
        let again = scrape(server.addr());
        assert!(again.contains("algst_requests_total 8"), "{again}");
    }

    #[test]
    fn tenants_scrape_carries_tenant_labelled_series() {
        use crate::protocol::{Op, Request};
        use crate::tenant::TenantConfig;
        let registry = Arc::new(Registry::new());
        let tenants = Arc::new(TenantRegistry::new(TenantConfig {
            obs: crate::engine::ObsOptions {
                registry: Arc::clone(&registry),
                ..crate::engine::ObsOptions::default()
            },
            ..TenantConfig::default()
        }));
        let mut view = tenants.view();
        tenants.process(
            &mut view,
            "acme",
            vec![Request {
                id: 1,
                op: Op::Equiv {
                    lhs: "End!".into(),
                    rhs: "End!".into(),
                },
            }],
        );
        let server =
            serve_metrics_tenants("127.0.0.1:0", Arc::clone(&registry), Arc::clone(&tenants))
                .unwrap();
        let text = scrape(server.addr());
        assert!(text.starts_with("HTTP/1.0 200 OK"), "{text}");
        // The shared engine registry and the tenant-labelled series
        // arrive in one body.
        assert!(text.contains("algst_requests_total 1"), "{text}");
        assert!(
            text.contains("algst_tenant_requests_total{tenant=\"acme\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("algst_tenant_store_bytes{tenant=\"acme\"} "),
            "{text}"
        );
        assert!(text.contains("algst_tenants 1"), "{text}");
    }
}
