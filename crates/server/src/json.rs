//! A minimal JSON-lines codec for the server protocol.
//!
//! The workspace has no registry dependencies (so no serde); the
//! protocol only ever exchanges *flat* objects whose values are strings,
//! integers, booleans or null, and this module implements exactly that:
//! [`parse_object`] for inbound request lines, and [`escape`] plus the
//! [`ObjWriter`] builder for outbound lines. Nested arrays/objects are
//! rejected — by the protocol's design there is no request that needs
//! them.
//!
//! Outbound objects are emitted in exactly the order fields are pushed
//! into the [`ObjWriter`], and every `Response::to_json` path routes
//! through it — so identical state serializes to identical bytes, run
//! to run. The `stats` and `metrics` ops lean on this: scrapers can
//! diff response lines textually.

use std::fmt::Write as _;

/// A flat JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Str(String),
    Int(i64),
    /// Fractional numbers appear only in *responses* (hit rates); no
    /// request field is fractional.
    Float(f64),
    Bool(bool),
    Null,
}

impl Value {
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(n) => Some(*n),
            _ => None,
        }
    }
}

/// Parses one line as a flat JSON object, returning its key/value pairs
/// in source order. Duplicate keys are allowed (last one wins at lookup
/// via [`get`]).
pub fn parse_object(line: &str) -> Result<Vec<(String, Value)>, String> {
    let mut p = Parser {
        bytes: line.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    p.expect(b'{')?;
    let mut pairs = Vec::new();
    p.skip_ws();
    if p.peek() == Some(b'}') {
        p.pos += 1;
    } else {
        loop {
            p.skip_ws();
            let key = p.string()?;
            p.skip_ws();
            p.expect(b':')?;
            p.skip_ws();
            let value = p.value()?;
            pairs.push((key, value));
            p.skip_ws();
            match p.next() {
                Some(b',') => continue,
                Some(b'}') => break,
                other => {
                    return Err(format!(
                        "expected ',' or '}}' in object, found {}",
                        show(other)
                    ))
                }
            }
        }
    }
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err("trailing content after JSON object".to_owned());
    }
    Ok(pairs)
}

/// Looks a key up in a parsed object (last occurrence wins).
pub fn get<'a>(pairs: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    pairs.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Escapes `s` for embedding in a JSON string literal (no surrounding
/// quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Builds one flat JSON object with **caller-controlled, deterministic
/// key order**: fields appear in exactly the order they are pushed, and
/// every value formats through one code path (integers as-is, floats
/// with four decimals, strings escaped). Serializing the same fields in
/// the same order therefore yields byte-identical lines — the stability
/// contract behind `stats` and `metrics` responses.
#[derive(Debug)]
pub struct ObjWriter {
    buf: String,
    first: bool,
}

impl Default for ObjWriter {
    fn default() -> Self {
        ObjWriter::new()
    }
}

impl ObjWriter {
    /// Starts an empty object (`{`).
    pub fn new() -> ObjWriter {
        ObjWriter {
            buf: String::from("{"),
            first: true,
        }
    }

    fn key(&mut self, key: &str) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        self.buf.push('"');
        self.buf.push_str(&escape(key));
        self.buf.push_str("\":");
    }

    /// Appends `"key":<unsigned integer>`.
    pub fn field_u64(&mut self, key: &str, value: u64) -> &mut Self {
        self.key(key);
        let _ = write!(self.buf, "{value}");
        self
    }

    /// Appends `"key":<signed integer>`.
    pub fn field_i64(&mut self, key: &str, value: i64) -> &mut Self {
        self.key(key);
        let _ = write!(self.buf, "{value}");
        self
    }

    /// Appends `"key":<float>` with four decimals (the protocol's rate
    /// format; non-finite values become `null`).
    pub fn field_f64(&mut self, key: &str, value: f64) -> &mut Self {
        self.key(key);
        if value.is_finite() {
            let _ = write!(self.buf, "{value:.4}");
        } else {
            self.buf.push_str("null");
        }
        self
    }

    /// Appends `"key":true|false`.
    pub fn field_bool(&mut self, key: &str, value: bool) -> &mut Self {
        self.key(key);
        self.buf.push_str(if value { "true" } else { "false" });
        self
    }

    /// Appends `"key":"escaped string"`.
    pub fn field_str(&mut self, key: &str, value: &str) -> &mut Self {
        self.key(key);
        self.buf.push('"');
        self.buf.push_str(&escape(value));
        self.buf.push('"');
        self
    }

    /// Appends a parsed [`Value`] (strings escaped, floats in rate
    /// format, nulls literal).
    pub fn field_value(&mut self, key: &str, value: &Value) -> &mut Self {
        match value {
            Value::Str(s) => self.field_str(key, s),
            Value::Int(n) => self.field_i64(key, *n),
            Value::Float(x) => self.field_f64(key, *x),
            Value::Bool(b) => self.field_bool(key, *b),
            Value::Null => {
                self.key(key);
                self.buf.push_str("null");
                self
            }
        }
    }

    /// Closes the object and returns the line (no trailing newline).
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

fn show(b: Option<u8>) -> String {
    match b {
        Some(b) => format!("'{}'", b as char),
        None => "end of line".to_owned(),
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, want: u8) -> Result<(), String> {
        match self.next() {
            Some(b) if b == want => Ok(()),
            other => Err(format!(
                "expected '{}', found {}",
                want as char,
                show(other)
            )),
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.integer(),
            Some(b'[' | b'{') => Err("nested arrays/objects are not part of the protocol".into()),
            other => Err(format!("expected a value, found {}", show(other))),
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("malformed literal (expected `{word}`)"))
        }
    }

    fn integer(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut float = false;
        if self.peek() == Some(b'.') {
            float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            return Err("exponent notation is not part of the protocol".into());
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are utf-8");
        if float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|e| format!("bad number `{text}`: {e}"))
        } else {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|e| format!("bad integer `{text}`: {e}"))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            // Fast-forward over plain UTF-8 runs.
            let run_start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[run_start..self.pos])
                    .map_err(|_| "invalid utf-8 in string".to_owned())?,
            );
            match self.next() {
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.next() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = self
                            .bytes
                            .get(self.pos..self.pos + 4)
                            .ok_or("truncated \\u escape")?;
                        self.pos += 4;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                            16,
                        )
                        .map_err(|_| "bad \\u escape")?;
                        // Surrogate pairs are rejected rather than paired:
                        // the protocol is ASCII in practice.
                        out.push(char::from_u32(code).ok_or("\\u escape is not a scalar value")?);
                    }
                    other => return Err(format!("bad escape {}", show(other))),
                },
                other => return Err(format!("unterminated string (at {})", show(other))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flat_objects() {
        let pairs = parse_object(r#"{"op":"equiv","lhs":"!Int.End!","id":7,"warm":true,"x":null}"#)
            .unwrap();
        assert_eq!(get(&pairs, "op").unwrap().as_str(), Some("equiv"));
        assert_eq!(get(&pairs, "lhs").unwrap().as_str(), Some("!Int.End!"));
        assert_eq!(get(&pairs, "id").unwrap().as_int(), Some(7));
        assert_eq!(get(&pairs, "warm"), Some(&Value::Bool(true)));
        assert_eq!(get(&pairs, "x"), Some(&Value::Null));
        assert_eq!(get(&pairs, "missing"), None);
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let nasty = "a\"b\\c\nd\te\u{1}f — π";
        let line = format!(r#"{{"s":"{}"}}"#, escape(nasty));
        let pairs = parse_object(&line).unwrap();
        assert_eq!(get(&pairs, "s").unwrap().as_str(), Some(nasty));
    }

    #[test]
    fn whitespace_and_empty_objects() {
        assert!(parse_object("  { }  ").unwrap().is_empty());
        let pairs = parse_object(" { \"a\" : 1 , \"b\" : \"x\" } ").unwrap();
        assert_eq!(pairs.len(), 2);
    }

    #[test]
    fn accepts_fractional_rates() {
        let pairs = parse_object(r#"{"rate":0.9871,"neg":-1.5}"#).unwrap();
        assert_eq!(get(&pairs, "rate"), Some(&Value::Float(0.9871)));
        assert_eq!(get(&pairs, "neg"), Some(&Value::Float(-1.5)));
    }

    #[test]
    fn rejects_malformed_lines() {
        for bad in [
            "",
            "{",
            "{}extra",
            r#"{"a"}"#,
            r#"{"a":}"#,
            r#"{"a":1"#,
            r#"{"a":1e9}"#,
            r#"{"a":[1]}"#,
            r#"{"a":{"b":1}}"#,
            r#"{"a":"unterminated}"#,
            "not json at all",
        ] {
            assert!(parse_object(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn duplicate_keys_last_wins() {
        let pairs = parse_object(r#"{"a":1,"a":2}"#).unwrap();
        assert_eq!(get(&pairs, "a").unwrap().as_int(), Some(2));
    }

    #[test]
    fn obj_writer_emits_fields_in_push_order() {
        let mut w = ObjWriter::new();
        w.field_u64("id", 7)
            .field_str("op", "metrics")
            .field_bool("warm", true)
            .field_i64("delta", -2)
            .field_f64("rate", 0.5)
            .field_value("x", &Value::Null);
        assert_eq!(
            w.finish(),
            r#"{"id":7,"op":"metrics","warm":true,"delta":-2,"rate":0.5000,"x":null}"#
        );
        assert_eq!(ObjWriter::new().finish(), "{}");
    }

    #[test]
    fn obj_writer_output_is_byte_stable_and_round_trips() {
        let build = || {
            let mut w = ObjWriter::new();
            w.field_str("s", "a\"b\\c\nd").field_u64("n", 42);
            w.finish()
        };
        let (a, b) = (build(), build());
        assert_eq!(a, b, "same fields, same order => same bytes");
        let pairs = parse_object(&a).unwrap();
        assert_eq!(get(&pairs, "s").unwrap().as_str(), Some("a\"b\\c\nd"));
        assert_eq!(get(&pairs, "n").unwrap().as_int(), Some(42));
    }
}
