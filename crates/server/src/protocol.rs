//! The JSON-lines wire protocol.
//!
//! One request per line, one response line per request, in any order
//! (responses carry the request `id`). Requests:
//!
//! ```text
//! {"op":"equiv","lhs":"!Int.End!","rhs":"Dual (?Int.End?)"}
//! {"op":"check","source":"main : Unit\nmain = ()"}
//! {"op":"stats"}
//! {"op":"shutdown"}
//! ```
//!
//! An explicit `"id":N` is echoed back; otherwise the server numbers
//! requests by arrival order (1-based). Responses:
//!
//! ```text
//! {"id":1,"op":"equiv","verdict":true,"warm":false,"ns":8125}
//! {"id":2,"op":"check","ok":true,"cached":false,"ns":51200}
//! {"id":3,"op":"stats","nodes":12,...}
//! {"id":4,"op":"shutdown","ok":true}
//! {"id":5,"op":"error","error":"unknown op \"frobnicate\""}
//! ```
//!
//! `warm` is true when the verdict was answered from the per-pair
//! verdict cache (the pair had been decided before, by any worker);
//! `ns` is the in-worker service time in nanoseconds.

use crate::json::{self, Value};
use algst_check::cache::CacheStats;
use algst_core::shared::StoreStats;
use std::fmt::Write as _;

/// A parsed request. `id` is what the response will carry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Request {
    pub id: u64,
    pub op: Op,
}

/// A protocol operation. `Invalid` is a line that failed to parse — it
/// still flows through the engine so the error response comes back in
/// order-of-completion like everything else.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Op {
    Equiv { lhs: String, rhs: String },
    Check { source: String },
    Stats,
    Shutdown,
    Invalid { error: String },
}

/// Parses one request line. `fallback_id` is assigned when the line has
/// no (valid) `"id"` of its own; malformed lines become [`Op::Invalid`]
/// under that same id.
pub fn parse_request(line: &str, fallback_id: u64) -> Request {
    match parse_inner(line, fallback_id) {
        Ok(req) => req,
        Err((id, error)) => Request {
            id,
            op: Op::Invalid { error },
        },
    }
}

fn parse_inner(line: &str, fallback_id: u64) -> Result<Request, (u64, String)> {
    let pairs = json::parse_object(line).map_err(|e| (fallback_id, e))?;
    let id = match json::get(&pairs, "id") {
        Some(Value::Int(n)) if *n >= 0 => *n as u64,
        Some(_) => return Err((fallback_id, "\"id\" must be a non-negative integer".into())),
        None => fallback_id,
    };
    let op = match json::get(&pairs, "op").and_then(Value::as_str) {
        Some(op) => op,
        None => return Err((id, "missing \"op\"".into())),
    };
    let field = |name: &str| -> Result<String, (u64, String)> {
        json::get(&pairs, name)
            .and_then(Value::as_str)
            .map(str::to_owned)
            .ok_or_else(|| (id, format!("op \"{op}\" requires a string \"{name}\"")))
    };
    let op = match op {
        "equiv" => Op::Equiv {
            lhs: field("lhs")?,
            rhs: field("rhs")?,
        },
        "check" => Op::Check {
            source: field("source")?,
        },
        "stats" => Op::Stats,
        "shutdown" => Op::Shutdown,
        other => return Err((id, format!("unknown op \"{other}\""))),
    };
    Ok(Request { id, op })
}

/// Store/engine statistics as reported by the `stats` op and
/// `--stats-on-exit`.
#[derive(Clone, Copy, Debug, Default)]
pub struct Snapshot {
    /// Requests handled so far (all ops).
    pub requests: u64,
    /// Worker threads in the pool.
    pub workers: usize,
    /// Distinct hash-consed nodes in the shared arena.
    pub nodes: u64,
    /// `nrm` memo hits / misses across all workers (as of last publish).
    pub nrm_hits: u64,
    pub nrm_misses: u64,
    /// Per-pair verdict cache ("equiv memo"): entries, hits, misses.
    pub equiv_entries: u64,
    pub equiv_hits: u64,
    pub equiv_misses: u64,
    /// Parsed-type cache entries.
    pub parse_entries: u64,
    /// Module (check-op) cache: entries, hits.
    pub module_entries: u64,
    pub module_hits: u64,
    /// Store contention profile: current snapshot generation, snapshot
    /// installs, cold interns that entered the writer mutex, and total
    /// store lock acquisitions (flat across warm traffic).
    pub store_generation: u64,
    pub snapshot_installs: u64,
    pub store_slow_path: u64,
    pub store_locks: u64,
    /// Shard-lock acquisitions on the engine's fallback verdict/parse
    /// caches (worker-local caches absorb the warm path).
    pub cache_locks: u64,
    /// Connections accepted / currently open. The engine itself knows
    /// nothing about connections; the serving front-end fills these in
    /// when a `stats` response passes through a connection's writer
    /// (zero under `Engine::snapshot` or stdio serving).
    pub conns_accepted: u64,
    pub conns_active: u64,
}

impl Snapshot {
    pub fn equiv_hit_rate(&self) -> f64 {
        let total = self.equiv_hits + self.equiv_misses;
        if total == 0 {
            return 0.0;
        }
        self.equiv_hits as f64 / total as f64
    }

    pub fn nrm_hit_rate(&self) -> f64 {
        let total = self.nrm_hits + self.nrm_misses;
        if total == 0 {
            return 0.0;
        }
        self.nrm_hits as f64 / total as f64
    }

    pub(crate) fn merge_store(&mut self, s: StoreStats) {
        self.nodes = s.nodes;
        self.nrm_hits = s.nrm_hits;
        self.nrm_misses = s.nrm_misses;
        self.store_generation = s.generation;
        self.snapshot_installs = s.snapshot_installs;
        self.store_slow_path = s.slow_path;
        self.store_locks = s.lock_acquisitions;
    }

    pub(crate) fn merge_modules(&mut self, s: CacheStats) {
        self.module_entries = s.entries;
        self.module_hits = s.hits;
    }
}

/// A response, ready to serialize as one JSON line.
#[derive(Clone, Debug)]
pub enum Response {
    Equiv {
        id: u64,
        verdict: bool,
        warm: bool,
        ns: u64,
    },
    Check {
        id: u64,
        ok: bool,
        error: Option<String>,
        cached: bool,
        ns: u64,
    },
    Stats {
        id: u64,
        snapshot: Snapshot,
    },
    Shutdown {
        id: u64,
    },
    Error {
        id: u64,
        error: String,
    },
}

impl Response {
    pub fn id(&self) -> u64 {
        match self {
            Response::Equiv { id, .. }
            | Response::Check { id, .. }
            | Response::Stats { id, .. }
            | Response::Shutdown { id }
            | Response::Error { id, .. } => *id,
        }
    }

    /// Serializes to one JSON line (no trailing newline).
    pub fn to_json(&self) -> String {
        match self {
            Response::Equiv {
                id,
                verdict,
                warm,
                ns,
            } => {
                format!("{{\"id\":{id},\"op\":\"equiv\",\"verdict\":{verdict},\"warm\":{warm},\"ns\":{ns}}}")
            }
            Response::Check {
                id,
                ok,
                error,
                cached,
                ns,
            } => {
                let mut line = format!("{{\"id\":{id},\"op\":\"check\",\"ok\":{ok}");
                if let Some(e) = error {
                    let _ = write!(line, ",\"error\":\"{}\"", json::escape(e));
                }
                let _ = write!(line, ",\"cached\":{cached},\"ns\":{ns}}}");
                line
            }
            Response::Stats { id, snapshot: s } => {
                format!(
                    "{{\"id\":{id},\"op\":\"stats\",\"requests\":{},\"workers\":{},\
                     \"nodes\":{},\"nrm_hits\":{},\"nrm_misses\":{},\"nrm_hit_rate\":{:.4},\
                     \"equiv_entries\":{},\"equiv_hits\":{},\"equiv_misses\":{},\
                     \"equiv_hit_rate\":{:.4},\"parse_entries\":{},\
                     \"module_entries\":{},\"module_hits\":{},\
                     \"store_generation\":{},\"snapshot_installs\":{},\
                     \"store_slow_path\":{},\"store_locks\":{},\"cache_locks\":{},\
                     \"conns_accepted\":{},\"conns_active\":{}}}",
                    s.requests,
                    s.workers,
                    s.nodes,
                    s.nrm_hits,
                    s.nrm_misses,
                    s.nrm_hit_rate(),
                    s.equiv_entries,
                    s.equiv_hits,
                    s.equiv_misses,
                    s.equiv_hit_rate(),
                    s.parse_entries,
                    s.module_entries,
                    s.module_hits,
                    s.store_generation,
                    s.snapshot_installs,
                    s.store_slow_path,
                    s.store_locks,
                    s.cache_locks,
                    s.conns_accepted,
                    s.conns_active,
                )
            }
            Response::Shutdown { id } => {
                format!("{{\"id\":{id},\"op\":\"shutdown\",\"ok\":true}}")
            }
            Response::Error { id, error } => {
                format!(
                    "{{\"id\":{id},\"op\":\"error\",\"error\":\"{}\"}}",
                    json::escape(error)
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_four_ops() {
        let r = parse_request(r#"{"op":"equiv","lhs":"End!","rhs":"Dual End?"}"#, 3);
        assert_eq!(r.id, 3);
        assert!(matches!(r.op, Op::Equiv { .. }));
        let r = parse_request(r#"{"id":9,"op":"check","source":"main : Unit"}"#, 1);
        assert_eq!(r.id, 9);
        assert!(matches!(r.op, Op::Check { .. }));
        assert!(matches!(
            parse_request(r#"{"op":"stats"}"#, 1).op,
            Op::Stats
        ));
        assert!(matches!(
            parse_request(r#"{"op":"shutdown"}"#, 1).op,
            Op::Shutdown
        ));
    }

    #[test]
    fn malformed_lines_become_invalid_ops() {
        let r = parse_request("not json", 5);
        assert_eq!(r.id, 5);
        assert!(matches!(r.op, Op::Invalid { .. }));
        // A parseable object with a bad op keeps its explicit id.
        let r = parse_request(r#"{"id":7,"op":"frobnicate"}"#, 5);
        assert_eq!(r.id, 7);
        let Op::Invalid { error } = r.op else {
            panic!("expected invalid")
        };
        assert!(error.contains("frobnicate"));
        // Missing required field.
        let r = parse_request(r#"{"op":"equiv","lhs":"End!"}"#, 5);
        assert!(matches!(r.op, Op::Invalid { .. }));
    }

    #[test]
    fn responses_serialize_to_parseable_json() {
        let resps = [
            Response::Equiv {
                id: 1,
                verdict: true,
                warm: false,
                ns: 812,
            },
            Response::Check {
                id: 2,
                ok: false,
                error: Some("line 3: no \"main\"".into()),
                cached: true,
                ns: 99,
            },
            Response::Stats {
                id: 3,
                snapshot: Snapshot::default(),
            },
            Response::Shutdown { id: 4 },
            Response::Error {
                id: 5,
                error: "bad".into(),
            },
        ];
        for (i, r) in resps.iter().enumerate() {
            let line = r.to_json();
            let pairs = crate::json::parse_object(&line)
                .unwrap_or_else(|e| panic!("unparseable response {line}: {e}"));
            assert_eq!(
                crate::json::get(&pairs, "id").unwrap().as_int(),
                Some(i as i64 + 1)
            );
        }
    }
}
