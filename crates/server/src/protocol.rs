//! The JSON-lines wire protocol.
//!
//! One request per line, one response line per request, in any order
//! (responses carry the request `id`). Requests:
//!
//! ```text
//! {"op":"equiv","lhs":"!Int.End!","rhs":"Dual (?Int.End?)"}
//! {"op":"check","source":"main : Unit\nmain = ()"}
//! {"op":"stats"}
//! {"op":"stats","delta":true}
//! {"op":"metrics"}
//! {"op":"tenants"}
//! {"op":"shutdown"}
//! ```
//!
//! Every op additionally accepts an optional `"tenant":"name"` field
//! (an identifier of `[A-Za-z0-9_-]`, at most 64 chars). Under
//! multi-tenant serving (`algst serve --multi-tenant`) it routes the
//! request to that tenant's engine; absent means the `"default"`
//! tenant, so tenancy-unaware clients are untouched. Single-tenant
//! serving ignores the field. A request refused by a tenant's
//! admission control comes back as an `"op":"error"` line carrying a
//! `"kind"` of `"throttled"` (request-rate limit) or
//! `"quota_exceeded"` (in-flight cap) — a per-request refusal, never
//! a disconnect. The `tenants` op lists per-tenant statistics (see
//! [`Response::Tenants`]).
//!
//! An explicit `"id":N` is echoed back; otherwise the server numbers
//! requests by arrival order (1-based). Responses:
//!
//! ```text
//! {"id":1,"op":"equiv","verdict":true,"warm":false,"ns":8125}
//! {"id":2,"op":"check","ok":true,"cached":false,"ns":51200}
//! {"id":3,"op":"stats","delta":false,"requests":12,...}
//! {"id":4,"op":"metrics","batches_total":3,...}
//! {"id":5,"op":"shutdown","ok":true}
//! {"id":6,"op":"error","error":"unknown op \"frobnicate\""}
//! ```
//!
//! `warm` is true when the verdict was answered from the per-pair
//! verdict cache (the pair had been decided before, by any worker);
//! `ns` is the in-worker service time in nanoseconds.
//!
//! `stats` with `"delta":true` reports counters **since the previous
//! delta call on the same connection** (the first delta call counts from
//! connection start), so scrapers get rates without diffing client-side;
//! instantaneous values (`workers`, `conns_active`) stay absolute. The
//! cursor lives in the connection's writer — stdio serving and
//! [`Engine::process`](crate::Engine::process) have no cursor and answer
//! delta requests cumulatively.
//!
//! `metrics` returns the full observability registry — every counter,
//! gauge and histogram summary, plus the store/cache statistics — as one
//! flat object in **stable sorted key order**, byte-diffable across
//! runs. Full histogram buckets are exposed on the Prometheus endpoint
//! (`algst serve --metrics-listen`), not over the line protocol.

use crate::json::{self, ObjWriter, Value};
use algst_check::cache::CacheStats;
use algst_core::shared::StoreStats;

/// A parsed request. `id` is what the response will carry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Request {
    pub id: u64,
    pub op: Op,
}

/// A protocol operation. `Invalid` is a line that failed to parse — it
/// still flows through the engine so the error response comes back in
/// order-of-completion like everything else.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Op {
    Equiv {
        lhs: String,
        rhs: String,
    },
    Check {
        source: String,
    },
    /// `delta: true` asks for counters since the connection's previous
    /// delta call instead of process-lifetime totals.
    Stats {
        delta: bool,
    },
    /// Full observability registry snapshot (stable key order).
    Metrics,
    /// Per-tenant registry listing (multi-tenant serving only; a
    /// single-tenant engine answers it with an error).
    Tenants,
    Shutdown,
    Invalid {
        error: String,
    },
}

/// Is `name` a well-formed tenant name? Bounded identifiers only —
/// 1..=64 chars of `[A-Za-z0-9_-]` — so names embed safely in flat
/// JSON keys and Prometheus labels.
pub fn valid_tenant_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 64
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-')
}

/// Parses one request line. `fallback_id` is assigned when the line has
/// no (valid) `"id"` of its own; malformed lines become [`Op::Invalid`]
/// under that same id. Any `"tenant"` field is validated and dropped —
/// single-tenant callers route everything to the one engine.
pub fn parse_request(line: &str, fallback_id: u64) -> Request {
    parse_request_tenant(line, fallback_id).0
}

/// [`parse_request`] for routed (multi-tenant) serving: also returns
/// the request's `"tenant"` field, `None` when absent (the caller maps
/// that to the `"default"` tenant). A malformed tenant name makes the
/// whole line [`Op::Invalid`].
pub fn parse_request_tenant(line: &str, fallback_id: u64) -> (Request, Option<String>) {
    match parse_inner(line, fallback_id) {
        Ok(parsed) => parsed,
        Err((id, error)) => (
            Request {
                id,
                op: Op::Invalid { error },
            },
            None,
        ),
    }
}

fn parse_inner(line: &str, fallback_id: u64) -> Result<(Request, Option<String>), (u64, String)> {
    let pairs = json::parse_object(line).map_err(|e| (fallback_id, e))?;
    let id = match json::get(&pairs, "id") {
        Some(Value::Int(n)) if *n >= 0 => *n as u64,
        Some(_) => return Err((fallback_id, "\"id\" must be a non-negative integer".into())),
        None => fallback_id,
    };
    let op = match json::get(&pairs, "op").and_then(Value::as_str) {
        Some(op) => op,
        None => return Err((id, "missing \"op\"".into())),
    };
    let tenant = match json::get(&pairs, "tenant") {
        None => None,
        Some(v) => match v.as_str() {
            Some(name) if valid_tenant_name(name) => Some(name.to_owned()),
            Some(name) => {
                return Err((
                    id,
                    format!("invalid tenant name {name:?} (want 1-64 chars of [A-Za-z0-9_-])"),
                ))
            }
            None => return Err((id, "\"tenant\" must be a string".into())),
        },
    };
    let field = |name: &str| -> Result<String, (u64, String)> {
        json::get(&pairs, name)
            .and_then(Value::as_str)
            .map(str::to_owned)
            .ok_or_else(|| (id, format!("op \"{op}\" requires a string \"{name}\"")))
    };
    let op = match op {
        "equiv" => Op::Equiv {
            lhs: field("lhs")?,
            rhs: field("rhs")?,
        },
        "check" => Op::Check {
            source: field("source")?,
        },
        "stats" => Op::Stats {
            delta: match json::get(&pairs, "delta") {
                Some(Value::Bool(b)) => *b,
                None => false,
                Some(_) => return Err((id, "\"delta\" must be a boolean".into())),
            },
        },
        "metrics" => Op::Metrics,
        "tenants" => Op::Tenants,
        "shutdown" => Op::Shutdown,
        other => return Err((id, format!("unknown op \"{other}\""))),
    };
    Ok((Request { id, op }, tenant))
}

/// Store/engine statistics as reported by the `stats` op and
/// `--stats-on-exit`.
#[derive(Clone, Copy, Debug, Default)]
pub struct Snapshot {
    /// Requests handled so far (all ops).
    pub requests: u64,
    /// Worker threads in the pool.
    pub workers: usize,
    /// Distinct hash-consed nodes in the shared arena.
    pub nodes: u64,
    /// `nrm` memo hits / misses across all workers (as of last publish).
    pub nrm_hits: u64,
    pub nrm_misses: u64,
    /// Per-pair verdict cache ("equiv memo"): entries, hits, misses.
    pub equiv_entries: u64,
    pub equiv_hits: u64,
    pub equiv_misses: u64,
    /// Parsed-type cache entries.
    pub parse_entries: u64,
    /// Module (check-op) cache: entries, hits.
    pub module_entries: u64,
    pub module_hits: u64,
    /// Store contention profile: current snapshot generation, snapshot
    /// installs, cold interns that entered the writer mutex, and total
    /// store lock acquisitions (flat across warm traffic).
    pub store_generation: u64,
    pub snapshot_installs: u64,
    pub store_slow_path: u64,
    pub store_locks: u64,
    /// Bounded-memory profile: estimated live bytes (arena + snapshot
    /// layers — a gauge, it *shrinks* at compactions), the compaction
    /// epoch, completed compactions, and total bytes reclaimed.
    pub store_bytes: u64,
    pub store_epoch: u64,
    pub compactions: u64,
    pub reclaimed_bytes: u64,
    /// Shard-lock acquisitions on the engine's fallback verdict/parse
    /// caches (worker-local caches absorb the warm path).
    pub cache_locks: u64,
    /// Connections accepted / currently open. The engine itself knows
    /// nothing about connections; the serving front-end fills these in
    /// when a `stats` response passes through a connection's writer
    /// (zero under `Engine::snapshot` or stdio serving).
    pub conns_accepted: u64,
    pub conns_active: u64,
    /// Tenancy aggregates, filled in by the routed (multi-tenant)
    /// front-end. `tenancy` gates their serialization so single-tenant
    /// `stats` lines stay byte-identical to a tenancy-unaware server.
    pub tenancy: bool,
    /// Live tenant engines (a gauge).
    pub tenants: u64,
    pub tenant_evictions: u64,
    pub tenant_recreations: u64,
    pub tenant_throttled: u64,
}

impl Snapshot {
    pub fn equiv_hit_rate(&self) -> f64 {
        let total = self.equiv_hits + self.equiv_misses;
        if total == 0 {
            return 0.0;
        }
        self.equiv_hits as f64 / total as f64
    }

    pub fn nrm_hit_rate(&self) -> f64 {
        let total = self.nrm_hits + self.nrm_misses;
        if total == 0 {
            return 0.0;
        }
        self.nrm_hits as f64 / total as f64
    }

    pub(crate) fn merge_store(&mut self, s: StoreStats) {
        self.nodes = s.nodes;
        self.nrm_hits = s.nrm_hits;
        self.nrm_misses = s.nrm_misses;
        self.store_generation = s.generation;
        self.snapshot_installs = s.snapshot_installs;
        self.store_slow_path = s.slow_path;
        self.store_locks = s.lock_acquisitions;
        self.store_bytes = s.live_bytes();
        self.store_epoch = s.epoch;
        self.compactions = s.compactions;
        self.reclaimed_bytes = s.reclaimed_bytes;
    }

    pub(crate) fn merge_modules(&mut self, s: CacheStats) {
        self.module_entries = s.entries;
        self.module_hits = s.hits;
    }

    /// The change since `prev`: every monotonic counter (and monotone
    /// size — `nodes`, cache entries — whose delta reads as growth) is
    /// subtracted (saturating, so a counter that moved backwards — an
    /// engine restart, or `nodes`/cache entries shrinking at a store
    /// compaction — yields zero rather than wrapping); the
    /// instantaneous values `workers`, `conns_active` and `store_bytes`
    /// (a gauge that legitimately shrinks) stay absolute. This is what
    /// `stats {"delta":true}` reports against the connection's cursor.
    pub fn delta_since(&self, prev: &Snapshot) -> Snapshot {
        Snapshot {
            requests: self.requests.saturating_sub(prev.requests),
            workers: self.workers,
            nodes: self.nodes.saturating_sub(prev.nodes),
            nrm_hits: self.nrm_hits.saturating_sub(prev.nrm_hits),
            nrm_misses: self.nrm_misses.saturating_sub(prev.nrm_misses),
            equiv_entries: self.equiv_entries.saturating_sub(prev.equiv_entries),
            equiv_hits: self.equiv_hits.saturating_sub(prev.equiv_hits),
            equiv_misses: self.equiv_misses.saturating_sub(prev.equiv_misses),
            parse_entries: self.parse_entries.saturating_sub(prev.parse_entries),
            module_entries: self.module_entries.saturating_sub(prev.module_entries),
            module_hits: self.module_hits.saturating_sub(prev.module_hits),
            store_generation: self.store_generation.saturating_sub(prev.store_generation),
            snapshot_installs: self
                .snapshot_installs
                .saturating_sub(prev.snapshot_installs),
            store_slow_path: self.store_slow_path.saturating_sub(prev.store_slow_path),
            store_locks: self.store_locks.saturating_sub(prev.store_locks),
            store_bytes: self.store_bytes,
            store_epoch: self.store_epoch.saturating_sub(prev.store_epoch),
            compactions: self.compactions.saturating_sub(prev.compactions),
            reclaimed_bytes: self.reclaimed_bytes.saturating_sub(prev.reclaimed_bytes),
            cache_locks: self.cache_locks.saturating_sub(prev.cache_locks),
            conns_accepted: self.conns_accepted.saturating_sub(prev.conns_accepted),
            conns_active: self.conns_active,
            tenancy: self.tenancy,
            tenants: self.tenants,
            tenant_evictions: self.tenant_evictions.saturating_sub(prev.tenant_evictions),
            tenant_recreations: self
                .tenant_recreations
                .saturating_sub(prev.tenant_recreations),
            tenant_throttled: self.tenant_throttled.saturating_sub(prev.tenant_throttled),
        }
    }
}

/// A response, ready to serialize as one JSON line.
#[derive(Clone, Debug)]
pub enum Response {
    Equiv {
        id: u64,
        verdict: bool,
        warm: bool,
        ns: u64,
    },
    Check {
        id: u64,
        ok: bool,
        error: Option<String>,
        cached: bool,
        ns: u64,
    },
    Stats {
        id: u64,
        snapshot: Snapshot,
        /// True when the snapshot is a since-last-delta-call diff (the
        /// serving writer resolves the cursor; engine-level handling
        /// reports cumulative values with the flag as requested).
        delta: bool,
    },
    /// Full observability registry snapshot: pre-sorted `(key, value)`
    /// pairs, serialized in exactly that order.
    Metrics {
        id: u64,
        fields: Vec<(String, Value)>,
    },
    /// Per-tenant registry listing (`tenants` op): pre-sorted flat
    /// `(key, value)` pairs, serialized in exactly that order.
    Tenants {
        id: u64,
        fields: Vec<(String, Value)>,
    },
    /// An admission-control refusal. On the wire it is still
    /// `"op":"error"` — tenancy-unaware clients see an ordinary
    /// per-request error — with a `"kind"` field naming the exhausted
    /// quota for clients that back off gracefully.
    Throttled {
        id: u64,
        tenant: String,
        kind: ThrottleKind,
    },
    Shutdown {
        id: u64,
    },
    Error {
        id: u64,
        error: String,
    },
}

/// Which admission quota refused a request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ThrottleKind {
    /// The tenant's token-bucket request-rate limit is exhausted;
    /// retrying after a pause will succeed.
    Throttled,
    /// The tenant's in-flight request cap is reached; retrying once
    /// earlier responses arrive will succeed.
    QuotaExceeded,
}

impl ThrottleKind {
    /// The wire value of the response's `"kind"` field.
    pub fn as_str(self) -> &'static str {
        match self {
            ThrottleKind::Throttled => "throttled",
            ThrottleKind::QuotaExceeded => "quota_exceeded",
        }
    }
}

impl Response {
    pub fn id(&self) -> u64 {
        match self {
            Response::Equiv { id, .. }
            | Response::Check { id, .. }
            | Response::Stats { id, .. }
            | Response::Metrics { id, .. }
            | Response::Tenants { id, .. }
            | Response::Throttled { id, .. }
            | Response::Shutdown { id }
            | Response::Error { id, .. } => *id,
        }
    }

    /// Serializes to one JSON line (no trailing newline). Every variant
    /// routes through [`ObjWriter`], so field order — and therefore the
    /// bytes — is fixed for a given response value.
    pub fn to_json(&self) -> String {
        match self {
            Response::Equiv {
                id,
                verdict,
                warm,
                ns,
            } => {
                let mut w = ObjWriter::new();
                w.field_u64("id", *id)
                    .field_str("op", "equiv")
                    .field_bool("verdict", *verdict)
                    .field_bool("warm", *warm)
                    .field_u64("ns", *ns);
                w.finish()
            }
            Response::Check {
                id,
                ok,
                error,
                cached,
                ns,
            } => {
                let mut w = ObjWriter::new();
                w.field_u64("id", *id)
                    .field_str("op", "check")
                    .field_bool("ok", *ok);
                if let Some(e) = error {
                    w.field_str("error", e);
                }
                w.field_bool("cached", *cached).field_u64("ns", *ns);
                w.finish()
            }
            Response::Stats {
                id,
                snapshot: s,
                delta,
            } => {
                let mut w = ObjWriter::new();
                w.field_u64("id", *id)
                    .field_str("op", "stats")
                    .field_bool("delta", *delta)
                    .field_u64("requests", s.requests)
                    .field_u64("workers", s.workers as u64)
                    .field_u64("nodes", s.nodes)
                    .field_u64("nrm_hits", s.nrm_hits)
                    .field_u64("nrm_misses", s.nrm_misses)
                    .field_f64("nrm_hit_rate", s.nrm_hit_rate())
                    .field_u64("equiv_entries", s.equiv_entries)
                    .field_u64("equiv_hits", s.equiv_hits)
                    .field_u64("equiv_misses", s.equiv_misses)
                    .field_f64("equiv_hit_rate", s.equiv_hit_rate())
                    .field_u64("parse_entries", s.parse_entries)
                    .field_u64("module_entries", s.module_entries)
                    .field_u64("module_hits", s.module_hits)
                    .field_u64("store_generation", s.store_generation)
                    .field_u64("snapshot_installs", s.snapshot_installs)
                    .field_u64("store_slow_path", s.store_slow_path)
                    .field_u64("store_locks", s.store_locks)
                    .field_u64("store_bytes", s.store_bytes)
                    .field_u64("store_epoch", s.store_epoch)
                    .field_u64("compactions", s.compactions)
                    .field_u64("reclaimed_bytes", s.reclaimed_bytes)
                    .field_u64("cache_locks", s.cache_locks)
                    .field_u64("conns_accepted", s.conns_accepted)
                    .field_u64("conns_active", s.conns_active);
                if s.tenancy {
                    w.field_u64("tenants", s.tenants)
                        .field_u64("tenant_evictions", s.tenant_evictions)
                        .field_u64("tenant_recreations", s.tenant_recreations)
                        .field_u64("tenant_throttled", s.tenant_throttled);
                }
                w.finish()
            }
            Response::Metrics { id, fields } => {
                let mut w = ObjWriter::new();
                w.field_u64("id", *id).field_str("op", "metrics");
                for (key, value) in fields {
                    w.field_value(key, value);
                }
                w.finish()
            }
            Response::Tenants { id, fields } => {
                let mut w = ObjWriter::new();
                w.field_u64("id", *id).field_str("op", "tenants");
                for (key, value) in fields {
                    w.field_value(key, value);
                }
                w.finish()
            }
            Response::Throttled { id, tenant, kind } => {
                let error = match kind {
                    ThrottleKind::Throttled => {
                        format!("tenant \"{tenant}\" over request-rate limit")
                    }
                    ThrottleKind::QuotaExceeded => {
                        format!("tenant \"{tenant}\" at in-flight request cap")
                    }
                };
                let mut w = ObjWriter::new();
                w.field_u64("id", *id)
                    .field_str("op", "error")
                    .field_str("kind", kind.as_str())
                    .field_str("tenant", tenant)
                    .field_str("error", &error);
                w.finish()
            }
            Response::Shutdown { id } => {
                let mut w = ObjWriter::new();
                w.field_u64("id", *id)
                    .field_str("op", "shutdown")
                    .field_bool("ok", true);
                w.finish()
            }
            Response::Error { id, error } => {
                let mut w = ObjWriter::new();
                w.field_u64("id", *id)
                    .field_str("op", "error")
                    .field_str("error", error);
                w.finish()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_four_ops() {
        let r = parse_request(r#"{"op":"equiv","lhs":"End!","rhs":"Dual End?"}"#, 3);
        assert_eq!(r.id, 3);
        assert!(matches!(r.op, Op::Equiv { .. }));
        let r = parse_request(r#"{"id":9,"op":"check","source":"main : Unit"}"#, 1);
        assert_eq!(r.id, 9);
        assert!(matches!(r.op, Op::Check { .. }));
        assert!(matches!(
            parse_request(r#"{"op":"stats"}"#, 1).op,
            Op::Stats { delta: false }
        ));
        assert!(matches!(
            parse_request(r#"{"op":"stats","delta":true}"#, 1).op,
            Op::Stats { delta: true }
        ));
        assert!(matches!(
            parse_request(r#"{"op":"stats","delta":1}"#, 1).op,
            Op::Invalid { .. }
        ));
        assert!(matches!(
            parse_request(r#"{"op":"metrics"}"#, 1).op,
            Op::Metrics
        ));
        assert!(matches!(
            parse_request(r#"{"op":"shutdown"}"#, 1).op,
            Op::Shutdown
        ));
    }

    #[test]
    fn tenant_field_parses_validates_and_defaults_to_none() {
        let (r, t) = parse_request_tenant(
            r#"{"op":"equiv","tenant":"acme-1","lhs":"End!","rhs":"End!"}"#,
            1,
        );
        assert!(matches!(r.op, Op::Equiv { .. }));
        assert_eq!(t.as_deref(), Some("acme-1"));
        // Absent tenant → None (the router maps it to "default").
        let (_, t) = parse_request_tenant(r#"{"op":"stats"}"#, 1);
        assert_eq!(t, None);
        // The tenants op itself parses.
        assert!(matches!(
            parse_request(r#"{"op":"tenants"}"#, 1).op,
            Op::Tenants
        ));
        // Bad names (charset, emptiness, length, type) poison the line.
        for line in [
            r#"{"op":"stats","tenant":"a b"}"#,
            r#"{"op":"stats","tenant":""}"#,
            r#"{"op":"stats","tenant":7}"#,
        ] {
            let (r, t) = parse_request_tenant(line, 1);
            assert!(matches!(r.op, Op::Invalid { .. }), "{line}");
            assert_eq!(t, None);
        }
        let long = format!(r#"{{"op":"stats","tenant":"{}"}}"#, "x".repeat(65));
        assert!(matches!(
            parse_request_tenant(&long, 1).0.op,
            Op::Invalid { .. }
        ));
        assert!(valid_tenant_name(&"x".repeat(64)));
        // Single-tenant parsing accepts (and drops) a valid tenant.
        assert!(matches!(
            parse_request(r#"{"op":"metrics","tenant":"default"}"#, 1).op,
            Op::Metrics
        ));
    }

    #[test]
    fn throttled_and_tenants_responses_serialize() {
        let line = Response::Throttled {
            id: 4,
            tenant: "acme".into(),
            kind: ThrottleKind::Throttled,
        }
        .to_json();
        assert_eq!(
            line,
            r#"{"id":4,"op":"error","kind":"throttled","tenant":"acme","error":"tenant \"acme\" over request-rate limit"}"#
        );
        let line = Response::Throttled {
            id: 5,
            tenant: "acme".into(),
            kind: ThrottleKind::QuotaExceeded,
        }
        .to_json();
        assert!(line.contains(r#""kind":"quota_exceeded""#), "{line}");
        // A tenancy-unaware client still sees an ordinary error line.
        let pairs = crate::json::parse_object(&line).unwrap();
        assert_eq!(
            crate::json::get(&pairs, "op").unwrap().as_str(),
            Some("error")
        );
        let line = Response::Tenants {
            id: 6,
            fields: vec![
                ("tenants".into(), Value::Int(2)),
                ("tenant_acme_requests".into(), Value::Int(10)),
            ],
        }
        .to_json();
        assert_eq!(
            line,
            r#"{"id":6,"op":"tenants","tenants":2,"tenant_acme_requests":10}"#
        );
    }

    #[test]
    fn stats_lines_without_tenancy_omit_tenant_fields() {
        let mut snapshot = Snapshot {
            requests: 10,
            tenants: 3,
            tenant_throttled: 2,
            ..Snapshot::default()
        };
        let single = Response::Stats {
            id: 1,
            snapshot,
            delta: false,
        }
        .to_json();
        assert!(!single.contains("tenant"), "{single}");
        snapshot.tenancy = true;
        let routed = Response::Stats {
            id: 1,
            snapshot,
            delta: false,
        }
        .to_json();
        assert!(routed.contains("\"tenants\":3"), "{routed}");
        assert!(routed.contains("\"tenant_throttled\":2"), "{routed}");
        assert!(routed.starts_with(&single[..single.len() - 1]));
    }

    #[test]
    fn malformed_lines_become_invalid_ops() {
        let r = parse_request("not json", 5);
        assert_eq!(r.id, 5);
        assert!(matches!(r.op, Op::Invalid { .. }));
        // A parseable object with a bad op keeps its explicit id.
        let r = parse_request(r#"{"id":7,"op":"frobnicate"}"#, 5);
        assert_eq!(r.id, 7);
        let Op::Invalid { error } = r.op else {
            panic!("expected invalid")
        };
        assert!(error.contains("frobnicate"));
        // Missing required field.
        let r = parse_request(r#"{"op":"equiv","lhs":"End!"}"#, 5);
        assert!(matches!(r.op, Op::Invalid { .. }));
    }

    #[test]
    fn responses_serialize_to_parseable_json() {
        let resps = [
            Response::Equiv {
                id: 1,
                verdict: true,
                warm: false,
                ns: 812,
            },
            Response::Check {
                id: 2,
                ok: false,
                error: Some("line 3: no \"main\"".into()),
                cached: true,
                ns: 99,
            },
            Response::Stats {
                id: 3,
                snapshot: Snapshot::default(),
                delta: false,
            },
            Response::Metrics {
                id: 4,
                fields: vec![
                    ("requests_total".into(), Value::Int(50)),
                    ("store_nodes".into(), Value::Int(12)),
                ],
            },
            Response::Shutdown { id: 5 },
            Response::Error {
                id: 6,
                error: "bad".into(),
            },
        ];
        for (i, r) in resps.iter().enumerate() {
            let line = r.to_json();
            let pairs = crate::json::parse_object(&line)
                .unwrap_or_else(|e| panic!("unparseable response {line}: {e}"));
            assert_eq!(
                crate::json::get(&pairs, "id").unwrap().as_int(),
                Some(i as i64 + 1)
            );
        }
    }

    #[test]
    fn stats_and_metrics_lines_are_byte_stable() {
        let snapshot = Snapshot {
            requests: 100,
            workers: 4,
            nodes: 12,
            nrm_hits: 3,
            nrm_misses: 1,
            ..Snapshot::default()
        };
        let line = |delta| {
            Response::Stats {
                id: 1,
                snapshot,
                delta,
            }
            .to_json()
        };
        assert_eq!(line(false), line(false), "identical state, identical bytes");
        assert!(line(true).contains("\"delta\":true"));

        let fields = vec![
            ("a_total".to_string(), Value::Int(1)),
            ("b_ns_p50".to_string(), Value::Int(128)),
        ];
        let m = |f: &Vec<(String, Value)>| {
            Response::Metrics {
                id: 2,
                fields: f.clone(),
            }
            .to_json()
        };
        assert_eq!(m(&fields), m(&fields));
        assert_eq!(
            m(&fields),
            r#"{"id":2,"op":"metrics","a_total":1,"b_ns_p50":128}"#
        );
    }

    #[test]
    fn delta_since_subtracts_counters_and_keeps_gauges() {
        let prev = Snapshot {
            requests: 100,
            workers: 4,
            nodes: 50,
            conns_accepted: 2,
            conns_active: 2,
            ..Snapshot::default()
        };
        let now = Snapshot {
            requests: 175,
            workers: 4,
            nodes: 60,
            conns_accepted: 3,
            conns_active: 1,
            ..Snapshot::default()
        };
        let d = now.delta_since(&prev);
        assert_eq!(d.requests, 75);
        assert_eq!(d.nodes, 10);
        assert_eq!(d.conns_accepted, 1);
        // Instantaneous values stay absolute.
        assert_eq!(d.workers, 4);
        assert_eq!(d.conns_active, 1);
        // A counter that went backwards (engine restart) clamps to zero.
        assert_eq!(prev.delta_since(&now).requests, 0);
    }

    #[test]
    fn delta_across_a_compaction_boundary_stays_sane() {
        // A compaction between two delta calls shrinks `nodes` and
        // `store_bytes`; the cursor diff must clamp, not wrap.
        let prev = Snapshot {
            requests: 100,
            nodes: 1000,
            store_bytes: 90_000,
            store_epoch: 0,
            compactions: 0,
            ..Snapshot::default()
        };
        let now = Snapshot {
            requests: 150,
            nodes: 120,
            store_bytes: 9_000,
            store_epoch: 1,
            compactions: 1,
            reclaimed_bytes: 81_000,
            ..Snapshot::default()
        };
        let d = now.delta_since(&prev);
        assert_eq!(d.requests, 50);
        assert_eq!(d.nodes, 0, "shrunk size clamps to zero growth");
        assert_eq!(d.store_bytes, 9_000, "bytes gauge stays absolute");
        assert_eq!(d.store_epoch, 1);
        assert_eq!(d.compactions, 1);
        assert_eq!(d.reclaimed_bytes, 81_000);
    }
}
