//! The batch engine: a worker pool over one **injected**
//! [`Session`] store.
//!
//! Requests travel in **batches** (`Vec<Request>` per channel message),
//! so channel synchronization amortizes over many requests — essential
//! when a warm `equiv` is tens of nanoseconds of actual work. Each
//! worker owns a sibling [`Session`] of the engine's injected one and
//! **publishes its memo deltas after every batch**, so normal forms
//! computed for one client warm every other worker's next batch.
//!
//! **Every** op runs against the injected session — `equiv` resolution
//! and interning, and the `check` op's elaboration/checking alike.
//! Nothing in the engine reaches a process-global store, so two engines
//! in one process are fully isolated (see `tests/isolation.rs`).
//!
//! Above the store sit the request-level caches. Like the type store
//! itself, they are **two-tier** so the warm path is lock-free:
//!
//! * each worker keeps **private** verdict and parse maps
//!   (`WorkerCaches`) answering repeated pairs/strings with zero
//!   shared-memory traffic — sound because a verdict for a pair of ids
//!   and the id for a source string never change;
//! * behind them sit the **shared, sharded** fallback maps, consulted
//!   (and filled) only on a worker's first miss, so one worker's cold
//!   computation still warms every other worker's fallback. Every
//!   shard-lock acquisition is counted in `cache_locks`.
//!
//! The caches:
//!
//! * the **per-pair verdict cache** (`equiv` memo): a canonically
//!   ordered `(TypeId, TypeId) → bool` map. A repeated pair — the
//!   dominant case under real traffic — skips even the `nrm` memo
//!   lookups, and its response says `"warm":true`.
//! * the **parse cache**: source string → interned [`TypeId`], skipping
//!   lex/parse/resolve for repeated type strings.
//! * the **module cache** (`check` op): source → checked
//!   [`Module`](algst_check::Module), see [`algst_check::cache`].
//!
//! Request counters are tallied per batch in worker-local integers and
//! folded into the shared atomics once per batch, so the per-request
//! warm path performs no atomic RMWs either. Statistics therefore trail
//! the live state by at most one in-flight batch per worker (a `stats`
//! request folds its own worker's tally first).

use crate::protocol::{Op, Request, Response, Snapshot};
use crate::resolve::type_from_str;
use algst_check::cache::ModuleCache;
use algst_core::shared::SharedStore;
use algst_core::store::TypeId;
use algst_core::Session;
use crossbeam::channel::{bounded, Receiver, Sender};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// Lock shards for the shared fallback caches. Worker-local caches
/// absorb the warm path; the shards only see each worker's first miss
/// on a key, so a small fixed count is plenty.
const SHARDS: usize = 16;

/// What the workers send back per batch: the submitter's sequence tag
/// plus the responses, in batch order. The tag lets a submitter with
/// several batches in flight (a pipelining connection) reassemble
/// per-connection response order even though batches complete on
/// different workers at different times.
pub type BatchReply = (u64, Vec<Response>);

/// A batch of requests plus the channel their responses go back on.
/// Responses come back as one [`BatchReply`] per batch, in batch order,
/// tagged with the submitter-chosen `seq`.
pub struct Batch {
    pub seq: u64,
    pub items: Vec<Request>,
    pub reply: Sender<BatchReply>,
}

impl std::fmt::Debug for Batch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Batch")
            .field("items", &self.items.len())
            .finish()
    }
}

/// Request-level shared state (everything above the type store).
struct EngineState {
    /// Shared fallback verdict cache, keyed by canonically ordered ids.
    verdicts: Vec<RwLock<HashMap<(TypeId, TypeId), bool>>>,
    /// Shared fallback parse cache (successes only; errors are rare and
    /// cheap to reproduce).
    parses: Vec<RwLock<HashMap<String, TypeId>>>,
    modules: ModuleCache,
    workers: usize,
    requests: AtomicU64,
    equiv_hits: AtomicU64,
    equiv_misses: AtomicU64,
    /// Shard-lock acquisitions on the fallback caches. Flat across a
    /// warm replay (worker-local caches answer everything).
    cache_locks: AtomicU64,
}

/// Per-worker private caches over [`EngineState`]'s shared fallbacks.
/// Both maps memo facts that never change (a verdict for a pair of
/// interned ids; the id a source string parses to), so caching them
/// per worker without invalidation is sound.
#[derive(Default)]
struct WorkerCaches {
    verdicts: HashMap<(TypeId, TypeId), bool>,
    parses: HashMap<String, TypeId>,
}

/// Per-batch counter tally, folded into [`EngineState`]'s atomics once
/// per batch (not per request).
#[derive(Default)]
struct Tally {
    requests: u64,
    equiv_hits: u64,
    equiv_misses: u64,
}

impl EngineState {
    fn new(workers: usize) -> EngineState {
        EngineState {
            verdicts: (0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
            parses: (0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
            modules: ModuleCache::new(),
            workers,
            requests: AtomicU64::new(0),
            equiv_hits: AtomicU64::new(0),
            equiv_misses: AtomicU64::new(0),
            cache_locks: AtomicU64::new(0),
        }
    }

    fn fold(&self, tally: &Tally) {
        if tally.requests > 0 {
            self.requests.fetch_add(tally.requests, Ordering::Relaxed);
        }
        if tally.equiv_hits > 0 {
            self.equiv_hits
                .fetch_add(tally.equiv_hits, Ordering::Relaxed);
        }
        if tally.equiv_misses > 0 {
            self.equiv_misses
                .fetch_add(tally.equiv_misses, Ordering::Relaxed);
        }
    }

    /// Snapshot of the request-level state, `store` merged in.
    fn snapshot(&self, store: &SharedStore) -> Snapshot {
        let (equiv_entries, parse_entries) = self.entries();
        let mut snap = Snapshot {
            requests: self.requests.load(Ordering::Relaxed),
            workers: self.workers,
            equiv_entries,
            equiv_hits: self.equiv_hits.load(Ordering::Relaxed),
            equiv_misses: self.equiv_misses.load(Ordering::Relaxed),
            parse_entries,
            cache_locks: self.cache_locks.load(Ordering::Relaxed),
            ..Snapshot::default()
        };
        snap.merge_store(store.stats());
        snap.merge_modules(self.modules.stats());
        snap
    }

    fn pair_shard(key: (TypeId, TypeId)) -> usize {
        (key.0.index() ^ key.1.index().rotate_left(16)) % SHARDS
    }

    fn count_cache_lock(&self) {
        self.cache_locks.fetch_add(1, Ordering::Relaxed);
    }

    fn verdict_get(&self, key: (TypeId, TypeId)) -> Option<bool> {
        self.count_cache_lock();
        self.verdicts[Self::pair_shard(key)]
            .read()
            .get(&key)
            .copied()
    }

    fn verdict_put(&self, key: (TypeId, TypeId), verdict: bool) {
        self.count_cache_lock();
        self.verdicts[Self::pair_shard(key)]
            .write()
            .insert(key, verdict);
    }

    fn str_shard(s: &str) -> usize {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        s.hash(&mut h);
        (h.finish() as usize) % SHARDS
    }

    fn parse_get(&self, src: &str) -> Option<TypeId> {
        self.count_cache_lock();
        self.parses[Self::str_shard(src)].read().get(src).copied()
    }

    fn parse_put(&self, src: &str, id: TypeId) {
        self.count_cache_lock();
        self.parses[Self::str_shard(src)]
            .write()
            .insert(src.to_owned(), id);
    }

    fn entries(&self) -> (u64, u64) {
        let verdicts = self.verdicts.iter().map(|s| s.read().len() as u64).sum();
        let parses = self.parses.iter().map(|s| s.read().len() as u64).sum();
        (verdicts, parses)
    }
}

/// The worker pool. Submit [`Batch`]es with [`Engine::submit`]; drop
/// (or [`Engine::shutdown`]) to stop the workers.
pub struct Engine {
    /// One queue per worker, batches dealt round-robin. A single shared
    /// MPMC queue double-wakes on small hosts: every push notifies a
    /// *parked* worker even though an active worker drains the message
    /// first, so the woken worker loses the race and re-parks — two
    /// context switches per batch instead of one once the pool grows.
    tx: Option<Vec<Sender<Batch>>>,
    next: AtomicUsize,
    workers: Vec<JoinHandle<()>>,
    shared: Arc<SharedStore>,
    state: Arc<EngineState>,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("workers", &self.workers.len())
            .finish()
    }
}

/// Queue capacity: enough in-flight batches to keep every worker busy
/// without buffering unbounded input.
/// Admission window per worker queue. The cap is chosen so that the
/// total of admitted-but-unfinished batches (queued across all queues +
/// one in service per worker) stays roughly constant as the pool grows:
/// queueing delay then converts into parallel service instead of
/// compounding with the worker count, keeping tail latency flat across
/// pool sizes.
fn queue_capacity(workers: usize) -> usize {
    const INFLIGHT_TARGET: usize = 16;
    (INFLIGHT_TARGET / workers.max(1)).max(2)
}

impl Engine {
    /// A pool of `workers` threads over the **process-global** session
    /// store ([`Session::global`]), so a long-running server shares warm
    /// state with in-process checking that also opted into it.
    pub fn new(workers: usize) -> Engine {
        Engine::with_session(workers, Session::global())
    }

    /// A pool over a caller-provided [`Session`]: each worker thread
    /// runs a sibling of it, and **both** `equiv` and `check` requests
    /// resolve, intern, elaborate and normalize against that store and
    /// no other. Injecting [`Session::new`] gives a fully isolated
    /// engine (benchmarks use this to measure cold starts reproducibly;
    /// multi-tenant embedders use it for per-tenant isolation).
    pub fn with_session(workers: usize, session: Session) -> Engine {
        Engine::with_store(workers, Arc::clone(session.store()))
    }

    /// [`Engine::with_session`] from the raw shared store handle.
    pub fn with_store(workers: usize, shared: Arc<SharedStore>) -> Engine {
        let workers = workers.max(1);
        let state = Arc::new(EngineState::new(workers));
        let mut txs = Vec::with_capacity(workers);
        let handles = (0..workers)
            .map(|i| {
                let (tx, rx) = bounded::<Batch>(queue_capacity(workers));
                txs.push(tx);
                let shared = Arc::clone(&shared);
                let state = Arc::clone(&state);
                std::thread::Builder::new()
                    .name(format!("algst-worker-{i}"))
                    .spawn(move || worker_loop(rx, shared, state))
                    .expect("spawn worker")
            })
            .collect();
        Engine {
            tx: Some(txs),
            next: AtomicUsize::new(0),
            workers: handles,
            shared,
            state,
        }
    }

    /// Number of worker threads.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// The store the pool works against.
    pub fn store(&self) -> &Arc<SharedStore> {
        &self.shared
    }

    /// Queues a batch; blocks when the queue is full (backpressure).
    /// `seq` is echoed back with the responses — submitters that
    /// pipeline several batches use consecutive numbers to restore
    /// per-connection order; one-shot callers pass 0.
    pub fn submit(&self, seq: u64, items: Vec<Request>, reply: Sender<BatchReply>) {
        let txs = self.tx.as_ref().expect("engine already shut down");
        let i = self.next.fetch_add(1, Ordering::Relaxed) % txs.len();
        txs[i]
            .send(Batch { seq, items, reply })
            .expect("workers alive while engine holds the sender");
    }

    /// Convenience for tests and simple callers: process one batch on
    /// the pool and wait for its responses (batch order preserved).
    pub fn process(&self, items: Vec<Request>) -> Vec<Response> {
        let (reply_tx, reply_rx) = bounded(1);
        self.submit(0, items, reply_tx);
        reply_rx.recv().expect("workers reply to every batch").1
    }

    /// A point-in-time statistics snapshot (`stats` op, bench reports).
    pub fn snapshot(&self) -> Snapshot {
        self.state.snapshot(&self.shared)
    }

    /// Stops accepting work, waits for queued batches to drain and joins
    /// the workers.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        drop(self.tx.take());
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

fn worker_loop(rx: Receiver<Batch>, shared: Arc<SharedStore>, state: Arc<EngineState>) {
    // Each worker attaches its own sibling session to the injected
    // store; the engine never touches any other store.
    let mut session = Session::with_store(shared);
    let mut caches = WorkerCaches::default();
    while let Ok(batch) = rx.recv() {
        let mut out = Vec::with_capacity(batch.items.len());
        let mut tally = Tally::default();
        for req in batch.items {
            tally.requests += 1;
            out.push(handle(&mut session, &state, &mut caches, &mut tally, req));
        }
        state.fold(&tally);
        // Publish this batch's freshly computed normal forms as a new
        // store generation: the next batch on *any* worker sees them.
        // A no-op (no locks) when the batch was fully warm.
        session.publish();
        // The submitter may be gone (client hung up, writer dead): the
        // send fails fast — the vendored channel wakes blocked senders
        // on receiver drop — and the responses are discarded. That is
        // the client's prerogative, not an engine error, and it must
        // never stall this worker (other connections share the pool).
        let _ = batch.reply.send((batch.seq, out));
    }
}

fn handle(
    session: &mut Session,
    state: &EngineState,
    caches: &mut WorkerCaches,
    tally: &mut Tally,
    req: Request,
) -> Response {
    let id = req.id;
    match req.op {
        Op::Equiv { lhs, rhs } => {
            let start = Instant::now();
            let a = match resolve_cached(session, state, caches, &lhs) {
                Ok(a) => a,
                Err(e) => {
                    return Response::Error {
                        id,
                        error: format!("lhs: {e}"),
                    }
                }
            };
            let b = match resolve_cached(session, state, caches, &rhs) {
                Ok(b) => b,
                Err(e) => {
                    return Response::Error {
                        id,
                        error: format!("rhs: {e}"),
                    }
                }
            };
            // Equivalence is symmetric: canonical key order doubles the
            // cache's effective coverage.
            let key = if a <= b { (a, b) } else { (b, a) };
            let (verdict, warm) = if let Some(&v) = caches.verdicts.get(&key) {
                tally.equiv_hits += 1;
                (v, true)
            } else if let Some(v) = state.verdict_get(key) {
                caches.verdicts.insert(key, v);
                tally.equiv_hits += 1;
                (v, true)
            } else {
                let v = session.equivalent_ids(key.0, key.1);
                state.verdict_put(key, v);
                caches.verdicts.insert(key, v);
                tally.equiv_misses += 1;
                (v, false)
            };
            Response::Equiv {
                id,
                verdict,
                warm,
                ns: start.elapsed().as_nanos() as u64,
            }
        }
        Op::Check { source } => {
            let start = Instant::now();
            // The module cache elaborates through this worker's session,
            // so checked signatures warm the same store `equiv` uses.
            let (result, cached) = state.modules.check_source(session, &source);
            Response::Check {
                id,
                ok: result.is_ok(),
                error: result.err().map(|e| e.to_string()),
                cached,
                ns: start.elapsed().as_nanos() as u64,
            }
        }
        Op::Stats => {
            // Publish and fold this worker's own tally first so its
            // work (including this batch's prefix) is included.
            session.publish();
            state.fold(&std::mem::take(tally));
            let snap = state.snapshot(session.store());
            Response::Stats { id, snapshot: snap }
        }
        Op::Shutdown => Response::Shutdown { id },
        Op::Invalid { error } => Response::Error { id, error },
    }
}

fn resolve_cached(
    session: &mut Session,
    state: &EngineState,
    caches: &mut WorkerCaches,
    src: &str,
) -> Result<TypeId, String> {
    if let Some(&id) = caches.parses.get(src) {
        return Ok(id);
    }
    if let Some(id) = state.parse_get(src) {
        caches.parses.insert(src.to_owned(), id);
        return Ok(id);
    }
    let ty = type_from_str(src)?;
    let id = session.intern(&ty);
    state.parse_put(src, id);
    caches.parses.insert(src.to_owned(), id);
    Ok(id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::parse_request;

    fn equiv(id: u64, lhs: &str, rhs: &str) -> Request {
        Request {
            id,
            op: Op::Equiv {
                lhs: lhs.into(),
                rhs: rhs.into(),
            },
        }
    }

    #[test]
    fn verdicts_match_equivalent_and_warm_on_repeat() {
        let engine = Engine::with_session(2, Session::new());
        let reqs = vec![
            equiv(1, "!Int.End!", "Dual (?Int.End?)"),
            equiv(2, "!Int.End!", "!Bool.End!"),
            equiv(3, "!Int.End!", "Dual (?Int.End?)"),
            // Symmetric repeat also hits the pair cache.
            equiv(4, "Dual (?Int.End?)", "!Int.End!"),
        ];
        let resp = engine.process(reqs);
        let view: Vec<(u64, bool, bool)> = resp
            .iter()
            .map(|r| match r {
                Response::Equiv {
                    id, verdict, warm, ..
                } => (*id, *verdict, *warm),
                other => panic!("unexpected response {other:?}"),
            })
            .collect();
        assert_eq!(
            view,
            vec![
                (1, true, false),
                (2, false, false),
                (3, true, true),
                (4, true, true)
            ]
        );
    }

    #[test]
    fn parse_errors_come_back_as_error_responses() {
        let engine = Engine::with_session(1, Session::new());
        let resp = engine.process(vec![equiv(1, "!Int.", "End!")]);
        assert!(matches!(&resp[0], Response::Error { id: 1, .. }));
    }

    #[test]
    fn check_op_uses_the_module_cache() {
        let engine = Engine::with_session(2, Session::new());
        let req = |id| parse_request(r#"{"op":"check","source":"main : Unit\nmain = ()"}"#, id);
        let first = engine.process(vec![req(1)]);
        let second = engine.process(vec![req(2)]);
        match (&first[0], &second[0]) {
            (
                Response::Check { ok: true, .. },
                Response::Check {
                    ok: true,
                    cached: true,
                    ..
                },
            ) => {}
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn stats_report_caches_and_store() {
        let engine = Engine::with_session(1, Session::new());
        engine.process(vec![
            equiv(1, "!Int.End!", "Dual (?Int.End?)"),
            equiv(2, "!Int.End!", "Dual (?Int.End?)"),
        ]);
        let resp = engine.process(vec![Request {
            id: 3,
            op: Op::Stats,
        }]);
        let Response::Stats { snapshot, .. } = &resp[0] else {
            panic!("expected stats");
        };
        assert!(snapshot.nodes > 0);
        assert_eq!(snapshot.equiv_entries, 1);
        assert_eq!(snapshot.equiv_hits, 1);
        assert_eq!(snapshot.equiv_misses, 1);
        assert!(snapshot.requests >= 2);
    }

    #[test]
    fn warm_replay_takes_no_locks() {
        let engine = Engine::with_session(1, Session::new());
        let reqs = || {
            vec![
                equiv(1, "!Int.End!", "Dual (?Int.End?)"),
                equiv(2, "?Bool.End?", "Dual (!Bool.End!)"),
                equiv(3, "!Int.End!", "!Bool.End!"),
            ]
        };
        // Two passes: the first computes, the second fills any remaining
        // worker-local cache entries from the shared fallbacks.
        engine.process(reqs());
        engine.process(reqs());
        let before = engine.snapshot();
        for _ in 0..3 {
            engine.process(reqs());
        }
        let after = engine.snapshot();
        assert_eq!(
            after.cache_locks, before.cache_locks,
            "warm replay must not touch the shared cache shards"
        );
        assert_eq!(
            after.store_locks, before.store_locks,
            "warm replay must not lock the type store"
        );
        assert_eq!(after.store_generation, before.store_generation);
    }

    #[test]
    fn batches_fan_out_across_workers() {
        let engine = Engine::with_session(4, Session::new());
        let (reply_tx, reply_rx) = bounded(64);
        let mut expected = 0u64;
        for b in 0..16 {
            let items = (0..8)
                .map(|i| {
                    expected += 1;
                    equiv(b * 8 + i + 1, "!Int.End!", "Dual (?Int.End?)")
                })
                .collect();
            engine.submit(b, items, reply_tx.clone());
        }
        drop(reply_tx);
        let mut got = 0u64;
        let mut seqs = Vec::new();
        while let Ok((seq, batch)) = reply_rx.recv() {
            seqs.push(seq);
            got += batch.len() as u64;
            for r in batch {
                assert!(matches!(r, Response::Equiv { verdict: true, .. }));
            }
        }
        assert_eq!(got, expected);
        // Every submitted batch came back exactly once, tag intact
        // (possibly out of submission order — that is the demux's job).
        seqs.sort_unstable();
        assert_eq!(seqs, (0..16).collect::<Vec<u64>>());
    }
}
