//! The batch engine: a worker pool over one **injected**
//! [`Session`] store.
//!
//! Requests travel in **batches** (`Vec<Request>` per channel message),
//! so channel synchronization amortizes over many requests — essential
//! when a warm `equiv` is tens of nanoseconds of actual work. Each
//! worker owns a sibling [`Session`] of the engine's injected one and
//! **publishes its memo deltas after every batch**, so normal forms
//! computed for one client warm every other worker's next batch.
//!
//! **Every** op runs against the injected session — `equiv` resolution
//! and interning, and the `check` op's elaboration/checking alike.
//! Nothing in the engine reaches a process-global store, so two engines
//! in one process are fully isolated (see `tests/isolation.rs`).
//!
//! Above the store sit the request-level caches. Like the type store
//! itself, they are **two-tier** so the warm path is lock-free:
//!
//! * each worker keeps **private** verdict and parse maps
//!   (`WorkerCaches`) answering repeated pairs/strings with zero
//!   shared-memory traffic — sound because a verdict for a pair of ids
//!   and the id for a source string never change;
//! * behind them sit the **shared, sharded** fallback maps, consulted
//!   (and filled) only on a worker's first miss, so one worker's cold
//!   computation still warms every other worker's fallback. Every
//!   shard-lock acquisition is counted in `cache_locks`.
//!
//! The caches:
//!
//! * the **per-pair verdict cache** (`equiv` memo): a canonically
//!   ordered `(TypeId, TypeId) → bool` map. A repeated pair — the
//!   dominant case under real traffic — skips even the `nrm` memo
//!   lookups, and its response says `"warm":true`.
//! * the **parse cache**: source string → interned [`TypeId`], skipping
//!   lex/parse/resolve for repeated type strings.
//! * the **module cache** (`check` op): source → checked
//!   [`Module`](algst_check::Module), see [`algst_check::cache`].
//!
//! Request counters are tallied per batch in worker-local integers and
//! folded into the shared atomics once per batch, so the per-request
//! warm path performs no atomic RMWs either. Statistics therefore trail
//! the live state by at most one in-flight batch per worker (a `stats`
//! request folds its own worker's tally first).

use crate::json::Value;
use crate::protocol::{Op, Request, Response, Snapshot};
use crate::resolve::type_from_str;
use algst_check::cache::ModuleCache;
use algst_core::shared::{SharedStore, StoreObs};
use algst_core::store::TypeId;
use algst_core::Session;
use algst_obs::{
    Counter, Field, Gauge, Histogram, Level, LocalHistogram, Registry, Span, TraceSink,
};
use crossbeam::channel::{bounded, Receiver, Sender};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Lock shards for the shared fallback caches. Worker-local caches
/// absorb the warm path; the shards only see each worker's first miss
/// on a key, so a small fixed count is plenty.
const SHARDS: usize = 16;

/// Entry cap per shared fallback shard (verdicts and parses alike). A
/// full shard is cleared: entries are pure memos, so eviction costs at
/// most one recomputation per key, and clearing keeps the policy O(1)
/// with no recency bookkeeping on the warm path.
const SHARD_CAP: usize = 65_536;

/// Entry cap for each worker-private cache map, same clear-on-full
/// policy as the shared shards.
const WORKER_CACHE_CAP: usize = 65_536;

/// What the workers send back per batch: the submitter's sequence tag
/// plus the responses, in batch order. The tag lets a submitter with
/// several batches in flight (a pipelining connection) reassemble
/// per-connection response order even though batches complete on
/// different workers at different times.
pub type BatchReply = (u64, Vec<Response>);

/// A batch of requests plus the channel their responses go back on.
/// Responses come back as one [`BatchReply`] per batch, in batch order,
/// tagged with the submitter-chosen `seq`.
pub struct Batch {
    pub seq: u64,
    /// Submitting connection (0 for stdio/one-shot callers); carried
    /// into slow-request trace events so cross-connection interference
    /// is attributable.
    pub conn: u64,
    /// When the batch entered the queue; the worker records the
    /// dequeue-to-service gap as `queue_sojourn_ns`.
    pub submitted: Instant,
    pub items: Vec<Request>,
    pub reply: Sender<BatchReply>,
}

impl std::fmt::Debug for Batch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Batch")
            .field("items", &self.items.len())
            .finish()
    }
}

/// One epoch-tagged shard of a shared fallback cache. `TypeId`s are
/// only meaningful within a store epoch, so every shard carries the
/// epoch its entries belong to: a reader on a different epoch misses,
/// a writer on a *newer* epoch clears-and-retags, and a write from an
/// *older* epoch (a worker that has not repinned yet) is dropped.
struct EpochShard<K, V> {
    epoch: u64,
    map: HashMap<K, V>,
}

impl<K: Eq + std::hash::Hash, V: Copy> EpochShard<K, V> {
    fn new() -> EpochShard<K, V> {
        EpochShard {
            epoch: 0,
            map: HashMap::new(),
        }
    }

    fn get<Q>(&self, epoch: u64, key: &Q) -> Option<V>
    where
        K: std::borrow::Borrow<Q>,
        Q: Eq + std::hash::Hash + ?Sized,
    {
        if self.epoch != epoch {
            return None;
        }
        self.map.get(key).copied()
    }

    fn put(&mut self, epoch: u64, key: K, value: V) {
        use std::cmp::Ordering as Cmp;
        match self.epoch.cmp(&epoch) {
            Cmp::Greater => return, // stale writer: drop
            Cmp::Less => {
                self.map.clear();
                self.epoch = epoch;
            }
            Cmp::Equal => {}
        }
        if self.map.len() >= SHARD_CAP {
            self.map.clear();
        }
        self.map.insert(key, value);
    }
}

/// Request-level shared state (everything above the type store).
struct EngineState {
    /// Shared fallback verdict cache, keyed by canonically ordered ids.
    verdicts: Vec<RwLock<EpochShard<(TypeId, TypeId), bool>>>,
    /// Shared fallback parse cache (successes only; errors are rare and
    /// cheap to reproduce).
    parses: Vec<RwLock<EpochShard<String, TypeId>>>,
    modules: ModuleCache,
    workers: usize,
    requests: AtomicU64,
    equiv_hits: AtomicU64,
    equiv_misses: AtomicU64,
    /// Shard-lock acquisitions on the fallback caches. Flat across a
    /// warm replay (worker-local caches answer everything).
    cache_locks: AtomicU64,
    /// Compaction policy: compact when the store's estimated live bytes
    /// exceed this (0 = no byte bound).
    max_store_bytes: AtomicU64,
    /// Compaction policy: compact every N requests (0 = no interval).
    compact_interval: AtomicU64,
    /// `requests` value at the last compaction, for the interval check.
    compacted_at: AtomicU64,
    /// Serializes compaction passes; `try_lock` so workers never queue
    /// behind one another here.
    compacting: parking_lot::Mutex<()>,
}

/// Per-worker private caches over [`EngineState`]'s shared fallbacks.
/// Both maps memo facts that are fixed *within a store epoch* (a
/// verdict for a pair of interned ids; the id a source string parses
/// to). The worker drops the whole struct when its session repins to a
/// new epoch, and each map clears at [`WORKER_CACHE_CAP`].
#[derive(Default)]
struct WorkerCaches {
    verdicts: HashMap<(TypeId, TypeId), bool>,
    parses: HashMap<String, TypeId>,
}

impl WorkerCaches {
    fn put_verdict(&mut self, key: (TypeId, TypeId), v: bool) {
        if self.verdicts.len() >= WORKER_CACHE_CAP {
            self.verdicts.clear();
        }
        self.verdicts.insert(key, v);
    }

    fn put_parse(&mut self, src: &str, id: TypeId) {
        if self.parses.len() >= WORKER_CACHE_CAP {
            self.parses.clear();
        }
        self.parses.insert(src.to_owned(), id);
    }
}

/// Per-batch counter tally, folded into [`EngineState`]'s atomics once
/// per batch (not per request).
#[derive(Default)]
struct Tally {
    requests: u64,
    equiv_hits: u64,
    equiv_misses: u64,
}

impl EngineState {
    fn new(workers: usize) -> EngineState {
        EngineState {
            verdicts: (0..SHARDS)
                .map(|_| RwLock::new(EpochShard::new()))
                .collect(),
            parses: (0..SHARDS)
                .map(|_| RwLock::new(EpochShard::new()))
                .collect(),
            modules: ModuleCache::new(),
            workers,
            requests: AtomicU64::new(0),
            equiv_hits: AtomicU64::new(0),
            equiv_misses: AtomicU64::new(0),
            cache_locks: AtomicU64::new(0),
            max_store_bytes: AtomicU64::new(0),
            compact_interval: AtomicU64::new(0),
            compacted_at: AtomicU64::new(0),
            compacting: parking_lot::Mutex::new(()),
        }
    }

    fn fold(&self, tally: &Tally) {
        if tally.requests > 0 {
            self.requests.fetch_add(tally.requests, Ordering::Relaxed);
        }
        if tally.equiv_hits > 0 {
            self.equiv_hits
                .fetch_add(tally.equiv_hits, Ordering::Relaxed);
        }
        if tally.equiv_misses > 0 {
            self.equiv_misses
                .fetch_add(tally.equiv_misses, Ordering::Relaxed);
        }
    }

    /// Snapshot of the request-level state, `store` merged in.
    fn snapshot(&self, store: &SharedStore) -> Snapshot {
        let (equiv_entries, parse_entries) = self.entries();
        let mut snap = Snapshot {
            requests: self.requests.load(Ordering::Relaxed),
            workers: self.workers,
            equiv_entries,
            equiv_hits: self.equiv_hits.load(Ordering::Relaxed),
            equiv_misses: self.equiv_misses.load(Ordering::Relaxed),
            parse_entries,
            cache_locks: self.cache_locks.load(Ordering::Relaxed),
            ..Snapshot::default()
        };
        snap.merge_store(store.stats());
        snap.merge_modules(self.modules.stats());
        snap
    }

    fn pair_shard(key: (TypeId, TypeId)) -> usize {
        (key.0.index() ^ key.1.index().rotate_left(16)) % SHARDS
    }

    fn count_cache_lock(&self) {
        self.cache_locks.fetch_add(1, Ordering::Relaxed);
    }

    fn verdict_get(&self, epoch: u64, key: (TypeId, TypeId)) -> Option<bool> {
        self.count_cache_lock();
        self.verdicts[Self::pair_shard(key)].read().get(epoch, &key)
    }

    fn verdict_put(&self, epoch: u64, key: (TypeId, TypeId), verdict: bool) {
        self.count_cache_lock();
        self.verdicts[Self::pair_shard(key)]
            .write()
            .put(epoch, key, verdict);
    }

    fn str_shard(s: &str) -> usize {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        s.hash(&mut h);
        (h.finish() as usize) % SHARDS
    }

    fn parse_get(&self, epoch: u64, src: &str) -> Option<TypeId> {
        self.count_cache_lock();
        self.parses[Self::str_shard(src)].read().get(epoch, src)
    }

    fn parse_put(&self, epoch: u64, src: &str, id: TypeId) {
        self.count_cache_lock();
        self.parses[Self::str_shard(src)]
            .write()
            .put(epoch, src.to_owned(), id);
    }

    fn entries(&self) -> (u64, u64) {
        let verdicts = self
            .verdicts
            .iter()
            .map(|s| s.read().map.len() as u64)
            .sum();
        let parses = self.parses.iter().map(|s| s.read().map.len() as u64).sum();
        (verdicts, parses)
    }
}

/// Observability wiring for an [`Engine`].
///
/// The default is metrics **on** with tracing **off**: counters and
/// histograms record into a fresh registry (per-worker local shards
/// folded at batch boundaries — no warm-path atomics), no events are
/// emitted, and nothing is considered slow. `metrics: false` turns the
/// engine's recording off entirely (the benchmark's baseline mode).
#[derive(Clone, Debug)]
pub struct ObsOptions {
    /// Where counters, gauges and histograms live. Share one registry
    /// across engine + front-end to scrape everything at once.
    pub registry: Arc<Registry>,
    /// Event sink for slow-request, connection and store events.
    pub sink: Arc<TraceSink>,
    /// Emit a `slow_request` event (at [`Level::Info`]) for any request
    /// whose in-worker service time is at or above this. `None` means
    /// never.
    pub trace_threshold: Option<Duration>,
    /// Master switch for the engine's own recording. Store hooks are
    /// only installed when true.
    pub metrics: bool,
}

impl Default for ObsOptions {
    fn default() -> ObsOptions {
        ObsOptions {
            registry: Arc::new(Registry::new()),
            sink: Arc::new(TraceSink::disabled()),
            trace_threshold: None,
            metrics: true,
        }
    }
}

/// Pre-resolved handles into the registry, so recording never re-hashes
/// a metric name.
pub(crate) struct EngineMetrics {
    requests: Arc<Counter>,
    equiv: Arc<Counter>,
    checks: Arc<Counter>,
    errors: Arc<Counter>,
    slow: Arc<Counter>,
    batches: Arc<Counter>,
    conns_accepted: Arc<Counter>,
    conns_closed: Arc<Counter>,
    conn_timeouts: Arc<Counter>,
    conns_active: Arc<Gauge>,
    workers: Arc<Gauge>,
    request_ns: Arc<Histogram>,
    sojourn_ns: Arc<Histogram>,
    publish_ns: Arc<Histogram>,
    parse_ns: Arc<Histogram>,
    intern_ns: Arc<Histogram>,
    equiv_ns: Arc<Histogram>,
    check_ns: Arc<Histogram>,
    read_parse_ns: Arc<Histogram>,
    write_ns: Arc<Histogram>,
    compactions: Arc<Counter>,
    reclaimed_bytes: Arc<Counter>,
    compaction_ns: Arc<Histogram>,
}

impl EngineMetrics {
    fn new(registry: &Registry) -> EngineMetrics {
        EngineMetrics {
            requests: registry.counter("requests_total"),
            equiv: registry.counter("equiv_requests_total"),
            checks: registry.counter("check_requests_total"),
            errors: registry.counter("error_responses_total"),
            slow: registry.counter("slow_requests_total"),
            batches: registry.counter("batches_total"),
            conns_accepted: registry.counter("conns_accepted_total"),
            conns_closed: registry.counter("conns_closed_total"),
            conn_timeouts: registry.counter("conn_timeouts_total"),
            conns_active: registry.gauge("conns_active"),
            workers: registry.gauge("workers"),
            request_ns: registry.histogram("request_service_ns"),
            sojourn_ns: registry.histogram("queue_sojourn_ns"),
            publish_ns: registry.histogram("batch_publish_ns"),
            parse_ns: registry.histogram("stage_parse_ns"),
            intern_ns: registry.histogram("stage_intern_ns"),
            equiv_ns: registry.histogram("stage_equiv_ns"),
            check_ns: registry.histogram("stage_check_ns"),
            read_parse_ns: registry.histogram("stage_read_parse_ns"),
            write_ns: registry.histogram("stage_write_ns"),
            compactions: registry.counter("store_compactions_total"),
            reclaimed_bytes: registry.counter("store_reclaimed_bytes_total"),
            compaction_ns: registry.histogram("store_compaction_ns"),
        }
    }
}

/// Worker-local observability shard: plain integers and local histogram
/// arrays, folded into the shared registry once per batch. The warm
/// path's entire observability cost is one `Instant` pair (already paid
/// for the response's `ns` field) plus a handful of these increments.
#[derive(Default)]
struct LocalObs {
    requests: u64,
    equiv: u64,
    checks: u64,
    errors: u64,
    slow: u64,
    batches: u64,
    request_ns: LocalHistogram,
    sojourn_ns: LocalHistogram,
    publish_ns: LocalHistogram,
    parse_ns: LocalHistogram,
    intern_ns: LocalHistogram,
    equiv_ns: LocalHistogram,
    check_ns: LocalHistogram,
}

/// The engine's observability state: options plus resolved handles.
/// Shared (behind `Arc`) with the serving front-end, which records
/// reader/writer stages and connection lifecycle through it.
pub(crate) struct EngineObs {
    opts: ObsOptions,
    m: EngineMetrics,
}

impl EngineObs {
    pub(crate) fn new(opts: ObsOptions) -> EngineObs {
        let m = EngineMetrics::new(&opts.registry);
        EngineObs { opts, m }
    }

    /// Is the engine recording at all?
    pub(crate) fn enabled(&self) -> bool {
        self.opts.metrics
    }

    pub(crate) fn sink(&self) -> &TraceSink {
        &self.opts.sink
    }

    fn threshold_ns(&self) -> Option<u64> {
        self.opts
            .trace_threshold
            .map(|d| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX))
    }

    /// Fold a worker's local shard into the shared registry.
    fn fold(&self, lobs: &mut LocalObs) {
        if !self.enabled() {
            return;
        }
        let m = &self.m;
        for (counter, n) in [
            (&m.requests, lobs.requests),
            (&m.equiv, lobs.equiv),
            (&m.checks, lobs.checks),
            (&m.errors, lobs.errors),
            (&m.slow, lobs.slow),
            (&m.batches, lobs.batches),
        ] {
            if n > 0 {
                counter.add(n);
            }
        }
        m.request_ns.fold(&mut lobs.request_ns);
        m.sojourn_ns.fold(&mut lobs.sojourn_ns);
        m.publish_ns.fold(&mut lobs.publish_ns);
        m.parse_ns.fold(&mut lobs.parse_ns);
        m.intern_ns.fold(&mut lobs.intern_ns);
        m.equiv_ns.fold(&mut lobs.equiv_ns);
        m.check_ns.fold(&mut lobs.check_ns);
        // The histogram folds drained themselves; zero the counters.
        lobs.requests = 0;
        lobs.equiv = 0;
        lobs.checks = 0;
        lobs.errors = 0;
        lobs.slow = 0;
        lobs.batches = 0;
    }

    // ---- hooks for the serving front-end (same crate) ----

    pub(crate) fn conn_opened(&self) {
        if self.enabled() {
            self.m.conns_accepted.inc();
            self.m.conns_active.inc();
        }
    }

    pub(crate) fn conn_closed(&self) {
        if self.enabled() {
            self.m.conns_closed.inc();
            self.m.conns_active.dec();
        }
    }

    pub(crate) fn conn_timeout(&self) {
        if self.enabled() {
            self.m.conn_timeouts.inc();
        }
    }

    /// Reader-side read+parse time for one consumed input chunk.
    pub(crate) fn record_read_parse(&self, ns: u64) {
        if self.enabled() {
            self.m.read_parse_ns.record(ns);
        }
    }

    /// Writer-side serialize+write time for one batch of responses.
    pub(crate) fn record_write(&self, ns: u64) {
        if self.enabled() {
            self.m.write_ns.record(ns);
        }
    }
}

/// The worker pool. Submit [`Batch`]es with [`Engine::submit`]; drop
/// (or [`Engine::shutdown`]) to stop the workers.
pub struct Engine {
    /// One queue per worker, batches dealt round-robin. A single shared
    /// MPMC queue double-wakes on small hosts: every push notifies a
    /// *parked* worker even though an active worker drains the message
    /// first, so the woken worker loses the race and re-parks — two
    /// context switches per batch instead of one once the pool grows.
    tx: Option<Vec<Sender<Batch>>>,
    next: AtomicUsize,
    workers: Vec<JoinHandle<()>>,
    shared: Arc<SharedStore>,
    state: Arc<EngineState>,
    obs: Arc<EngineObs>,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("workers", &self.workers.len())
            .finish()
    }
}

/// Queue capacity: enough in-flight batches to keep every worker busy
/// without buffering unbounded input.
/// Admission window per worker queue. The cap is chosen so that the
/// total of admitted-but-unfinished batches (queued across all queues +
/// one in service per worker) stays roughly constant as the pool grows:
/// queueing delay then converts into parallel service instead of
/// compounding with the worker count, keeping tail latency flat across
/// pool sizes.
fn queue_capacity(workers: usize) -> usize {
    const INFLIGHT_TARGET: usize = 16;
    (INFLIGHT_TARGET / workers.max(1)).max(2)
}

impl Engine {
    /// A pool of `workers` threads over the **process-global** session
    /// store ([`Session::global`]), so a long-running server shares warm
    /// state with in-process checking that also opted into it.
    pub fn new(workers: usize) -> Engine {
        Engine::with_session(workers, Session::global())
    }

    /// A pool over a caller-provided [`Session`]: each worker thread
    /// runs a sibling of it, and **both** `equiv` and `check` requests
    /// resolve, intern, elaborate and normalize against that store and
    /// no other. Injecting [`Session::new`] gives a fully isolated
    /// engine (benchmarks use this to measure cold starts reproducibly;
    /// multi-tenant embedders use it for per-tenant isolation).
    pub fn with_session(workers: usize, session: Session) -> Engine {
        Engine::with_store(workers, Arc::clone(session.store()))
    }

    /// [`Engine::with_session`] from the raw shared store handle.
    pub fn with_store(workers: usize, shared: Arc<SharedStore>) -> Engine {
        Engine::with_store_obs(workers, shared, ObsOptions::default())
    }

    /// [`Engine::with_session`] with explicit observability wiring.
    pub fn with_obs(workers: usize, session: Session, obs: ObsOptions) -> Engine {
        Engine::with_store_obs(workers, Arc::clone(session.store()), obs)
    }

    /// [`Engine::with_store`] with explicit observability wiring.
    pub fn with_store_obs(workers: usize, shared: Arc<SharedStore>, opts: ObsOptions) -> Engine {
        let workers = workers.max(1);
        let obs = Arc::new(EngineObs::new(opts));
        if obs.enabled() {
            obs.m.workers.set(workers as i64);
            // Store hooks: the cold interning slow path and snapshot
            // installs record into the same registry. First installer
            // wins — a second engine on the same store keeps the first
            // engine's hooks (and its registry).
            let registry = &obs.opts.registry;
            shared.install_obs(StoreObs {
                slow_path_ns: registry.histogram("store_slow_path_ns"),
                install_ns: registry.histogram("snapshot_install_ns"),
                sink: Arc::clone(&obs.opts.sink),
            });
        }
        let state = Arc::new(EngineState::new(workers));
        let mut txs = Vec::with_capacity(workers);
        let handles = (0..workers)
            .map(|i| {
                let (tx, rx) = bounded::<Batch>(queue_capacity(workers));
                txs.push(tx);
                let shared = Arc::clone(&shared);
                let state = Arc::clone(&state);
                let obs = Arc::clone(&obs);
                std::thread::Builder::new()
                    .name(format!("algst-worker-{i}"))
                    .spawn(move || worker_loop(i, rx, shared, state, obs))
                    .expect("spawn worker")
            })
            .collect();
        Engine {
            tx: Some(txs),
            next: AtomicUsize::new(0),
            workers: handles,
            shared,
            state,
            obs,
        }
    }

    /// Number of worker threads.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// The store the pool works against.
    pub fn store(&self) -> &Arc<SharedStore> {
        &self.shared
    }

    /// Configures automatic store compaction. The store compacts when
    /// its estimated live bytes exceed `max_store_bytes`, or every
    /// `compact_interval` requests — zero disables the respective
    /// trigger (both zero, the default: compaction off). Workers check
    /// the triggers after every batch publish with atomic loads only,
    /// so the serving path pays nothing while the bounds hold.
    pub fn set_compaction(&self, max_store_bytes: u64, compact_interval: u64) {
        self.state
            .max_store_bytes
            .store(max_store_bytes, Ordering::Relaxed);
        self.state
            .compact_interval
            .store(compact_interval, Ordering::Relaxed);
    }

    /// The metrics registry this engine records into (counters, gauges,
    /// histograms — see the README's metrics catalogue). Hand it to the
    /// Prometheus endpoint or scrape it directly.
    pub fn metrics_registry(&self) -> &Arc<Registry> {
        &self.obs.opts.registry
    }

    /// The event sink this engine (and its store) emits into.
    pub fn trace_sink(&self) -> &Arc<TraceSink> {
        &self.obs.opts.sink
    }

    /// The flat `(key, value)` metrics view the `metrics` op returns:
    /// the registry (histograms summarized as `_count`/`_sum`/
    /// `_p50`/`_p95`/`_p99`), store statistics (`store_*`) and
    /// request-cache statistics (`cache_*`), sorted by key.
    pub fn metrics_fields(&self) -> Vec<(String, Value)> {
        metrics_fields(
            &self.obs.opts.registry.snapshot(),
            &self.state,
            &self.shared,
        )
    }

    /// Observability hooks shared with the serving front-end.
    pub(crate) fn obs(&self) -> &Arc<EngineObs> {
        &self.obs
    }

    /// Queues a batch; blocks when the queue is full (backpressure).
    /// `seq` is echoed back with the responses — submitters that
    /// pipeline several batches use consecutive numbers to restore
    /// per-connection order; one-shot callers pass 0.
    pub fn submit(&self, seq: u64, items: Vec<Request>, reply: Sender<BatchReply>) {
        self.submit_conn(0, seq, items, reply);
    }

    /// [`Engine::submit`] tagged with the submitting connection id, so
    /// slow-request trace events can name the connection.
    pub fn submit_conn(&self, conn: u64, seq: u64, items: Vec<Request>, reply: Sender<BatchReply>) {
        let txs = self.tx.as_ref().expect("engine already shut down");
        let i = self.next.fetch_add(1, Ordering::Relaxed) % txs.len();
        txs[i]
            .send(Batch {
                seq,
                conn,
                submitted: Instant::now(),
                items,
                reply,
            })
            .expect("workers alive while engine holds the sender");
    }

    /// Convenience for tests and simple callers: process one batch on
    /// the pool and wait for its responses (batch order preserved).
    pub fn process(&self, items: Vec<Request>) -> Vec<Response> {
        let (reply_tx, reply_rx) = bounded(1);
        self.submit(0, items, reply_tx);
        reply_rx.recv().expect("workers reply to every batch").1
    }

    /// A point-in-time statistics snapshot (`stats` op, bench reports).
    pub fn snapshot(&self) -> Snapshot {
        self.state.snapshot(&self.shared)
    }

    /// Stops accepting work, waits for queued batches to drain and joins
    /// the workers.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        drop(self.tx.take());
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

fn worker_loop(
    widx: usize,
    rx: Receiver<Batch>,
    shared: Arc<SharedStore>,
    state: Arc<EngineState>,
    obs: Arc<EngineObs>,
) {
    // Each worker attaches its own sibling session to the injected
    // store; the engine never touches any other store.
    let mut session = Session::with_store(shared);
    let mut caches = WorkerCaches::default();
    let mut lobs = LocalObs::default();
    while let Ok(batch) = rx.recv() {
        // A compaction may have installed a new store epoch since the
        // last batch. Repinning at the batch boundary keeps the whole
        // batch on one consistent epoch; the private caches hold ids
        // from the old epoch, so they go with it.
        if session.repin() {
            caches = WorkerCaches::default();
        }
        if obs.enabled() {
            lobs.batches += 1;
            lobs.sojourn_ns
                .record(u64::try_from(batch.submitted.elapsed().as_nanos()).unwrap_or(u64::MAX));
        }
        let mut out = Vec::with_capacity(batch.items.len());
        let mut tally = Tally::default();
        let mut ctx = ReqCtx {
            obs: &obs,
            lobs: &mut lobs,
            conn: batch.conn,
            widx,
        };
        for req in batch.items {
            tally.requests += 1;
            out.push(handle(
                &mut session,
                &state,
                &mut caches,
                &mut tally,
                &mut ctx,
                req,
            ));
        }
        state.fold(&tally);
        // Publish this batch's freshly computed normal forms as a new
        // store generation: the next batch on *any* worker sees them.
        // A no-op (no locks) when the batch was fully warm.
        if obs.enabled() {
            let span = Span::begin();
            session.publish();
            span.record(&mut lobs.publish_ns);
        } else {
            session.publish();
        }
        // With the batch's deltas published, see whether the store has
        // outgrown its bounds (atomic loads only when it hasn't).
        maybe_compact(session.store(), &state, &obs);
        // Fold this batch's observability shard before replying, so a
        // scraper that has seen all its responses sees all its counts.
        obs.fold(&mut lobs);
        // The submitter may be gone (client hung up, writer dead): the
        // send fails fast — the vendored channel wakes blocked senders
        // on receiver drop — and the responses are discarded. That is
        // the client's prerogative, not an engine error, and it must
        // never stall this worker (other connections share the pool).
        let _ = batch.reply.send((batch.seq, out));
    }
}

/// Per-stage timings of one cold request, for the slow-request trace.
/// Warm requests leave everything at zero.
#[derive(Clone, Copy, Default)]
struct Stages {
    parse_ns: u64,
    intern_ns: u64,
    work_ns: u64,
}

/// Per-request observability context: the engine hooks, this worker's
/// local shard, and the batch's connection/worker labels.
struct ReqCtx<'a> {
    obs: &'a EngineObs,
    lobs: &'a mut LocalObs,
    conn: u64,
    widx: usize,
}

impl ReqCtx<'_> {
    /// Account one finished request: total-latency histogram, per-op
    /// counter, and — above the threshold — a `slow_request` event with
    /// the per-stage breakdown. `total_ns` reuses the `Instant` pair the
    /// response's `ns` field already paid for, so the warm path adds
    /// only local-array increments.
    fn finish(&mut self, id: u64, op: &'static str, warm: bool, total_ns: u64, stages: Stages) {
        if !self.obs.enabled() {
            return;
        }
        self.lobs.requests += 1;
        match op {
            "equiv" => self.lobs.equiv += 1,
            "check" => self.lobs.checks += 1,
            "error" => self.lobs.errors += 1,
            _ => {}
        }
        self.lobs.request_ns.record(total_ns);
        if let Some(threshold) = self.obs.threshold_ns() {
            if total_ns >= threshold {
                self.lobs.slow += 1;
                self.obs.sink().event(
                    Level::Info,
                    "slow_request",
                    &[
                        ("request_id", Field::U64(id)),
                        ("conn", Field::U64(self.conn)),
                        ("worker", Field::U64(self.widx as u64)),
                        ("op", Field::Str(op)),
                        ("warm", Field::Bool(warm)),
                        ("total_us", Field::F64(total_ns as f64 / 1_000.0)),
                        ("parse_us", Field::F64(stages.parse_ns as f64 / 1_000.0)),
                        ("intern_us", Field::F64(stages.intern_ns as f64 / 1_000.0)),
                        ("work_us", Field::F64(stages.work_ns as f64 / 1_000.0)),
                    ],
                );
            }
        }
    }
}

fn handle(
    session: &mut Session,
    state: &EngineState,
    caches: &mut WorkerCaches,
    tally: &mut Tally,
    ctx: &mut ReqCtx<'_>,
    req: Request,
) -> Response {
    let id = req.id;
    match req.op {
        Op::Equiv { lhs, rhs } => {
            let start = Instant::now();
            let mut stages = Stages::default();
            let a = match resolve_cached(session, state, caches, ctx, &mut stages, &lhs) {
                Ok(a) => a,
                Err(e) => {
                    let total = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
                    ctx.finish(id, "error", false, total, stages);
                    return Response::Error {
                        id,
                        error: format!("lhs: {e}"),
                    };
                }
            };
            let b = match resolve_cached(session, state, caches, ctx, &mut stages, &rhs) {
                Ok(b) => b,
                Err(e) => {
                    let total = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
                    ctx.finish(id, "error", false, total, stages);
                    return Response::Error {
                        id,
                        error: format!("rhs: {e}"),
                    };
                }
            };
            // Equivalence is symmetric: canonical key order doubles the
            // cache's effective coverage.
            let key = if a <= b { (a, b) } else { (b, a) };
            let (verdict, warm) = if let Some(&v) = caches.verdicts.get(&key) {
                tally.equiv_hits += 1;
                (v, true)
            } else if let Some(v) = state.verdict_get(session.epoch(), key) {
                caches.put_verdict(key, v);
                tally.equiv_hits += 1;
                (v, true)
            } else {
                // Cold equivalence runs at µs scale: an extra timer pair
                // is noise here and gold for attribution.
                let span = ctx.obs.enabled().then(Span::begin);
                let v = session.equivalent_ids(key.0, key.1);
                if let Some(span) = span {
                    stages.work_ns = span.record(&mut ctx.lobs.equiv_ns);
                }
                // Stale sessions hold (possibly) local-private ids in
                // `key`: correct for this worker, meaningless — or worse,
                // colliding — in any sibling's mirror. Keep the verdict
                // private (see `resolve_cached`).
                if !session.is_stale() {
                    state.verdict_put(session.epoch(), key, v);
                }
                caches.put_verdict(key, v);
                tally.equiv_misses += 1;
                (v, false)
            };
            let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            ctx.finish(id, "equiv", warm, ns, stages);
            Response::Equiv {
                id,
                verdict,
                warm,
                ns,
            }
        }
        Op::Check { source } => {
            let start = Instant::now();
            // The module cache elaborates through this worker's session,
            // so checked signatures warm the same store `equiv` uses.
            let (result, cached) = state.modules.check_source(session, &source);
            let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            if ctx.obs.enabled() && !cached {
                ctx.lobs.check_ns.record(ns);
            }
            ctx.finish(
                id,
                "check",
                cached,
                ns,
                Stages {
                    work_ns: if cached { 0 } else { ns },
                    ..Stages::default()
                },
            );
            Response::Check {
                id,
                ok: result.is_ok(),
                error: result.err().map(|e| e.to_string()),
                cached,
                ns,
            }
        }
        Op::Stats { delta } => {
            // Publish and fold this worker's own tally first so its
            // work (including this batch's prefix) is included.
            session.publish();
            state.fold(&std::mem::take(tally));
            ctx.finish(id, "stats", true, 0, Stages::default());
            let snap = state.snapshot(session.store());
            Response::Stats {
                id,
                snapshot: snap,
                delta,
            }
        }
        Op::Metrics => {
            // Same pre-fold dance as `stats`, plus this worker's obs
            // shard, so the registry reflects every request whose
            // response precedes this one on the connection.
            session.publish();
            state.fold(&std::mem::take(tally));
            ctx.finish(id, "metrics", true, 0, Stages::default());
            ctx.obs.fold(ctx.lobs);
            let fields = metrics_fields(&ctx.obs.opts.registry.snapshot(), state, session.store());
            Response::Metrics { id, fields }
        }
        Op::Tenants => {
            // The engine serves exactly one tenant's store; the listing
            // lives in the routed front-end's registry, which answers
            // this op before it ever reaches a worker.
            ctx.finish(id, "error", false, 0, Stages::default());
            Response::Error {
                id,
                error: "tenants: multi-tenant serving is disabled (start with --multi-tenant)"
                    .into(),
            }
        }
        Op::Shutdown => {
            ctx.finish(id, "shutdown", true, 0, Stages::default());
            Response::Shutdown { id }
        }
        Op::Invalid { error } => {
            ctx.finish(id, "error", false, 0, Stages::default());
            Response::Error { id, error }
        }
    }
}

fn resolve_cached(
    session: &mut Session,
    state: &EngineState,
    caches: &mut WorkerCaches,
    ctx: &mut ReqCtx<'_>,
    stages: &mut Stages,
    src: &str,
) -> Result<TypeId, String> {
    if let Some(&id) = caches.parses.get(src) {
        return Ok(id);
    }
    if let Some(id) = state.parse_get(session.epoch(), src) {
        caches.put_parse(src, id);
        return Ok(id);
    }
    // Cold resolve: lex/parse/resolve then intern, each timed when the
    // engine is recording (first-sight strings already pay µs here).
    let span = ctx.obs.enabled().then(Span::begin);
    let ty = type_from_str(src)?;
    if let Some(span) = span {
        stages.parse_ns += span.record(&mut ctx.lobs.parse_ns);
    }
    let span = ctx.obs.enabled().then(Span::begin);
    let id = session.intern(&ty);
    if let Some(span) = span {
        stages.intern_ns += span.record(&mut ctx.lobs.intern_ns);
    }
    // A session that is (or just went) stale interns local-private ids:
    // they name this worker's mirror only, so they may warm the private
    // cache but must never enter the shared shard — another worker at
    // the same pinned epoch would read them against a different mirror.
    if !session.is_stale() {
        state.parse_put(session.epoch(), src, id);
    }
    caches.put_parse(src, id);
    Ok(id)
}

/// Compaction driver, called by every worker after its batch publish.
///
/// The trigger check is atomic-only (two relaxed policy loads plus a
/// lock-free `live_bytes` probe), so with compaction off — the default
/// — or while the store sits within bounds, the batch path pays a few
/// loads and nothing else. When a trigger fires, one worker `try_lock`s
/// the compaction mutex (losers go straight back to serving) and:
///
/// 1. gathers **roots** from the shared fallback caches — every
///    parse-cache value and both ids of every verdict key — under the
///    shard locks (counted, like all shard acquisitions);
/// 2. runs [`SharedStore::compact`], which keeps the roots, their
///    children and their memoized normal forms transitively live, so a
///    warm replay after compaction still answers lock-free;
/// 3. rebuilds the shards in place with remapped ids under the new
///    epoch tag. The remap is monotone in the old index, so canonically
///    ordered verdict keys stay canonical; entries interned after root
///    gathering are absent from the remap and dropped (cache loss, not
///    an error — they recompute on next sight);
/// 4. clears the module cache so subsequent `check`s re-elaborate and
///    re-warm the new epoch's memo tables.
///
/// The two triggers differ in what they retain. The **interval**
/// trigger is hygiene: it keeps the cache roots, reclaiming only nodes
/// nothing refers to anymore (evicted cache entries, `check`
/// elaboration garbage, memo values of dead ids). The **byte bound**
/// is a hard bound: the caches themselves are what keep churned types
/// live, so when the store outgrows the bound the engine *sheds* the
/// request-level caches and compacts with zero roots — the store drops
/// to its floor and warm state rebuilds from traffic. Growth under
/// churn is therefore a sawtooth bounded by `max_store_bytes` plus one
/// inter-check batch of interning.
fn maybe_compact(shared: &SharedStore, state: &EngineState, obs: &EngineObs) {
    let max_bytes = state.max_store_bytes.load(Ordering::Relaxed);
    let interval = state.compact_interval.load(Ordering::Relaxed);
    if max_bytes == 0 && interval == 0 {
        return;
    }
    let over_bytes = || max_bytes != 0 && shared.live_bytes() > max_bytes;
    let over_interval = |requests: u64| {
        interval != 0
            && requests.saturating_sub(state.compacted_at.load(Ordering::Relaxed)) >= interval
    };
    let requests = state.requests.load(Ordering::Relaxed);
    if !over_bytes() && !over_interval(requests) {
        return;
    }
    // One compactor at a time; losers of the race resume serving.
    let Some(_guard) = state.compacting.try_lock() else {
        return;
    };
    // Re-check under the lock: the previous winner may have already
    // brought the store back under its bounds.
    let shed = over_bytes();
    if !shed && !over_interval(requests) {
        return;
    }
    let started = Instant::now();
    let mut roots = Vec::new();
    if !shed {
        for shard in &state.parses {
            state.count_cache_lock();
            roots.extend(shard.read().map.values().copied());
        }
        for shard in &state.verdicts {
            state.count_cache_lock();
            for &(a, b) in shard.read().map.keys() {
                roots.push(a);
                roots.push(b);
            }
        }
    }
    let outcome = shared.compact(&roots);
    for shard in &state.parses {
        state.count_cache_lock();
        let mut shard = shard.write();
        if shard.epoch < outcome.epoch {
            let remapped: Vec<(String, TypeId)> = shard
                .map
                .drain()
                .filter_map(|(k, v)| outcome.remap.get(&v).map(|&v| (k, v)))
                .collect();
            shard.map.extend(remapped);
            shard.epoch = outcome.epoch;
        }
    }
    for shard in &state.verdicts {
        state.count_cache_lock();
        let mut shard = shard.write();
        if shard.epoch < outcome.epoch {
            let remapped: Vec<((TypeId, TypeId), bool)> = shard
                .map
                .drain()
                .filter_map(
                    |((a, b), v)| match (outcome.remap.get(&a), outcome.remap.get(&b)) {
                        (Some(&a), Some(&b)) => Some(((a, b), v)),
                        _ => None,
                    },
                )
                .collect();
            shard.map.extend(remapped);
            shard.epoch = outcome.epoch;
        }
    }
    state.modules.clear();
    state.compacted_at.store(requests, Ordering::Relaxed);
    if obs.enabled() {
        obs.m.compactions.inc();
        obs.m
            .reclaimed_bytes
            .add(outcome.bytes_before.saturating_sub(outcome.bytes_after));
        obs.m
            .compaction_ns
            .record(u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX));
    }
}

/// Assemble the flat, sorted `(key, value)` list behind the `metrics`
/// op: registry counters/gauges verbatim, histograms summarized as
/// `_count`/`_sum`/`_p50`/`_p95`/`_p99`, store statistics under
/// `store_*`, request-cache statistics under `cache_*`.
fn metrics_fields(
    snap: &algst_obs::MetricsSnapshot,
    state: &EngineState,
    store: &SharedStore,
) -> Vec<(String, Value)> {
    let mut fields: Vec<(String, Value)> = Vec::with_capacity(
        snap.counters.len() + snap.gauges.len() + 5 * snap.histograms.len() + 16,
    );
    for (name, value) in &snap.counters {
        fields.push((name.clone(), Value::Int(*value as i64)));
    }
    for (name, value) in &snap.gauges {
        fields.push((name.clone(), Value::Int(*value)));
    }
    for (name, hist) in &snap.histograms {
        fields.push((format!("{name}_count"), Value::Int(hist.count as i64)));
        fields.push((format!("{name}_sum"), Value::Int(hist.sum as i64)));
        fields.push((
            format!("{name}_p50"),
            Value::Int(hist.quantile(0.50) as i64),
        ));
        fields.push((
            format!("{name}_p95"),
            Value::Int(hist.quantile(0.95) as i64),
        ));
        fields.push((
            format!("{name}_p99"),
            Value::Int(hist.quantile(0.99) as i64),
        ));
    }
    let s = store.stats();
    for (name, value) in [
        ("store_nodes", s.nodes),
        ("store_generation", s.generation),
        ("store_epoch", s.epoch),
        ("store_bytes", s.live_bytes()),
        ("store_arena_bytes", s.arena_bytes),
        ("store_snapshot_bytes", s.snapshot_bytes),
        ("store_intern_entries", s.intern_entries),
        ("store_memo_entries", s.memo_entries),
        ("store_compactions", s.compactions),
        ("store_reclaimed_bytes", s.reclaimed_bytes),
        ("store_snapshot_installs", s.snapshot_installs),
        ("store_slow_path_total", s.slow_path),
        ("store_lock_acquisitions", s.lock_acquisitions),
        ("store_nrm_hits", s.nrm_hits),
        ("store_nrm_misses", s.nrm_misses),
        ("store_publishes", s.publishes),
        ("store_workers", s.workers),
    ] {
        fields.push((name.to_string(), Value::Int(value as i64)));
    }
    let (equiv_entries, parse_entries) = state.entries();
    let modules = state.modules.stats();
    for (name, value) in [
        ("cache_equiv_entries", equiv_entries),
        ("cache_parse_entries", parse_entries),
        ("cache_module_entries", modules.entries),
        ("cache_module_hits", modules.hits),
        ("cache_module_evictions", modules.evictions),
        (
            "cache_shard_locks",
            state.cache_locks.load(Ordering::Relaxed),
        ),
    ] {
        fields.push((name.to_string(), Value::Int(value as i64)));
    }
    fields.sort_by(|a, b| a.0.cmp(&b.0));
    fields
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::parse_request;

    fn equiv(id: u64, lhs: &str, rhs: &str) -> Request {
        Request {
            id,
            op: Op::Equiv {
                lhs: lhs.into(),
                rhs: rhs.into(),
            },
        }
    }

    #[test]
    fn verdicts_match_equivalent_and_warm_on_repeat() {
        let engine = Engine::with_session(2, Session::new());
        let reqs = vec![
            equiv(1, "!Int.End!", "Dual (?Int.End?)"),
            equiv(2, "!Int.End!", "!Bool.End!"),
            equiv(3, "!Int.End!", "Dual (?Int.End?)"),
            // Symmetric repeat also hits the pair cache.
            equiv(4, "Dual (?Int.End?)", "!Int.End!"),
        ];
        let resp = engine.process(reqs);
        let view: Vec<(u64, bool, bool)> = resp
            .iter()
            .map(|r| match r {
                Response::Equiv {
                    id, verdict, warm, ..
                } => (*id, *verdict, *warm),
                other => panic!("unexpected response {other:?}"),
            })
            .collect();
        assert_eq!(
            view,
            vec![
                (1, true, false),
                (2, false, false),
                (3, true, true),
                (4, true, true)
            ]
        );
    }

    #[test]
    fn parse_errors_come_back_as_error_responses() {
        let engine = Engine::with_session(1, Session::new());
        let resp = engine.process(vec![equiv(1, "!Int.", "End!")]);
        assert!(matches!(&resp[0], Response::Error { id: 1, .. }));
    }

    #[test]
    fn check_op_uses_the_module_cache() {
        let engine = Engine::with_session(2, Session::new());
        let req = |id| parse_request(r#"{"op":"check","source":"main : Unit\nmain = ()"}"#, id);
        let first = engine.process(vec![req(1)]);
        let second = engine.process(vec![req(2)]);
        match (&first[0], &second[0]) {
            (
                Response::Check { ok: true, .. },
                Response::Check {
                    ok: true,
                    cached: true,
                    ..
                },
            ) => {}
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn stats_report_caches_and_store() {
        let engine = Engine::with_session(1, Session::new());
        engine.process(vec![
            equiv(1, "!Int.End!", "Dual (?Int.End?)"),
            equiv(2, "!Int.End!", "Dual (?Int.End?)"),
        ]);
        let resp = engine.process(vec![Request {
            id: 3,
            op: Op::Stats { delta: false },
        }]);
        let Response::Stats { snapshot, .. } = &resp[0] else {
            panic!("expected stats");
        };
        assert!(snapshot.nodes > 0);
        assert_eq!(snapshot.equiv_entries, 1);
        assert_eq!(snapshot.equiv_hits, 1);
        assert_eq!(snapshot.equiv_misses, 1);
        assert!(snapshot.requests >= 2);
    }

    #[test]
    fn warm_replay_takes_no_locks() {
        // Metrics AND tracing enabled — the observability layer must not
        // cost the warm path its zero-lock property (ISSUE 8 criterion).
        let (sink, trace_buf) = TraceSink::to_buffer(Level::Debug);
        let opts = ObsOptions {
            sink: Arc::new(sink),
            trace_threshold: Some(Duration::from_secs(3600)),
            ..ObsOptions::default()
        };
        let registry = Arc::clone(&opts.registry);
        let engine = Engine::with_obs(1, Session::new(), opts);
        let reqs = || {
            vec![
                equiv(1, "!Int.End!", "Dual (?Int.End?)"),
                equiv(2, "?Bool.End?", "Dual (!Bool.End!)"),
                equiv(3, "!Int.End!", "!Bool.End!"),
            ]
        };
        // Two passes: the first computes, the second fills any remaining
        // worker-local cache entries from the shared fallbacks.
        engine.process(reqs());
        engine.process(reqs());
        let before = engine.snapshot();
        let trace_len_before = trace_buf.lock().unwrap().len();
        for _ in 0..3 {
            engine.process(reqs());
        }
        let after = engine.snapshot();
        assert_eq!(
            after.cache_locks, before.cache_locks,
            "warm replay must not touch the shared cache shards"
        );
        assert_eq!(
            after.store_locks, before.store_locks,
            "warm replay must not lock the type store"
        );
        assert_eq!(after.store_generation, before.store_generation);
        // Every request (5 batches × 3) landed in the latency histogram…
        let snap = registry.snapshot();
        let hist = |name: &str| {
            snap.histograms
                .iter()
                .find(|(n, _)| n == name)
                .unwrap_or_else(|| panic!("missing histogram {name}"))
                .1
                .clone()
        };
        assert_eq!(hist("request_service_ns").count, 15);
        assert_eq!(hist("queue_sojourn_ns").count, 5, "one sojourn per batch");
        // …and no request cleared the (one hour) slow threshold, so the
        // warm replay emitted no events either.
        assert_eq!(
            snap.counters
                .iter()
                .find(|(n, _)| n == "slow_requests_total")
                .expect("slow counter registered")
                .1,
            0
        );
        assert_eq!(trace_buf.lock().unwrap().len(), trace_len_before);
    }

    #[test]
    fn metrics_op_is_sorted_complete_and_byte_stable() {
        let engine = Engine::with_session(2, Session::new());
        engine.process(vec![
            equiv(1, "!Int.End!", "Dual (?Int.End?)"),
            equiv(2, "!Int.End!", "Dual (?Int.End?)"),
        ]);
        let metrics = |id| {
            let resp = engine.process(vec![Request {
                id,
                op: Op::Metrics,
            }]);
            let Response::Metrics { fields, .. } = resp.into_iter().next().unwrap() else {
                panic!("expected metrics response");
            };
            fields
        };
        let fields = metrics(1);
        let keys: Vec<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted, "metrics keys must come pre-sorted");
        for required in [
            "requests_total",
            "equiv_requests_total",
            "batches_total",
            "workers",
            "request_service_ns_count",
            "request_service_ns_p99",
            "queue_sojourn_ns_count",
            "store_slow_path_ns_count",
            "snapshot_install_ns_count",
            "store_nodes",
            "store_lock_acquisitions",
            "cache_equiv_entries",
        ] {
            assert!(keys.contains(&required), "metrics missing {required}");
        }
        let count = |fields: &[(String, Value)], key: &str| {
            fields
                .iter()
                .find(|(k, _)| k == key)
                .and_then(|(_, v)| v.as_int())
                .unwrap()
        };
        // 2 equivs + this metrics request, every one counted by the time
        // its own response is built.
        assert_eq!(count(&fields, "requests_total"), 3);
        assert_eq!(count(&fields, "equiv_requests_total"), 2);
        // Scrape twice more: the key sequence (and therefore the JSON
        // shape) is identical run to run — only values move.
        let line_keys = |id| {
            let line = Response::Metrics {
                id,
                fields: metrics(id),
            }
            .to_json();
            crate::json::parse_object(&line)
                .unwrap()
                .into_iter()
                .map(|(k, _)| k)
                .collect::<Vec<String>>()
        };
        assert_eq!(
            line_keys(8),
            line_keys(9),
            "stable key order across scrapes"
        );
    }

    #[test]
    fn batches_fan_out_across_workers() {
        let engine = Engine::with_session(4, Session::new());
        let (reply_tx, reply_rx) = bounded(64);
        let mut expected = 0u64;
        for b in 0..16 {
            let items = (0..8)
                .map(|i| {
                    expected += 1;
                    equiv(b * 8 + i + 1, "!Int.End!", "Dual (?Int.End?)")
                })
                .collect();
            engine.submit(b, items, reply_tx.clone());
        }
        drop(reply_tx);
        let mut got = 0u64;
        let mut seqs = Vec::new();
        while let Ok((seq, batch)) = reply_rx.recv() {
            seqs.push(seq);
            got += batch.len() as u64;
            for r in batch {
                assert!(matches!(r, Response::Equiv { verdict: true, .. }));
            }
        }
        assert_eq!(got, expected);
        // Every submitted batch came back exactly once, tag intact
        // (possibly out of submission order — that is the demux's job).
        seqs.sort_unstable();
        assert_eq!(seqs, (0..16).collect::<Vec<u64>>());
    }

    /// A fresh receive-chain type of the given depth: distinct source
    /// text and distinct interned nodes per depth.
    fn churn_ty(depth: usize) -> String {
        format!("{}End?", "?Int.".repeat(depth + 1))
    }

    #[test]
    fn interval_compaction_keeps_verdicts_and_reclaims_garbage() {
        let engine = Engine::with_session(1, Session::new());
        engine.set_compaction(0, 64);
        let hot = || equiv(1, "!Int.End!", "Dual (?Int.End?)");
        for round in 0..20usize {
            let mut items = vec![hot()];
            for i in 0..15usize {
                let d = round * 16 + i;
                items.push(equiv(d as u64 + 2, &churn_ty(d), &churn_ty(d)));
            }
            for r in engine.process(items) {
                match r {
                    Response::Equiv { verdict, .. } => assert!(verdict),
                    other => panic!("unexpected response {other:?}"),
                }
            }
        }
        let snap = engine.snapshot();
        assert!(snap.compactions >= 1, "interval trigger must have fired");
        assert!(snap.store_epoch >= 1);
        // The hot pair survives every compaction (it is a cache root).
        let resp = engine.process(vec![hot()]);
        assert!(matches!(
            resp[0],
            Response::Equiv {
                verdict: true,
                warm: true,
                ..
            }
        ));
    }

    #[test]
    fn byte_bound_sheds_caches_and_store_recovers() {
        let engine = Engine::with_session(2, Session::new());
        let floor = engine.store().live_bytes();
        // A bound barely above the empty store: the first real batch
        // overshoots it, so the shed path must run.
        engine.set_compaction(floor + 512, 0);
        for round in 0..8usize {
            let items = (0..16usize)
                .map(|i| {
                    let d = round * 16 + i;
                    equiv(d as u64 + 1, &churn_ty(d), &churn_ty(d))
                })
                .collect();
            for r in engine.process(items) {
                match r {
                    Response::Equiv { verdict, .. } => assert!(verdict),
                    other => panic!("unexpected response {other:?}"),
                }
            }
        }
        let snap = engine.snapshot();
        assert!(snap.compactions >= 1, "byte bound must have fired");
        assert!(snap.reclaimed_bytes > 0, "shedding must reclaim bytes");
        // Verdicts stay correct across shed epochs, warm or not.
        let resp = engine.process(vec![equiv(1, &churn_ty(3), &churn_ty(3))]);
        assert!(matches!(resp[0], Response::Equiv { verdict: true, .. }));
    }

    #[test]
    fn warm_replay_takes_no_locks_with_compaction_enabled() {
        let engine = Engine::with_session(1, Session::new());
        // Generous bounds: enabled, but nothing triggers while the
        // working set stays small — the acceptance-criterion regime.
        engine.set_compaction(64 << 20, 1 << 30);
        let reqs = || {
            vec![
                equiv(1, "!Int.End!", "Dual (?Int.End?)"),
                equiv(2, "?Bool.End?", "Dual (!Bool.End!)"),
            ]
        };
        engine.process(reqs());
        engine.process(reqs());
        let before = engine.snapshot();
        for _ in 0..3 {
            for r in engine.process(reqs()) {
                assert!(matches!(r, Response::Equiv { warm: true, .. }));
            }
        }
        let after = engine.snapshot();
        assert_eq!(after.cache_locks, before.cache_locks);
        assert_eq!(after.store_locks, before.store_locks);
        assert_eq!(after.store_epoch, before.store_epoch);
        assert_eq!(after.compactions, 0);
    }
}
