//! # algst-server
//!
//! A long-running **batch equivalence-checking service** over the
//! sharded concurrent type store
//! ([`algst_core::shared::SharedStore`]).
//!
//! The paper's headline result is that algebraic-protocol equivalence
//! is practical at scale — this crate is the serving layer that result
//! earns: a newline-delimited JSON protocol ([`protocol`]) answered by
//! a worker pool ([`engine::Engine`]) in which every worker shares the
//! same interned nodes and memoized normal forms, so a type any client
//! ever sent stays warm for every later request, on every worker.
//!
//! ```text
//! stdin/TCP ──lines──► reader ──batches──► worker pool ──► writer ──► stdout/TCP
//!                                   │ WorkerStore mirrors (publish per batch)
//!                                   ▼
//!                       SharedStore (arena + nrm memos)
//!                       + per-pair verdict cache ("equiv memo")
//!                       + parse cache + module cache
//! ```
//!
//! Try it (see also `algst serve --help`):
//!
//! ```sh
//! printf '%s\n' \
//!   '{"op":"equiv","lhs":"!Int.End!","rhs":"Dual (?Int.End?)"}' \
//!   '{"op":"shutdown"}' | algst serve
//! ```

pub mod engine;
pub mod json;
pub mod metrics_http;
pub mod protocol;
pub mod resolve;
pub mod serve;
pub mod tenant;

pub use engine::{Engine, ObsOptions};
pub use metrics_http::{serve_metrics, serve_metrics_tenants, MetricsServer};
pub use protocol::{parse_request, Op, Request, Response, Snapshot, ThrottleKind};
pub use serve::{
    serve_listener, serve_listener_tenants, serve_session, serve_session_tenants, serve_stdio,
    serve_stdio_tenants, serve_tcp, serve_tcp_tenants, ServeConfig, ServeSummary,
};
pub use tenant::{TenantConfig, TenantHandle, TenantQuotas, TenantRegistry, TenantView};
