//! Front-ends: the JSON-lines loop over stdio or a **concurrent** TCP
//! listener.
//!
//! ```text
//!              ┌── conn 1: reader ──batches──►┐            ┌──► demux/writer 1
//! acceptor ──► ├── conn 2: reader ──batches──►│ Engine     ├──► demux/writer 2
//!  (drain      └── conn N: reader ──batches──►│ worker pool└──► demux/writer N
//!   state)                                    └─ SharedStore + request caches
//! ```
//!
//! Every accepted connection gets its own reader (this thread-of-control
//! parses lines into [`Request`]s) and its own demultiplexing writer
//! thread; all of them share one [`Engine`] worker pool, so warm state
//! crosses connections. Per connection:
//!
//! * **Pipelining.** The reader keeps batching while bytes are ready (a
//!   client that wrote a burst gets one batch), flushing at
//!   [`ServeConfig::batch_max`] so latency stays bounded under a
//!   firehose, and submits the next batch without waiting for the
//!   previous one to complete.
//! * **Ordered demux.** Batches complete on different workers in any
//!   order; each batch is tagged with a per-connection sequence number
//!   and the connection's writer reorders them, so responses reach the
//!   client in request order even at pipelining depth ≫ batch size.
//! * **Backpressure.** At most [`ServeConfig`]'s in-flight window of
//!   batches may be submitted-but-unwritten per connection; past that
//!   the reader stops reading (TCP backpressure reaches the client).
//!   The engine's own bounded queue backpressures across connections.
//! * **Timeouts.** A client that sends no byte for
//!   [`ServeConfig::read_timeout`] (slow loris, dead peer) gets an
//!   `error` response and its connection closed; other connections are
//!   unaffected.
//! * **Disconnects.** A client that vanishes mid-batch has its
//!   undeliverable responses discarded — the writer dies, pending reply
//!   sends fail fast, and the worker pool moves on to other
//!   connections' work.
//!
//! A `shutdown` request (on **any** connection) starts a graceful
//! drain: the acceptor stops accepting, every connection finishes the
//! requests it has already received — including what is sitting in its
//! socket buffer — answers its client, and closes; then the listener
//! returns. EOF on a connection ends just that connection, minus the
//! `shutdown` response.
//!
//! # Routed (multi-tenant) serving
//!
//! The `*_tenants` entry points serve the same protocol over a
//! [`TenantRegistry`] instead of a single [`Engine`]. Per connection,
//! the reader resolves each request's `"tenant"` field (absent →
//! `"default"`), cuts a batch whenever the tenant changes (batches are
//! single-tenant, so one engine submit serves each), and runs the
//! tenant's admission control before submitting: the granted prefix
//! goes to the tenant's engine, the refused suffix is answered
//! directly with throttle errors under its own sequence number — the
//! demux writer then interleaves both back into request order. The
//! `tenants` admin op is answered by the reader from the registry
//! (it never occupies a worker), and outgoing `stats` responses are
//! stamped with the registry's tenancy aggregates.

use crate::engine::{BatchReply, Engine, EngineObs};
use crate::protocol::{
    parse_request, parse_request_tenant, Op, Request, Response, Snapshot, ThrottleKind,
};
use crate::tenant::{TenantHandle, TenantRegistry, TenantView, DEFAULT_TENANT};
use algst_obs::{Field, Level, Span};
use crossbeam::channel::{bounded, Receiver, Sender};
use std::collections::{BTreeMap, HashMap};
use std::io::{self, ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How often a blocked connection read wakes up to check the drain flag
/// and the read-timeout deadline (the socket read timeout).
const TICK: Duration = Duration::from_millis(50);

/// How long the acceptor sleeps when there is no connection to accept.
const ACCEPT_TICK: Duration = Duration::from_millis(5);

/// Hard cap on how long a draining connection keeps serving a client
/// that continues to stream requests after `shutdown`.
const DRAIN_MAX: Duration = Duration::from_secs(2);

/// Front-end configuration (the engine itself is configured separately).
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Max requests per submitted batch.
    pub batch_max: usize,
    /// Print a `stats`-shaped JSON line to stderr when the session ends.
    pub stats_on_exit: bool,
    /// Max simultaneously served TCP connections; further clients are
    /// refused with an `error` line. Ignored for stdio.
    pub max_conns: usize,
    /// Close a connection when no byte arrives for this long (`None`
    /// disables). Enforced for TCP; stdio reads block indefinitely.
    pub read_timeout: Option<Duration>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            batch_max: 256,
            stats_on_exit: false,
            max_conns: 64,
            read_timeout: Some(Duration::from_secs(30)),
        }
    }
}

/// What a serve session did, and whether it ended via `shutdown`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeSummary {
    pub requests: u64,
    pub responses: u64,
    /// Connections served (1 for stdio / single-stream sessions).
    pub connections: u64,
    pub saw_shutdown: bool,
}

/// Shared acceptor/connection state: the connection gauges reported by
/// `stats`, and the drain flag every reader polls.
#[derive(Debug, Default)]
struct Registry {
    accepted: AtomicU64,
    active: AtomicU64,
    draining: AtomicBool,
}

impl Registry {
    /// Registers a connection and returns its 1-based id (used as the
    /// `conn` label in trace events and batch attribution).
    fn connect(&self) -> u64 {
        let id = self.accepted.fetch_add(1, Ordering::Relaxed) + 1;
        self.active.fetch_add(1, Ordering::Relaxed);
        id
    }

    fn disconnect(&self) {
        self.active.fetch_sub(1, Ordering::Relaxed);
    }

    fn begin_drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
    }

    fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }
}

/// In-flight window: how many batches a connection may have
/// submitted-but-unwritten before its reader stops reading.
fn inflight_window(config: &ServeConfig) -> u64 {
    ((4096 / config.batch_max.max(1)).max(4)) as u64
}

/// Why the reader stopped consuming input.
enum ReadEnd {
    /// EOF, shutdown op, drain completed, or client timed out.
    Done,
    /// The transport failed (reset, unexpected error).
    Failed(io::Error),
}

/// What a connection routes its requests through: the classic single
/// engine, or the multi-tenant registry.
#[derive(Clone, Copy)]
pub(crate) enum Router<'a> {
    Single(&'a Engine),
    Tenants(&'a TenantRegistry),
}

impl<'a> Router<'a> {
    /// Front-end observability hooks (connection lifecycle + reader/
    /// writer stage timings).
    fn obs(&self) -> &'a Arc<EngineObs> {
        match self {
            Router::Single(engine) => engine.obs(),
            Router::Tenants(registry) => registry.obs(),
        }
    }
}

/// A reader→writer note: batch `seq` holds `count` admitted requests
/// of `handle`, to be released when the batch's responses come back.
type InflightNote = (u64, Arc<TenantHandle>, u64);

/// Serves one connection: reads newline-delimited requests from
/// `input`, pipelines them through `engine`, and writes responses to
/// `output` in request order. Returns when the input ends, a `shutdown`
/// op is processed, the drain flag fires, or the client times out.
fn serve_conn<R, W>(
    router: Router<'_>,
    input: R,
    output: W,
    config: ServeConfig,
    registry: &Registry,
    conn: u64,
) -> io::Result<ServeSummary>
where
    R: Read,
    W: Write + Send,
{
    let obs = router.obs();
    obs.conn_opened();
    obs.sink()
        .event(Level::Info, "conn_open", &[("conn", Field::U64(conn))]);
    let window = inflight_window(&config);
    // +2: room for the reader-injected timeout error batch and the
    // final flush batch, so those sends can never block on a full
    // channel while the writer is catching up.
    let (reply_tx, reply_rx) = bounded::<BatchReply>(window as usize + 2);
    // Quota-slot notes ride a side channel so the writer can release a
    // tenant's in-flight reservations as each batch comes back.
    let (inflight_tx, inflight_rx) = bounded::<InflightNote>(window as usize + 2);
    let written_batches = Arc::new(AtomicU64::new(0));
    let mut summary = ServeSummary {
        connections: 1,
        ..ServeSummary::default()
    };

    let result = std::thread::scope(|scope| {
        let writer = scope.spawn({
            let written_batches = Arc::clone(&written_batches);
            let obs = Arc::clone(obs);
            move || -> io::Result<u64> {
                let mut output = output;
                let mut inflight: HashMap<u64, (Arc<TenantHandle>, u64)> = HashMap::new();
                let result = write_responses(
                    &mut output,
                    &reply_rx,
                    &inflight_rx,
                    &mut inflight,
                    router,
                    registry,
                    &written_batches,
                    &obs,
                );
                // Whatever is still reserved when the writer ends (an
                // output error, a vanished client) must release its
                // quota slots — the handles outlive this connection.
                while let Ok((_, handle, count)) = inflight_rx.try_recv() {
                    handle.complete(count);
                }
                for (handle, count) in inflight.into_values() {
                    handle.complete(count);
                }
                result
            }
        });

        let end = {
            let writer_finished = || writer.is_finished();
            let mut reader = ConnReader {
                router,
                view: match router {
                    Router::Single(_) => None,
                    Router::Tenants(reg) => Some(reg.view()),
                },
                pending_tenant: DEFAULT_TENANT.to_string(),
                config,
                registry,
                conn,
                writer_finished: &writer_finished,
                reply_tx: &reply_tx,
                inflight_tx: &inflight_tx,
                written_batches: &written_batches,
                next_seq: 0,
                next_id: 0,
                pending: Vec::new(),
                summary: &mut summary,
            };
            reader.run(input)
        };
        drop(inflight_tx);
        // Drop our reply sender: once the workers finish the submitted
        // batches and drop theirs, the writer sees disconnect and ends.
        drop(reply_tx);
        let written = writer.join().expect("writer thread does not panic");
        match end {
            ReadEnd::Failed(e) => Err(e),
            ReadEnd::Done => match written {
                Ok(n) => {
                    summary.responses = n;
                    Ok(())
                }
                // The client stopped reading (EPIPE, reset): its
                // undelivered responses were discarded; not our error.
                Err(_) => Ok(()),
            },
        }
    });

    obs.conn_closed();
    obs.sink().event(
        Level::Info,
        "conn_close",
        &[
            ("conn", Field::U64(conn)),
            ("requests", Field::U64(summary.requests)),
            ("responses", Field::U64(summary.responses)),
        ],
    );
    result?;
    Ok(summary)
}

/// The connection's demux/write loop: reorders completed batches by
/// sequence number, stamps `stats` responses with connection gauges
/// (and, routed, the registry's tenancy aggregates), and releases
/// tenant in-flight reservations as each batch's responses come back.
#[allow(clippy::too_many_arguments)]
fn write_responses<W: Write>(
    output: &mut W,
    reply_rx: &Receiver<BatchReply>,
    inflight_rx: &Receiver<InflightNote>,
    inflight: &mut HashMap<u64, (Arc<TenantHandle>, u64)>,
    router: Router<'_>,
    registry: &Registry,
    written_batches: &AtomicU64,
    obs: &EngineObs,
) -> io::Result<u64> {
    let mut written = 0u64;
    let mut next_seq = 0u64;
    let mut held: BTreeMap<u64, Vec<Response>> = BTreeMap::new();
    // This connection's stats-delta cursor: the absolute snapshot at
    // its previous `{"delta":true}` call.
    let mut cursor: Option<Snapshot> = None;
    while let Ok((seq, batch)) = reply_rx.recv() {
        // Release this batch's quota reservation. Its note was sent
        // before the batch was submitted, so it is already queued here
        // by the time the reply arrives.
        while let Ok((note_seq, handle, count)) = inflight_rx.try_recv() {
            inflight.insert(note_seq, (handle, count));
        }
        if let Some((handle, count)) = inflight.remove(&seq) {
            handle.complete(count);
        }
        held.insert(seq, batch);
        // Write every contiguous batch: responses leave in request
        // order no matter the completion order.
        while let Some(batch) = held.remove(&next_seq) {
            let span = obs.enabled().then(Span::begin);
            for response in &batch {
                let line = match response {
                    // The engine knows nothing about connections (or
                    // tenants); patch the gauges into stats responses
                    // on the way out, and resolve delta requests
                    // against this connection's cursor.
                    Response::Stats {
                        id,
                        snapshot,
                        delta,
                    } => {
                        let mut snapshot = *snapshot;
                        snapshot.conns_accepted = registry.accepted.load(Ordering::Relaxed);
                        snapshot.conns_active = registry.active.load(Ordering::Relaxed);
                        if let Router::Tenants(tenants) = router {
                            tenants.patch_snapshot(&mut snapshot);
                        }
                        let emitted = if *delta {
                            let prev = cursor.replace(snapshot).unwrap_or_default();
                            snapshot.delta_since(&prev)
                        } else {
                            snapshot
                        };
                        Response::Stats {
                            id: *id,
                            snapshot: emitted,
                            delta: *delta,
                        }
                        .to_json()
                    }
                    other => other.to_json(),
                };
                writeln!(output, "{line}")?;
            }
            written += batch.len() as u64;
            next_seq += 1;
            written_batches.store(next_seq, Ordering::Release);
            if let Some(span) = span {
                obs.record_write(span.elapsed_ns());
            }
        }
        // One flush per wakeup: keeps request/response clients moving
        // without a syscall per line.
        output.flush()?;
    }
    output.flush()?;
    Ok(written)
}

/// The per-connection reader state machine (see module docs).
struct ConnReader<'a> {
    router: Router<'a>,
    /// Pinned registry snapshot (routed mode only): tenant resolution
    /// against it is one atomic generation probe on the warm path.
    view: Option<TenantView>,
    /// Tenant of the requests currently in `pending` (routed batches
    /// are single-tenant; a tenant switch cuts the batch).
    pending_tenant: String,
    config: ServeConfig,
    registry: &'a Registry,
    conn: u64,
    writer_finished: &'a dyn Fn() -> bool,
    reply_tx: &'a Sender<BatchReply>,
    inflight_tx: &'a Sender<InflightNote>,
    written_batches: &'a AtomicU64,
    next_seq: u64,
    next_id: u64,
    pending: Vec<Request>,
    summary: &'a mut ServeSummary,
}

impl ConnReader<'_> {
    fn run<R: Read>(&mut self, mut input: R) -> ReadEnd {
        let mut buf: Vec<u8> = Vec::with_capacity(8192);
        let mut chunk = [0u8; 8192];
        let mut last_data = Instant::now();
        let mut drain_deadline: Option<Instant> = None;

        loop {
            // Process every complete line already buffered, batching at
            // burst boundaries (drained buffer) or batch_max. The span
            // covers parsing only (not the buffered read below, not the
            // backpressure wait in flush_pending), so the stage
            // histogram reflects reader CPU work per consumed chunk.
            let span = (!buf.is_empty() && self.router.obs().enabled()).then(Span::begin);
            let stop = self.consume_lines(&mut buf);
            if let Some(span) = span {
                self.router.obs().record_read_parse(span.elapsed_ns());
            }
            if stop {
                self.flush_pending();
                return ReadEnd::Done; // shutdown op
            }
            self.flush_pending();

            // A dead writer (client stopped reading: EPIPE, reset) makes
            // every further response undeliverable — stop parsing and
            // checking instead of burning the pool on discarded work.
            if (self.writer_finished)() {
                return ReadEnd::Done;
            }
            if self.registry.draining() && drain_deadline.is_none() {
                // Drain: finish what this client already sent — keep
                // reading until the socket goes quiet for a tick (or
                // EOF), bounded by DRAIN_MAX against a client that
                // streams on regardless.
                drain_deadline = Some(Instant::now() + DRAIN_MAX);
            }
            if let Some(deadline) = drain_deadline {
                if Instant::now() >= deadline {
                    return ReadEnd::Done;
                }
            }

            match input.read(&mut chunk) {
                Ok(0) => {
                    // EOF. A trailing line without a newline still
                    // counts as a request (matches piped-input clients).
                    self.consume_trailing(&buf);
                    self.flush_pending();
                    return ReadEnd::Done;
                }
                Ok(n) => {
                    buf.extend_from_slice(&chunk[..n]);
                    last_data = Instant::now();
                }
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                    // Tick: the socket was quiet for one read timeout.
                    if drain_deadline.is_some() {
                        // Quiet during drain = the client's in-flight
                        // data is fully consumed; we are done.
                        return ReadEnd::Done;
                    }
                    if let Some(limit) = self.config.read_timeout {
                        if last_data.elapsed() >= limit {
                            self.router.obs().conn_timeout();
                            self.router.obs().sink().event(
                                Level::Info,
                                "conn_timeout",
                                &[
                                    ("conn", Field::U64(self.conn)),
                                    ("idle_s", Field::F64(limit.as_secs_f64())),
                                ],
                            );
                            self.next_seq += 1;
                            let _ = self.reply_tx.send((
                                self.next_seq - 1,
                                vec![Response::Error {
                                    id: 0,
                                    error: format!(
                                        "read timeout: no data received for {}s",
                                        limit.as_secs_f64()
                                    ),
                                }],
                            ));
                            return ReadEnd::Done;
                        }
                    }
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return ReadEnd::Failed(e),
            }
        }
    }

    /// Parses and enqueues every complete line in `buf`, draining them
    /// from the front. Returns true when a `shutdown` op was consumed
    /// (remaining buffered input is intentionally discarded).
    fn consume_lines(&mut self, buf: &mut Vec<u8>) -> bool {
        let mut start = 0usize;
        let mut stop = false;
        while let Some(nl) = buf[start..].iter().position(|&b| b == b'\n') {
            let line = String::from_utf8_lossy(&buf[start..start + nl]);
            start += nl + 1;
            if self.push_line(line.trim()) {
                stop = true;
                break;
            }
            if self.pending.len() >= self.config.batch_max {
                self.flush_pending();
            }
        }
        buf.drain(..start);
        stop
    }

    fn consume_trailing(&mut self, buf: &[u8]) {
        let tail = String::from_utf8_lossy(buf);
        self.push_line(tail.trim());
    }

    /// Parses one trimmed line into `pending`. Returns true on a
    /// `shutdown` op (which also starts the server-wide drain).
    fn push_line(&mut self, trimmed: &str) -> bool {
        if trimmed.is_empty() {
            return false;
        }
        self.next_id += 1;
        let (request, tenant) = match self.router {
            Router::Single(_) => (parse_request(trimmed, self.next_id), None),
            Router::Tenants(_) => parse_request_tenant(trimmed, self.next_id),
        };
        if let Router::Tenants(tenants) = self.router {
            let name = tenant.as_deref().unwrap_or(DEFAULT_TENANT);
            if name != self.pending_tenant {
                // Batches are single-tenant: cut here so each submit
                // targets exactly one tenant's engine.
                self.flush_pending();
                self.pending_tenant.clear();
                self.pending_tenant.push_str(name);
            }
            if matches!(request.op, Op::Tenants) {
                // The `tenants` admin op is answered by the reader
                // from the registry: it reports across tenants and
                // must not occupy (or be throttled by) any one
                // tenant's engine.
                self.flush_pending();
                self.summary.requests += 1;
                let reply = Response::Tenants {
                    id: request.id,
                    fields: tenants.tenants_fields(),
                };
                self.inject_reply(vec![reply]);
                return false;
            }
        }
        let stop = matches!(request.op, Op::Shutdown);
        self.summary.requests += 1;
        self.pending.push(request);
        if stop {
            self.summary.saw_shutdown = true;
            self.registry.begin_drain();
        }
        stop
    }

    /// Hands the writer a reader-produced reply batch (throttle
    /// refusals, `tenants` answers) under its own sequence number; the
    /// demux interleaves it back into request order.
    fn inject_reply(&mut self, batch: Vec<Response>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let _ = self.reply_tx.send((seq, batch));
    }

    /// Submits the pending batch (if any), honoring the per-connection
    /// in-flight window: past it, we stop and let TCP backpressure the
    /// client rather than buffering unbounded work.
    fn flush_pending(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        let window = inflight_window(&self.config);
        while self.next_seq - self.written_batches.load(Ordering::Acquire) >= window {
            if (self.writer_finished)() {
                // Client gone; drop the work.
                self.pending.clear();
                return;
            }
            std::thread::sleep(Duration::from_micros(500));
        }
        match self.router {
            Router::Single(engine) => {
                let seq = self.next_seq;
                self.next_seq += 1;
                engine.submit_conn(
                    self.conn,
                    seq,
                    std::mem::take(&mut self.pending),
                    self.reply_tx.clone(),
                );
            }
            Router::Tenants(tenants) => self.flush_routed(tenants),
        }
    }

    /// Routed submit: resolve the batch's tenant (one generation probe
    /// when the registry is stable), run admission control, submit the
    /// granted prefix to the tenant's engine, and answer the refused
    /// suffix with throttle errors — never a disconnect, and never a
    /// stall for other tenants.
    fn flush_routed(&mut self, tenants: &TenantRegistry) {
        let view = self.view.as_mut().expect("routed reader has a view");
        let handle = tenants.tenant(view, &self.pending_tenant);
        let admission = tenants.admit(&handle, self.pending.len());
        let refused = self.pending.split_off(admission.granted);
        let batch = std::mem::take(&mut self.pending);
        if !batch.is_empty() {
            let seq = self.next_seq;
            self.next_seq += 1;
            if handle.tracks_inflight() {
                // Note before submit: the reply can only exist after
                // the submit, so the writer always finds the note
                // queued when it receives this batch's responses.
                let _ = self
                    .inflight_tx
                    .send((seq, Arc::clone(&handle), batch.len() as u64));
            }
            handle
                .engine()
                .submit_conn(self.conn, seq, batch, self.reply_tx.clone());
        }
        if !refused.is_empty() {
            let kind = admission.kind.unwrap_or(ThrottleKind::Throttled);
            let replies: Vec<Response> = refused
                .into_iter()
                .map(|request| Response::Throttled {
                    id: request.id,
                    tenant: self.pending_tenant.clone(),
                    kind,
                })
                .collect();
            self.inject_reply(replies);
        }
    }
}

/// Serves one JSON-lines session: reads requests from `input`, writes
/// responses to `output` **in request order** (batches are demultiplexed
/// by sequence number). Returns when the input ends or a `shutdown` op
/// is processed.
pub fn serve_session<R, W>(
    engine: &Engine,
    input: R,
    output: W,
    config: ServeConfig,
) -> io::Result<ServeSummary>
where
    R: Read,
    W: Write + Send,
{
    serve_session_router(Router::Single(engine), input, output, config)
}

/// [`serve_session`] routed through a [`TenantRegistry`]: requests
/// carry an optional `"tenant"` field (absent → `"default"`), each
/// tenant gets its own lazily-created engine, and over-quota requests
/// are answered with structured throttle errors.
pub fn serve_session_tenants<R, W>(
    tenants: &TenantRegistry,
    input: R,
    output: W,
    config: ServeConfig,
) -> io::Result<ServeSummary>
where
    R: Read,
    W: Write + Send,
{
    serve_session_router(Router::Tenants(tenants), input, output, config)
}

fn serve_session_router<R, W>(
    router: Router<'_>,
    input: R,
    output: W,
    config: ServeConfig,
) -> io::Result<ServeSummary>
where
    R: Read,
    W: Write + Send,
{
    let registry = Registry::default();
    let conn = registry.connect();
    let summary = serve_conn(router, input, output, config, &registry, conn)?;
    if config.stats_on_exit {
        eprintln!("{}", router_stats_line(router));
    }
    Ok(summary)
}

fn router_stats_line(router: Router<'_>) -> String {
    match router {
        Router::Single(engine) => stats_line(engine),
        Router::Tenants(tenants) => stats_line_tenants(tenants),
    }
}

/// The engine snapshot rendered exactly like a `stats` response (without
/// an id), for `--stats-on-exit`.
///
/// Besides cache hit rates, the line carries the store's contention
/// profile — snapshot generation, installs, slow-path (writer-mutex)
/// entries, and lock counts — so "the warm path took no locks" is
/// observable from the outside:
///
/// ```
/// use algst_core::Session;
/// use algst_server::{Engine, Request, parse_request};
/// use algst_server::serve::stats_line;
///
/// let engine = Engine::with_session(1, Session::new());
/// let req = parse_request(r#"{"op":"equiv","lhs":"!Int.End!","rhs":"Dual (?Int.End?)"}"#, 1);
/// engine.process(vec![req]);
/// let line = stats_line(&engine);
/// for key in ["store_generation", "snapshot_installs", "store_slow_path",
///             "store_locks", "cache_locks"] {
///     assert!(line.contains(key), "{key} missing from {line}");
/// }
/// ```
pub fn stats_line(engine: &Engine) -> String {
    let response = crate::protocol::Response::Stats {
        id: 0,
        snapshot: engine.snapshot(),
        delta: false,
    };
    response.to_json()
}

/// [`stats_line`] for a routed server: the default tenant's engine
/// snapshot (zeroes when that tenant has never been contacted) stamped
/// with the registry's tenancy aggregates.
pub fn stats_line_tenants(tenants: &TenantRegistry) -> String {
    let mut view = tenants.view();
    let mut snapshot = tenants
        .resolve(&mut view, DEFAULT_TENANT)
        .map(|handle| handle.engine().snapshot())
        .unwrap_or_default();
    tenants.patch_snapshot(&mut snapshot);
    let response = crate::protocol::Response::Stats {
        id: 0,
        snapshot,
        delta: false,
    };
    response.to_json()
}

/// Serves stdio until EOF or `shutdown`.
pub fn serve_stdio(engine: &Engine, config: ServeConfig) -> io::Result<ServeSummary> {
    // `Stdout` (not `StdoutLock`) — the writer thread needs `Send`.
    serve_session(engine, io::stdin().lock(), io::stdout(), config)
}

/// [`serve_stdio`] routed through a [`TenantRegistry`].
pub fn serve_stdio_tenants(
    tenants: &TenantRegistry,
    config: ServeConfig,
) -> io::Result<ServeSummary> {
    serve_session_tenants(tenants, io::stdin().lock(), io::stdout(), config)
}

/// Binds `addr` and serves TCP connections **concurrently**: every
/// accepted connection gets its own reader and ordered-demux writer
/// over the shared worker pool, up to [`ServeConfig::max_conns`] at
/// once. A `shutdown` op on any connection drains the whole listener:
/// no new connections, every in-flight request on every connection is
/// answered, then this returns the aggregated summary.
pub fn serve_tcp(engine: &Engine, addr: &str, config: ServeConfig) -> io::Result<ServeSummary> {
    let listener = TcpListener::bind(addr)?;
    serve_listener(engine, &listener, config)
}

/// [`serve_tcp`] routed through a [`TenantRegistry`].
pub fn serve_tcp_tenants(
    tenants: &TenantRegistry,
    addr: &str,
    config: ServeConfig,
) -> io::Result<ServeSummary> {
    let listener = TcpListener::bind(addr)?;
    serve_listener_tenants(tenants, &listener, config)
}

/// [`serve_tcp`] over an already-bound listener (lets callers pick port
/// 0 and read the real address back). A connection that fails mid-
/// session (client reset, EPIPE) is logged and dropped — the listener
/// keeps serving; only `accept` errors end the loop early.
pub fn serve_listener(
    engine: &Engine,
    listener: &TcpListener,
    config: ServeConfig,
) -> io::Result<ServeSummary> {
    serve_listener_router(Router::Single(engine), listener, config)
}

/// [`serve_listener`] routed through a [`TenantRegistry`].
pub fn serve_listener_tenants(
    tenants: &TenantRegistry,
    listener: &TcpListener,
    config: ServeConfig,
) -> io::Result<ServeSummary> {
    serve_listener_router(Router::Tenants(tenants), listener, config)
}

fn serve_listener_router(
    router: Router<'_>,
    listener: &TcpListener,
    config: ServeConfig,
) -> io::Result<ServeSummary> {
    listener.set_nonblocking(true)?;
    let registry = Registry::default();
    let mut total = ServeSummary::default();

    let result = std::thread::scope(|scope| -> io::Result<()> {
        let mut conns: Vec<std::thread::ScopedJoinHandle<'_, io::Result<ServeSummary>>> =
            Vec::new();
        let reap =
            |conns: &mut Vec<std::thread::ScopedJoinHandle<'_, io::Result<ServeSummary>>>,
             total: &mut ServeSummary,
             all: bool| {
                let mut i = 0;
                while i < conns.len() {
                    if all || conns[i].is_finished() {
                        let handle = conns.swap_remove(i);
                        total.connections += 1;
                        match handle.join().expect("connection thread does not panic") {
                            Ok(s) => {
                                total.requests += s.requests;
                                total.responses += s.responses;
                                total.saw_shutdown |= s.saw_shutdown;
                            }
                            Err(e) => eprintln!("algst serve: connection failed: {e}"),
                        }
                    } else {
                        i += 1;
                    }
                }
            };

        loop {
            reap(&mut conns, &mut total, false);
            if registry.draining() {
                // Stop accepting; wait for every connection to finish
                // its in-flight work and answer its client.
                reap(&mut conns, &mut total, true);
                return Ok(());
            }
            match listener.accept() {
                Ok((stream, peer)) => {
                    if registry.active.load(Ordering::Relaxed) >= config.max_conns as u64 {
                        refuse(stream, config.max_conns);
                        continue;
                    }
                    // Accepted sockets may inherit the listener's
                    // nonblocking flag on some platforms; we want
                    // blocking reads with a tick-sized timeout so the
                    // reader can poll the drain flag and its deadline.
                    // Nagle + delayed ACKs cost tens of milliseconds per
                    // pipelined round trip; responses are already
                    // batch-flushed, so small writes going out at once is
                    // exactly what we want.
                    stream.set_nodelay(true).ok();
                    let setup = stream
                        .set_nonblocking(false)
                        .and_then(|()| stream.set_read_timeout(Some(TICK)))
                        .and_then(|()| stream.try_clone());
                    let reader = match setup {
                        Ok(reader) => reader,
                        Err(e) => {
                            eprintln!("algst serve: dropping connection from {peer}: {e}");
                            continue;
                        }
                    };
                    let conn = registry.connect();
                    let registry = &registry;
                    conns.push(scope.spawn(move || {
                        let result = serve_conn(router, reader, stream, config, registry, conn);
                        registry.disconnect();
                        result
                    }));
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    std::thread::sleep(ACCEPT_TICK);
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => {
                    // Fatal accept error: drain what is running, then
                    // surface the error.
                    registry.begin_drain();
                    reap(&mut conns, &mut total, true);
                    return Err(e);
                }
            }
        }
    });

    if config.stats_on_exit {
        eprintln!("{}", router_stats_line(router));
    }
    result?;
    Ok(total)
}

/// Tells an over-capacity client why it is being dropped. Best effort:
/// the refusal itself must never take the listener down.
fn refuse(mut stream: TcpStream, max_conns: usize) {
    let line = Response::Error {
        id: 0,
        error: format!("server at capacity ({max_conns} connections)"),
    }
    .to_json();
    let _ = writeln!(stream, "{line}");
    let _ = stream.flush();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use crate::tenant::{TenantConfig, TenantQuotas};
    use algst_core::Session;

    fn run(input: &str) -> (ServeSummary, Vec<Vec<(String, json::Value)>>) {
        let engine = Engine::with_session(2, Session::new());
        let mut out = Vec::new();
        let summary =
            serve_session(&engine, input.as_bytes(), &mut out, ServeConfig::default()).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<Vec<(String, json::Value)>> = text
            .lines()
            .map(|l| json::parse_object(l).unwrap_or_else(|e| panic!("bad line {l}: {e}")))
            .collect();
        (summary, lines)
    }

    #[test]
    fn answers_batches_and_shuts_down() {
        let input = concat!(
            r#"{"op":"equiv","lhs":"!Int.End!","rhs":"Dual (?Int.End?)"}"#,
            "\n",
            r#"{"op":"equiv","lhs":"!Int.End!","rhs":"!Bool.End!"}"#,
            "\n",
            r#"{"op":"equiv","lhs":"!Int.End!","rhs":"Dual (?Int.End?)"}"#,
            "\n",
            r#"{"op":"stats"}"#,
            "\n",
            r#"{"op":"shutdown"}"#,
            "\n",
        );
        let (summary, lines) = run(input);
        assert_eq!(summary.requests, 5);
        assert_eq!(summary.responses, 5);
        assert_eq!(summary.connections, 1);
        assert!(summary.saw_shutdown);
        // Responses arrive in request order (the demux reorders
        // batches), so no sort is needed.
        let ids: Vec<_> = lines
            .iter()
            .map(|pairs| {
                json::get(pairs, "id")
                    .and_then(json::Value::as_int)
                    .unwrap()
            })
            .collect();
        assert_eq!(ids, vec![1, 2, 3, 4, 5]);
        let verdict = |ix: usize| json::get(&lines[ix], "verdict").cloned();
        assert_eq!(verdict(0), Some(json::Value::Bool(true)));
        assert_eq!(verdict(1), Some(json::Value::Bool(false)));
        assert_eq!(verdict(2), Some(json::Value::Bool(true)));
        // The repeat pair is warm.
        assert_eq!(json::get(&lines[2], "warm"), Some(&json::Value::Bool(true)));
        assert_eq!(
            json::get(&lines[3], "op").and_then(json::Value::as_str),
            Some("stats")
        );
        // A single-stream session reports one connection in stats.
        assert_eq!(
            json::get(&lines[3], "conns_accepted").and_then(json::Value::as_int),
            Some(1)
        );
        assert_eq!(
            json::get(&lines[4], "op").and_then(json::Value::as_str),
            Some("shutdown")
        );
    }

    #[test]
    fn stats_delta_uses_a_per_connection_cursor() {
        // One pipelined burst = one batch on one worker, so the counter
        // arithmetic is deterministic: each stats request is counted
        // before its own snapshot is taken.
        let input = concat!(
            r#"{"op":"equiv","lhs":"!Int.End!","rhs":"Dual (?Int.End?)"}"#,
            "\n",
            r#"{"op":"equiv","lhs":"!Int.End!","rhs":"!Bool.End!"}"#,
            "\n",
            r#"{"op":"stats","delta":true}"#,
            "\n",
            r#"{"op":"equiv","lhs":"!Int.End!","rhs":"Dual (?Int.End?)"}"#,
            "\n",
            r#"{"op":"stats","delta":true}"#,
            "\n",
            r#"{"op":"stats"}"#,
            "\n",
            r#"{"op":"shutdown"}"#,
            "\n",
        );
        let (summary, lines) = run(input);
        assert_eq!(summary.responses, 7);
        let int = |ix: usize, key: &str| {
            json::get(&lines[ix], key)
                .and_then(json::Value::as_int)
                .unwrap_or_else(|| panic!("no int {key} in line {ix}"))
        };
        // First delta call: no cursor yet — reports absolute counts
        // (2 equiv + the stats itself).
        assert_eq!(
            json::get(&lines[2], "delta"),
            Some(&json::Value::Bool(true))
        );
        assert_eq!(int(2, "requests"), 3);
        // Second delta call: movement since the first (1 equiv + itself).
        assert_eq!(int(4, "requests"), 2);
        // The repeated pair was warm: one more hit, no new misses.
        assert_eq!(int(4, "equiv_hits"), 1);
        assert_eq!(int(4, "equiv_misses"), 0);
        // Instantaneous values stay absolute in delta mode; the
        // monotonic accept counter deltas to zero (no new connection).
        assert_eq!(int(4, "conns_active"), 1);
        assert_eq!(int(4, "conns_accepted"), 0);
        assert_eq!(int(4, "workers"), 2);
        // An absolute stats call is unaffected by (and does not move)
        // the cursor: lifetime totals, delta:false.
        assert_eq!(
            json::get(&lines[5], "delta"),
            Some(&json::Value::Bool(false))
        );
        assert_eq!(int(5, "requests"), 6);
        assert_eq!(int(5, "conns_accepted"), 1);
    }

    #[test]
    fn eof_without_shutdown_is_clean() {
        let (summary, lines) = run("{\"op\":\"equiv\",\"lhs\":\"End!\",\"rhs\":\"Dual End?\"}\n");
        assert_eq!(summary.requests, 1);
        assert_eq!(summary.responses, 1);
        assert!(!summary.saw_shutdown);
        assert_eq!(
            json::get(&lines[0], "verdict"),
            Some(&json::Value::Bool(true))
        );
    }

    #[test]
    fn trailing_line_without_newline_is_served() {
        let (summary, lines) = run("{\"op\":\"equiv\",\"lhs\":\"End!\",\"rhs\":\"Dual End?\"}");
        assert_eq!(summary.requests, 1);
        assert_eq!(summary.responses, 1);
        assert_eq!(
            json::get(&lines[0], "verdict"),
            Some(&json::Value::Bool(true))
        );
    }

    #[test]
    fn bad_lines_get_error_responses_and_do_not_stop_the_session() {
        let input = concat!(
            "this is not json\n",
            r#"{"op":"equiv","lhs":"!!!","rhs":"End!"}"#,
            "\n",
            r#"{"op":"equiv","lhs":"End!","rhs":"End!"}"#,
            "\n",
        );
        let (summary, lines) = run(input);
        assert_eq!(summary.responses, 3);
        assert_eq!(
            json::get(&lines[0], "op").and_then(json::Value::as_str),
            Some("error")
        );
        assert_eq!(
            json::get(&lines[1], "op").and_then(json::Value::as_str),
            Some("error")
        );
        assert_eq!(
            json::get(&lines[2], "verdict"),
            Some(&json::Value::Bool(true))
        );
        assert!(!summary.saw_shutdown);
    }

    #[test]
    fn pipelined_burst_comes_back_in_order() {
        // Far more requests than batch_max in one burst: several batches
        // are in flight at once and may complete out of order across
        // the two workers — the demux must still write request order.
        let mut input = String::new();
        for i in 0..200 {
            let (lhs, rhs) = if i % 3 == 0 {
                ("!Int.End!", "!Bool.End!")
            } else {
                ("!Int.End!", "Dual (?Int.End?)")
            };
            input.push_str(&format!(
                "{{\"id\":{},\"op\":\"equiv\",\"lhs\":\"{lhs}\",\"rhs\":\"{rhs}\"}}\n",
                i + 1
            ));
        }
        let engine = Engine::with_session(2, Session::new());
        let mut out = Vec::new();
        let config = ServeConfig {
            batch_max: 8,
            ..ServeConfig::default()
        };
        let summary = serve_session(&engine, input.as_bytes(), &mut out, config).unwrap();
        assert_eq!(summary.requests, 200);
        assert_eq!(summary.responses, 200);
        let text = String::from_utf8(out).unwrap();
        let mut seen = 0i64;
        for line in text.lines() {
            let pairs = json::parse_object(line).unwrap();
            let id = json::get(&pairs, "id")
                .and_then(json::Value::as_int)
                .unwrap();
            assert_eq!(id, seen + 1, "responses out of order");
            seen = id;
            let expected = (id - 1) % 3 != 0;
            assert_eq!(
                json::get(&pairs, "verdict"),
                Some(&json::Value::Bool(expected)),
                "verdict for {id}"
            );
        }
        assert_eq!(seen, 200);
    }

    fn run_routed(
        config: TenantConfig,
        input: &str,
    ) -> (ServeSummary, Vec<Vec<(String, json::Value)>>) {
        let tenants = TenantRegistry::new(config);
        let mut out = Vec::new();
        let summary =
            serve_session_tenants(&tenants, input.as_bytes(), &mut out, ServeConfig::default())
                .unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<Vec<(String, json::Value)>> = text
            .lines()
            .map(|l| json::parse_object(l).unwrap_or_else(|e| panic!("bad line {l}: {e}")))
            .collect();
        (summary, lines)
    }

    #[test]
    fn routed_session_runs_tenants_in_their_own_engines() {
        let input = concat!(
            r#"{"op":"equiv","lhs":"!Int.End!","rhs":"Dual (?Int.End?)","tenant":"acme"}"#,
            "\n",
            r#"{"op":"equiv","lhs":"!Int.End!","rhs":"Dual (?Int.End?)","tenant":"globex"}"#,
            "\n",
            r#"{"op":"equiv","lhs":"!Int.End!","rhs":"Dual (?Int.End?)","tenant":"acme"}"#,
            "\n",
            r#"{"op":"tenants"}"#,
            "\n",
        );
        let (summary, lines) = run_routed(TenantConfig::default(), input);
        assert_eq!(summary.requests, 4);
        assert_eq!(summary.responses, 4);
        let ids: Vec<_> = lines
            .iter()
            .map(|pairs| {
                json::get(pairs, "id")
                    .and_then(json::Value::as_int)
                    .unwrap()
            })
            .collect();
        assert_eq!(ids, vec![1, 2, 3, 4], "request order survives routing");
        // acme's repeat is warm; globex sees the pair for the first
        // time in its own (isolated) store, so it is not.
        assert_ne!(
            json::get(&lines[1], "warm"),
            Some(&json::Value::Bool(true)),
            "globex must not share acme's verdict cache"
        );
        assert_eq!(json::get(&lines[2], "warm"), Some(&json::Value::Bool(true)));
        // The tenants op reports both tenants by name.
        assert_eq!(
            json::get(&lines[3], "op").and_then(json::Value::as_str),
            Some("tenants")
        );
        assert_eq!(
            json::get(&lines[3], "tenants").and_then(json::Value::as_int),
            Some(2)
        );
        assert_eq!(
            json::get(&lines[3], "tenant_acme_requests").and_then(json::Value::as_int),
            Some(2)
        );
        assert_eq!(
            json::get(&lines[3], "tenant_globex_requests").and_then(json::Value::as_int),
            Some(1)
        );
    }

    #[test]
    fn routed_over_quota_requests_get_throttle_errors_in_order() {
        let config = TenantConfig {
            quotas: TenantQuotas {
                rate_limit: 2,
                burst: 2,
                ..TenantQuotas::default()
            },
            ..TenantConfig::default()
        };
        let mut input = String::new();
        for _ in 0..4 {
            input.push_str(
                "{\"op\":\"equiv\",\"lhs\":\"!Int.End!\",\"rhs\":\"Dual (?Int.End?)\",\"tenant\":\"acme\"}\n",
            );
        }
        let (summary, lines) = run_routed(config, &input);
        // Graceful degradation: every request is answered, none
        // disconnects the client.
        assert_eq!(summary.responses, 4);
        for (ix, line) in lines.iter().enumerate() {
            assert_eq!(
                json::get(line, "id").and_then(json::Value::as_int),
                Some(ix as i64 + 1),
                "order"
            );
        }
        // The 2-token burst admits the first two; the suffix is refused
        // with a structured throttle error naming the tenant.
        assert_eq!(
            json::get(&lines[1], "verdict"),
            Some(&json::Value::Bool(true))
        );
        for line in &lines[2..] {
            assert_eq!(
                json::get(line, "op").and_then(json::Value::as_str),
                Some("error")
            );
            assert_eq!(
                json::get(line, "kind").and_then(json::Value::as_str),
                Some("throttled")
            );
            assert_eq!(
                json::get(line, "tenant").and_then(json::Value::as_str),
                Some("acme")
            );
        }
    }

    #[test]
    fn routed_tenantless_requests_hit_the_default_tenant() {
        let input = concat!(
            r#"{"op":"equiv","lhs":"!Int.End!","rhs":"Dual (?Int.End?)"}"#,
            "\n",
            r#"{"op":"stats"}"#,
            "\n",
            r#"{"op":"tenants"}"#,
            "\n",
        );
        let (summary, lines) = run_routed(TenantConfig::default(), input);
        assert_eq!(summary.responses, 3);
        assert_eq!(
            json::get(&lines[0], "verdict"),
            Some(&json::Value::Bool(true))
        );
        // Routed stats lines carry the tenancy aggregates.
        assert_eq!(
            json::get(&lines[1], "tenants").and_then(json::Value::as_int),
            Some(1)
        );
        // equiv + stats were both admitted to the default tenant; the
        // tenants op itself is reader-answered and not counted.
        assert_eq!(
            json::get(&lines[2], "tenant_default_requests").and_then(json::Value::as_int),
            Some(2)
        );
    }

    #[test]
    fn tcp_round_trip() {
        use std::io::{BufRead, BufReader, Write};
        let engine = Engine::with_session(2, Session::new());
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::scope(|scope| {
            let server =
                scope.spawn(|| serve_listener(&engine, &listener, ServeConfig::default()).unwrap());
            let mut stream = std::net::TcpStream::connect(addr).unwrap();
            stream
                .write_all(
                    b"{\"op\":\"equiv\",\"lhs\":\"!Int.End!\",\"rhs\":\"Dual (?Int.End?)\"}\n",
                )
                .unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            let pairs = json::parse_object(line.trim()).unwrap();
            assert_eq!(json::get(&pairs, "verdict"), Some(&json::Value::Bool(true)));
            // Interactive follow-up on the same connection.
            stream.write_all(b"{\"op\":\"shutdown\"}\n").unwrap();
            line.clear();
            reader.read_line(&mut line).unwrap();
            assert!(line.contains("\"shutdown\""));
            let summary = server.join().unwrap();
            assert!(summary.saw_shutdown);
            assert_eq!(summary.connections, 1);
        });
    }

    #[test]
    fn half_written_line_and_dropped_socket_is_discarded_cleanly() {
        // The satellite fix: a client that sends a full request plus
        // half of a second line and vanishes without reading must have
        // its in-flight responses discarded — no panic, no stall — and
        // the server must keep serving other clients.
        use std::io::{BufRead, BufReader, Write};
        let engine = Engine::with_session(2, Session::new());
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::scope(|scope| {
            let server =
                scope.spawn(|| serve_listener(&engine, &listener, ServeConfig::default()).unwrap());
            {
                let mut rude = std::net::TcpStream::connect(addr).unwrap();
                // A deep pipelined burst keeps responses in flight, then
                // half a line, then a hard drop without reading a byte.
                // Closing with unread response data in the receive
                // buffer makes the kernel reset the connection, so the
                // server's writer hits a mid-stream write error.
                let mut burst = String::new();
                for _ in 0..500 {
                    burst.push_str(
                        "{\"op\":\"equiv\",\"lhs\":\"!Int.End!\",\"rhs\":\"Dual (?Int.End?)\"}\n",
                    );
                }
                burst.push_str("{\"op\":\"equiv\",\"lhs\":\"!In");
                rude.write_all(burst.as_bytes()).unwrap();
                // Give the server time to respond into our (unread)
                // receive buffer before the abrupt close.
                std::thread::sleep(Duration::from_millis(100));
                // Dropped here without reading any response.
            }
            // A well-behaved client on another connection is unaffected.
            let mut stream = std::net::TcpStream::connect(addr).unwrap();
            stream
                .write_all(b"{\"op\":\"equiv\",\"lhs\":\"End?\",\"rhs\":\"Dual End!\"}\n")
                .unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            let pairs = json::parse_object(line.trim()).unwrap();
            assert_eq!(json::get(&pairs, "verdict"), Some(&json::Value::Bool(true)));
            stream.write_all(b"{\"op\":\"shutdown\"}\n").unwrap();
            line.clear();
            reader.read_line(&mut line).unwrap();
            assert!(line.contains("\"shutdown\""));
            let summary = server.join().unwrap();
            assert!(summary.saw_shutdown);
            assert_eq!(summary.connections, 2);
        });
    }
}
