//! Front-ends: the JSON-lines loop over stdio or a TCP listener.
//!
//! The reader thread-of-control parses lines into [`Request`]s and
//! submits them to the [`Engine`] in **adaptive batches**: it keeps
//! pulling lines while the input buffer has more bytes ready (a piped
//! client that wrote a burst gets one batch), flushing at
//! [`ServeConfig::batch_max`] so latency stays bounded under a firehose.
//! A separate writer thread drains responses and writes them as they
//! complete — so a client that waits for an answer before sending its
//! next request never deadlocks, and a client that streams thousands of
//! requests overlaps its parsing with the pool's checking.
//!
//! A `shutdown` request stops reading, drains everything in flight,
//! answers `{"op":"shutdown","ok":true}` and returns. EOF behaves the
//! same, minus the response.

use crate::engine::Engine;
use crate::protocol::{parse_request, Op, Request};
use crossbeam::channel::bounded;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpListener;

/// Front-end configuration (the engine itself is configured separately).
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Max requests per submitted batch.
    pub batch_max: usize,
    /// Print a `stats`-shaped JSON line to stderr when the session ends.
    pub stats_on_exit: bool,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            batch_max: 256,
            stats_on_exit: false,
        }
    }
}

/// What a serve session did, and whether it ended via `shutdown`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeSummary {
    pub requests: u64,
    pub responses: u64,
    pub saw_shutdown: bool,
}

/// Serves one JSON-lines session: reads requests from `input`, writes
/// responses to `output` (order of completion, tagged by id). Returns
/// when the input ends or a `shutdown` op is processed.
pub fn serve_session<R, W>(
    engine: &Engine,
    input: R,
    output: W,
    config: ServeConfig,
) -> io::Result<ServeSummary>
where
    R: Read,
    W: Write + Send,
{
    let mut input = BufReader::new(input);
    let (reply_tx, reply_rx) = bounded::<Vec<crate::protocol::Response>>(queue_depth(&config));
    let mut summary = ServeSummary::default();

    std::thread::scope(|scope| {
        let writer = scope.spawn(move || -> io::Result<u64> {
            let mut output = output;
            let mut written = 0u64;
            while let Ok(batch) = reply_rx.recv() {
                for response in &batch {
                    writeln!(output, "{}", response.to_json())?;
                }
                written += batch.len() as u64;
                // One flush per batch: keeps request/response clients
                // moving without a syscall per line under load.
                output.flush()?;
            }
            output.flush()?;
            Ok(written)
        });

        let mut line = String::new();
        let mut pending: Vec<Request> = Vec::new();
        let mut next_id = 0u64;
        'read: loop {
            // A dead writer (client stopped reading: EPIPE, reset) makes
            // every further response undeliverable — stop parsing and
            // checking instead of burning the pool on discarded work.
            if writer.is_finished() {
                break 'read;
            }
            line.clear();
            let n = input.read_line(&mut line)?;
            if n == 0 {
                break 'read; // EOF
            }
            let trimmed = line.trim();
            if trimmed.is_empty() {
                continue;
            }
            next_id += 1;
            let request = parse_request(trimmed, next_id);
            let stop = matches!(request.op, Op::Shutdown);
            summary.requests += 1;
            pending.push(request);
            if stop {
                summary.saw_shutdown = true;
                break 'read;
            }
            // Flush a batch when it is full or the pipe has no more
            // bytes ready (burst boundary).
            if pending.len() >= config.batch_max || input.buffer().is_empty() {
                engine.submit(std::mem::take(&mut pending), reply_tx.clone());
            }
        }
        if !pending.is_empty() {
            engine.submit(std::mem::take(&mut pending), reply_tx.clone());
        }
        // Drop our reply sender: once the workers finish the submitted
        // batches and drop theirs, the writer sees disconnect and ends.
        drop(reply_tx);
        match writer.join().expect("writer thread does not panic") {
            Ok(written) => {
                summary.responses = written;
                Ok(())
            }
            Err(e) => Err(e),
        }
    })?;

    if config.stats_on_exit {
        eprintln!("{}", stats_line(engine));
    }
    Ok(summary)
}

fn queue_depth(config: &ServeConfig) -> usize {
    (4096 / config.batch_max.max(1)).max(4)
}

/// The engine snapshot rendered exactly like a `stats` response (without
/// an id), for `--stats-on-exit`.
pub fn stats_line(engine: &Engine) -> String {
    let response = crate::protocol::Response::Stats {
        id: 0,
        snapshot: engine.snapshot(),
    };
    response.to_json()
}

/// Serves stdio until EOF or `shutdown`.
pub fn serve_stdio(engine: &Engine, config: ServeConfig) -> io::Result<ServeSummary> {
    // `Stdout` (not `StdoutLock`) — the writer thread needs `Send`.
    serve_session(engine, io::stdin().lock(), io::stdout(), config)
}

/// Binds `addr` and serves TCP connections **sequentially** (each
/// connection gets the full worker pool; a `shutdown` op ends the whole
/// listener). Returns the summary of the session that saw the shutdown.
pub fn serve_tcp(engine: &Engine, addr: &str, config: ServeConfig) -> io::Result<ServeSummary> {
    let listener = TcpListener::bind(addr)?;
    serve_listener(engine, &listener, config)
}

/// [`serve_tcp`] over an already-bound listener (lets callers pick port
/// 0 and read the real address back). A connection that fails mid-
/// session (client reset, EPIPE) is logged and dropped — the listener
/// keeps serving; only `accept` errors end the loop.
pub fn serve_listener(
    engine: &Engine,
    listener: &TcpListener,
    config: ServeConfig,
) -> io::Result<ServeSummary> {
    loop {
        let (stream, peer) = listener.accept()?;
        let reader = match stream.try_clone() {
            Ok(reader) => reader,
            Err(e) => {
                eprintln!("algst serve: dropping connection from {peer}: {e}");
                continue;
            }
        };
        match serve_session(engine, reader, stream, config) {
            Ok(summary) if summary.saw_shutdown => return Ok(summary),
            Ok(_) => {}
            Err(e) => eprintln!("algst serve: connection from {peer} failed: {e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use algst_core::Session;

    fn run(input: &str) -> (ServeSummary, Vec<Vec<(String, json::Value)>>) {
        let engine = Engine::with_session(2, Session::new());
        let mut out = Vec::new();
        let summary =
            serve_session(&engine, input.as_bytes(), &mut out, ServeConfig::default()).unwrap();
        let text = String::from_utf8(out).unwrap();
        let mut lines: Vec<Vec<(String, json::Value)>> = text
            .lines()
            .map(|l| json::parse_object(l).unwrap_or_else(|e| panic!("bad line {l}: {e}")))
            .collect();
        lines.sort_by_key(|pairs| json::get(pairs, "id").and_then(json::Value::as_int));
        (summary, lines)
    }

    #[test]
    fn answers_batches_and_shuts_down() {
        let input = concat!(
            r#"{"op":"equiv","lhs":"!Int.End!","rhs":"Dual (?Int.End?)"}"#,
            "\n",
            r#"{"op":"equiv","lhs":"!Int.End!","rhs":"!Bool.End!"}"#,
            "\n",
            r#"{"op":"equiv","lhs":"!Int.End!","rhs":"Dual (?Int.End?)"}"#,
            "\n",
            r#"{"op":"stats"}"#,
            "\n",
            r#"{"op":"shutdown"}"#,
            "\n",
        );
        let (summary, lines) = run(input);
        assert_eq!(summary.requests, 5);
        assert_eq!(summary.responses, 5);
        assert!(summary.saw_shutdown);
        let verdict = |ix: usize| json::get(&lines[ix], "verdict").cloned();
        assert_eq!(verdict(0), Some(json::Value::Bool(true)));
        assert_eq!(verdict(1), Some(json::Value::Bool(false)));
        assert_eq!(verdict(2), Some(json::Value::Bool(true)));
        // The repeat pair is warm.
        assert_eq!(json::get(&lines[2], "warm"), Some(&json::Value::Bool(true)));
        assert_eq!(
            json::get(&lines[3], "op").and_then(json::Value::as_str),
            Some("stats")
        );
        assert_eq!(
            json::get(&lines[4], "op").and_then(json::Value::as_str),
            Some("shutdown")
        );
    }

    #[test]
    fn eof_without_shutdown_is_clean() {
        let (summary, lines) = run("{\"op\":\"equiv\",\"lhs\":\"End!\",\"rhs\":\"Dual End?\"}\n");
        assert_eq!(summary.requests, 1);
        assert_eq!(summary.responses, 1);
        assert!(!summary.saw_shutdown);
        assert_eq!(
            json::get(&lines[0], "verdict"),
            Some(&json::Value::Bool(true))
        );
    }

    #[test]
    fn bad_lines_get_error_responses_and_do_not_stop_the_session() {
        let input = concat!(
            "this is not json\n",
            r#"{"op":"equiv","lhs":"!!!","rhs":"End!"}"#,
            "\n",
            r#"{"op":"equiv","lhs":"End!","rhs":"End!"}"#,
            "\n",
        );
        let (summary, lines) = run(input);
        assert_eq!(summary.responses, 3);
        assert_eq!(
            json::get(&lines[0], "op").and_then(json::Value::as_str),
            Some("error")
        );
        assert_eq!(
            json::get(&lines[1], "op").and_then(json::Value::as_str),
            Some("error")
        );
        assert_eq!(
            json::get(&lines[2], "verdict"),
            Some(&json::Value::Bool(true))
        );
        assert!(!summary.saw_shutdown);
    }

    #[test]
    fn tcp_round_trip() {
        use std::io::{BufRead, BufReader, Write};
        let engine = Engine::with_session(2, Session::new());
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::scope(|scope| {
            let server =
                scope.spawn(|| serve_listener(&engine, &listener, ServeConfig::default()).unwrap());
            let mut stream = std::net::TcpStream::connect(addr).unwrap();
            stream
                .write_all(
                    b"{\"op\":\"equiv\",\"lhs\":\"!Int.End!\",\"rhs\":\"Dual (?Int.End?)\"}\n",
                )
                .unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            let pairs = json::parse_object(line.trim()).unwrap();
            assert_eq!(json::get(&pairs, "verdict"), Some(&json::Value::Bool(true)));
            // Interactive follow-up on the same connection.
            stream.write_all(b"{\"op\":\"shutdown\"}\n").unwrap();
            line.clear();
            reader.read_line(&mut line).unwrap();
            assert!(line.contains("\"shutdown\""));
            let summary = server.join().unwrap();
            assert!(summary.saw_shutdown);
        });
    }
}
