//! Multi-tenant registry: tenant name → lazily-created [`Engine`] over
//! its **own** [`Session`] store, with per-tenant quotas, admission
//! control, and idle eviction.
//!
//! # Snapshot protocol (why the warm path takes no locks)
//!
//! The registry reuses the epoch-snapshot pattern of
//! [`algst_core::shared::SharedStore`]: the live tenant map is an
//! immutable [`Arc`]'d snapshot tagged with a generation number, and
//! every connection resolves tenants through a [`TenantView`] holding
//! its own pin of that snapshot. Per batch, resolution is:
//!
//! 1. one `Acquire` load of the registry generation;
//! 2. if it matches the view's pinned snapshot (the steady state —
//!    tenants come and go far more slowly than requests), a plain
//!    `HashMap` lookup in the pinned snapshot. **No lock.**
//! 3. on a mismatch, refetch the current snapshot under the read lock
//!    (counted in [`TenantRegistry::lock_acquisitions`], which the
//!    zero-lock replay test asserts stays flat).
//!
//! Writers — tenant creation, LRU eviction, the idle sweeper — agree
//! among themselves via a writer mutex, build the next map from a clone
//! of the current one, install it under the write lock, and only then
//! publish the new generation with a `Release` store. A reader that
//! probes the old generation keeps using its pinned (fully valid,
//! merely outdated) snapshot for the rest of that probe; the next probe
//! sees the new generation.
//!
//! # Eviction protocol
//!
//! Eviction (LRU under `--max-tenants`, or the idle sweeper under
//! `--tenant-idle-secs`) removes the [`TenantHandle`] from the *next*
//! snapshot — it never touches the engine directly. The engine drains
//! and drops when the last `Arc` to its handle releases: in-flight
//! batches and pinned views keep it alive exactly as long as they need
//! it, then its worker threads join and its store memory returns to the
//! allocator. A tenant that comes back after eviction is recreated
//! **cold** (fresh store, empty caches) and counted in
//! `tenant_recreations`.
//!
//! # Admission control
//!
//! [`TenantHandle::admit`] enforces two quotas without locks: an
//! in-flight request cap (a CAS-reserved counter, released as responses
//! are written) and a token-bucket request rate (nanotoken resolution,
//! single-CAS-winner refill). Both grant batch **prefixes**: tokens
//! only grow with time and in-flight only grows within a batch, so the
//! refused suffix — answered with [`Response::Throttled`] — never
//! reorders around the granted prefix. A tenant with no quotas
//! configured pays three relaxed atomic updates per batch and touches
//! neither the bucket nor the in-flight counter.

use crate::engine::{Engine, EngineObs, ObsOptions};
use crate::json::Value;
use crate::protocol::{Request, Response, Snapshot, ThrottleKind};
use algst_core::Session;
use parking_lot::{Mutex, RwLock};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The tenant every request without a `"tenant"` field belongs to.
pub const DEFAULT_TENANT: &str = "default";

/// Nanotokens per token: the bucket's fixed-point scale.
const TOKEN_SCALE: u64 = 1_000_000_000;

/// How often the sweeper thread re-checks its stop flag while waiting
/// out a sweep period.
const SWEEP_SLICE: Duration = Duration::from_millis(25);

/// Per-tenant quota configuration. Zero always means "unlimited" /
/// "off", so `TenantQuotas::default()` is a quota-less tenant.
#[derive(Clone, Copy, Debug, Default)]
pub struct TenantQuotas {
    /// Store byte ceiling, enforced by the tenant engine's compaction
    /// (see [`Engine::set_compaction`]).
    pub max_store_bytes: u64,
    /// Compact the tenant's store every N requests.
    pub compact_interval: u64,
    /// Token-bucket refill rate, requests per second.
    pub rate_limit: u64,
    /// Token-bucket capacity; zero defaults to one second of
    /// `rate_limit` (the conventional burst).
    pub burst: u64,
    /// Maximum admitted-but-unanswered requests.
    pub max_inflight: u64,
}

/// Registry-wide configuration: how tenant engines are built and when
/// tenants are evicted.
#[derive(Clone, Debug)]
pub struct TenantConfig {
    /// Worker threads per tenant engine.
    pub workers: usize,
    /// Observability wiring cloned into every tenant engine; share one
    /// registry so a single scrape covers all tenants.
    pub obs: ObsOptions,
    /// Quotas applied uniformly to every tenant (including
    /// [`DEFAULT_TENANT`]).
    pub quotas: TenantQuotas,
    /// Live-tenant cap; creating one more LRU-evicts the coldest.
    /// Zero means unbounded.
    pub max_tenants: usize,
    /// Evict tenants idle for at least this long (the sweeper only
    /// runs under [`TenantRegistry::with_sweeper`]).
    pub idle_timeout: Option<Duration>,
}

impl Default for TenantConfig {
    fn default() -> TenantConfig {
        TenantConfig {
            workers: 1,
            obs: ObsOptions::default(),
            quotas: TenantQuotas::default(),
            max_tenants: 0,
            idle_timeout: None,
        }
    }
}

/// A lock-free token bucket in nanotoken fixed point. Refills are
/// claimed by a single CAS winner per elapsed interval; spends are a
/// CAS loop granting as much of the request as the balance covers.
struct TokenBucket {
    /// Nanotokens per nanosecond — numerically equal to tokens/second.
    rate: u64,
    /// Capacity in nanotokens.
    burst: u64,
    tokens: AtomicU64,
    /// Registry-clock nanoseconds of the last claimed refill.
    last: AtomicU64,
}

impl TokenBucket {
    fn new(rate_limit: u64, burst_tokens: u64, now_ns: u64) -> TokenBucket {
        let burst_tokens = if burst_tokens == 0 {
            rate_limit
        } else {
            burst_tokens
        };
        // Cap at half the u64 range so refill's fetch_add can never
        // wrap (balance ≤ burst + one capped refill).
        let burst = burst_tokens.saturating_mul(TOKEN_SCALE).min(u64::MAX / 2);
        TokenBucket {
            rate: rate_limit,
            burst,
            tokens: AtomicU64::new(burst),
            last: AtomicU64::new(now_ns),
        }
    }

    /// Credits elapsed time. Exactly one caller wins the CAS on `last`
    /// per transition, so each elapsed interval is credited once.
    fn refill(&self, now_ns: u64) {
        let last = self.last.load(Ordering::Relaxed);
        if now_ns <= last
            || self
                .last
                .compare_exchange(last, now_ns, Ordering::Relaxed, Ordering::Relaxed)
                .is_err()
        {
            return;
        }
        let add = (now_ns - last).saturating_mul(self.rate).min(u64::MAX / 2);
        self.tokens.fetch_add(add, Ordering::Relaxed);
        // Clamp back to capacity (a concurrent spend may already have
        // brought the balance down — only ever clamp, never add).
        loop {
            let cur = self.tokens.load(Ordering::Relaxed);
            if cur <= self.burst
                || self
                    .tokens
                    .compare_exchange_weak(cur, self.burst, Ordering::Relaxed, Ordering::Relaxed)
                    .is_ok()
            {
                break;
            }
        }
    }

    /// Spends up to `want` whole tokens; returns how many were granted.
    fn spend(&self, want: u64) -> u64 {
        loop {
            let cur = self.tokens.load(Ordering::Relaxed);
            let grant = want.min(cur / TOKEN_SCALE);
            if grant == 0 {
                return 0;
            }
            if self
                .tokens
                .compare_exchange_weak(
                    cur,
                    cur - grant * TOKEN_SCALE,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                )
                .is_ok()
            {
                return grant;
            }
        }
    }
}

/// The admission verdict for one batch: the first `granted` requests
/// proceed to the tenant's engine; the rest are refused with `kind`.
#[derive(Clone, Copy, Debug)]
pub struct Admission {
    pub granted: usize,
    /// Why the suffix (if any) was refused. When both quotas bind in
    /// one batch the rate-limit kind wins (it cuts last, deepest).
    pub kind: Option<ThrottleKind>,
}

/// One live tenant: its engine (over its own store), quota state, and
/// activity clock. Shared via `Arc` between the registry snapshot and
/// any connection currently serving the tenant.
pub struct TenantHandle {
    name: Arc<str>,
    engine: Engine,
    bucket: Option<TokenBucket>,
    max_inflight: u64,
    inflight: AtomicU64,
    requests: AtomicU64,
    throttled: AtomicU64,
    /// Registry-clock nanoseconds of the last admission — the idle
    /// sweeper's and LRU evictor's recency signal.
    last_active: AtomicU64,
}

impl TenantHandle {
    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Requests admitted so far.
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Requests refused at admission so far.
    pub fn throttled(&self) -> u64 {
        self.throttled.load(Ordering::Relaxed)
    }

    /// Admitted-but-unanswered requests (0 unless `max_inflight` is
    /// set — untracked tenants never touch the counter).
    pub fn inflight(&self) -> u64 {
        self.inflight.load(Ordering::Relaxed)
    }

    /// Admits a prefix of a `want`-request batch. Lock-free; see the
    /// module docs for why refusals are always a suffix.
    pub fn admit(&self, want: usize, now_ns: u64) -> Admission {
        self.last_active.store(now_ns, Ordering::Relaxed);
        let want = want as u64;
        let mut granted = want;
        let mut kind = None;
        if self.max_inflight > 0 {
            loop {
                let cur = self.inflight.load(Ordering::Relaxed);
                let grant = granted.min(self.max_inflight.saturating_sub(cur));
                if grant == 0 {
                    granted = 0;
                    kind = Some(ThrottleKind::QuotaExceeded);
                    break;
                }
                if self
                    .inflight
                    .compare_exchange_weak(cur, cur + grant, Ordering::Relaxed, Ordering::Relaxed)
                    .is_ok()
                {
                    if grant < granted {
                        kind = Some(ThrottleKind::QuotaExceeded);
                    }
                    granted = grant;
                    break;
                }
            }
        }
        if granted > 0 {
            if let Some(bucket) = &self.bucket {
                bucket.refill(now_ns);
                let grant = bucket.spend(granted);
                if grant < granted {
                    kind = Some(ThrottleKind::Throttled);
                    if self.max_inflight > 0 {
                        // Release the in-flight slots the bucket vetoed.
                        self.inflight.fetch_sub(granted - grant, Ordering::Relaxed);
                    }
                    granted = grant;
                }
            }
        }
        self.requests.fetch_add(granted, Ordering::Relaxed);
        if granted < want {
            self.throttled.fetch_add(want - granted, Ordering::Relaxed);
        }
        Admission {
            granted: granted as usize,
            kind,
        }
    }

    /// Does this tenant account in-flight requests at all? (Quota-less
    /// tenants skip the counter entirely.)
    pub fn tracks_inflight(&self) -> bool {
        self.max_inflight > 0
    }

    /// Releases `n` in-flight slots once their responses are written
    /// (or dropped with a dead connection).
    pub fn complete(&self, n: u64) {
        if self.max_inflight > 0 && n > 0 {
            self.inflight.fetch_sub(n, Ordering::Relaxed);
        }
    }

    /// The tenant store's estimated live bytes.
    pub fn store_bytes(&self) -> u64 {
        self.engine.store().live_bytes()
    }
}

impl std::fmt::Debug for TenantHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TenantHandle")
            .field("name", &self.name)
            .finish()
    }
}

/// One immutable generation of the tenant map.
struct TenantMap {
    generation: u64,
    tenants: HashMap<Arc<str>, Arc<TenantHandle>>,
}

/// A connection's pin of the registry snapshot. Cheap to create; repins
/// itself with one atomic probe per [`TenantRegistry::resolve`].
pub struct TenantView {
    map: Arc<TenantMap>,
}

/// Writer-side bookkeeping, serialized by the writer mutex.
struct WriterState {
    /// Names ever evicted, so a comeback counts as a recreation.
    evicted: HashSet<String>,
}

/// Aggregate registry statistics (the tenancy fields of the `stats`
/// op's [`Snapshot`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct RegistryStats {
    pub tenants: u64,
    pub evictions: u64,
    pub recreations: u64,
    pub throttled: u64,
}

/// The tenant registry. See the module docs for the snapshot, eviction
/// and admission protocols.
pub struct TenantRegistry {
    config: TenantConfig,
    /// Connection-level observability hooks for the routed front-end
    /// (tenant engines resolve the same metric names from the same
    /// shared registry, so everything folds into one scrape).
    front_obs: Arc<EngineObs>,
    /// Fast-path probe: the generation of the currently installed map.
    generation: AtomicU64,
    current: RwLock<Arc<TenantMap>>,
    writer: Mutex<WriterState>,
    start: Instant,
    evictions: AtomicU64,
    recreations: AtomicU64,
    throttled: AtomicU64,
    /// Registry lock acquisitions (view refetches, installs, admin
    /// reads). Flat across a warm replay — the zero-lock proof.
    locks: AtomicU64,
    stop: Arc<AtomicBool>,
    sweeper: Mutex<Option<JoinHandle<()>>>,
}

impl std::fmt::Debug for TenantRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TenantRegistry")
            .field("tenants", &self.stats().tenants)
            .finish()
    }
}

impl TenantRegistry {
    /// A registry with no sweeper thread (callers drive
    /// [`TenantRegistry::sweep_idle`] themselves — tests, mostly).
    pub fn new(config: TenantConfig) -> TenantRegistry {
        let front_obs = Arc::new(EngineObs::new(config.obs.clone()));
        TenantRegistry {
            config,
            front_obs,
            generation: AtomicU64::new(0),
            current: RwLock::new(Arc::new(TenantMap {
                generation: 0,
                tenants: HashMap::new(),
            })),
            writer: Mutex::new(WriterState {
                evicted: HashSet::new(),
            }),
            start: Instant::now(),
            evictions: AtomicU64::new(0),
            recreations: AtomicU64::new(0),
            throttled: AtomicU64::new(0),
            locks: AtomicU64::new(0),
            stop: Arc::new(AtomicBool::new(false)),
            sweeper: Mutex::new(None),
        }
    }

    /// [`TenantRegistry::new`] plus a background sweeper thread driving
    /// [`TenantRegistry::sweep_idle`] every quarter idle-timeout (when
    /// one is configured). The sweeper holds only a [`Weak`] reference
    /// and stops when the registry drops.
    pub fn with_sweeper(config: TenantConfig) -> Arc<TenantRegistry> {
        let registry = Arc::new(TenantRegistry::new(config));
        let Some(idle) = registry.config.idle_timeout else {
            return registry;
        };
        let tick = (idle / 4).max(SWEEP_SLICE);
        let weak = Arc::downgrade(&registry);
        let stop = Arc::clone(&registry.stop);
        let handle = std::thread::Builder::new()
            .name("algst-tenant-sweeper".into())
            .spawn(move || sweeper_loop(&weak, &stop, tick))
            .expect("spawn tenant sweeper");
        *registry.sweeper.lock() = Some(handle);
        registry
    }

    /// Front-end observability hooks (connection lifecycle, reader and
    /// writer stage timings) shared by every routed connection.
    pub(crate) fn obs(&self) -> &Arc<EngineObs> {
        &self.front_obs
    }

    /// Nanoseconds on the registry's monotonic clock (the timebase of
    /// token buckets and `last_active`).
    fn now_ns(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// A fresh view pinning the current snapshot.
    pub fn view(&self) -> TenantView {
        TenantView {
            map: self.read_current(),
        }
    }

    fn read_current(&self) -> Arc<TenantMap> {
        self.locks.fetch_add(1, Ordering::Relaxed);
        Arc::clone(&self.current.read())
    }

    /// Warm-path resolution: one `Acquire` probe of the generation, a
    /// refetch under the read lock **only** when the registry changed
    /// since the view last looked, then a map lookup. Returns `None`
    /// for a tenant with no live engine (never contacted, or evicted).
    pub fn resolve(&self, view: &mut TenantView, name: &str) -> Option<Arc<TenantHandle>> {
        let generation = self.generation.load(Ordering::Acquire);
        if generation != view.map.generation {
            view.map = self.read_current();
        }
        view.map.tenants.get(name).cloned()
    }

    /// [`TenantRegistry::resolve`], creating the tenant (cold) on a
    /// miss — the routing entry point.
    pub fn tenant(&self, view: &mut TenantView, name: &str) -> Arc<TenantHandle> {
        if let Some(handle) = self.resolve(view, name) {
            return handle;
        }
        self.get_or_create(view, name)
    }

    /// Admits a `want`-request batch for `handle`, folding refusals
    /// into the registry-wide throttle counter.
    pub fn admit(&self, handle: &TenantHandle, want: usize) -> Admission {
        let admission = handle.admit(want, self.now_ns());
        let refused = want - admission.granted;
        if refused > 0 {
            self.throttled.fetch_add(refused as u64, Ordering::Relaxed);
        }
        admission
    }

    /// One-shot convenience (benchmarks, tests, stdio-less callers):
    /// resolve, admit, run the granted prefix on the tenant's engine,
    /// answer the refused suffix with [`Response::Throttled`].
    pub fn process(&self, view: &mut TenantView, name: &str, items: Vec<Request>) -> Vec<Response> {
        let handle = self.tenant(view, name);
        let want = items.len();
        let admission = self.admit(&handle, want);
        let mut items = items;
        let refused = items.split_off(admission.granted);
        let mut out = if items.is_empty() {
            Vec::with_capacity(refused.len())
        } else {
            handle.engine().process(items)
        };
        let kind = admission.kind.unwrap_or(ThrottleKind::Throttled);
        out.extend(refused.into_iter().map(|r| Response::Throttled {
            id: r.id,
            tenant: name.to_string(),
            kind,
        }));
        handle.complete(admission.granted as u64);
        out
    }

    /// The cold path: create (or rediscover) `name` under the writer
    /// mutex, LRU-evicting over `max_tenants`, and install the next
    /// snapshot generation.
    fn get_or_create(&self, view: &mut TenantView, name: &str) -> Arc<TenantHandle> {
        self.locks.fetch_add(1, Ordering::Relaxed);
        let mut writer = self.writer.lock();
        // Re-check under the mutex: another connection may have created
        // the tenant between our probe and our lock.
        let current = self.read_current();
        if let Some(handle) = current.tenants.get(name) {
            let handle = Arc::clone(handle);
            view.map = current;
            return handle;
        }
        let mut tenants = current.tenants.clone();
        if self.config.max_tenants > 0 {
            while tenants.len() >= self.config.max_tenants {
                let coldest = tenants
                    .values()
                    .min_by_key(|h| h.last_active.load(Ordering::Relaxed))
                    .map(|h| Arc::clone(&h.name));
                let Some(coldest) = coldest else { break };
                tenants.remove(&coldest);
                writer.evicted.insert(coldest.to_string());
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        if writer.evicted.contains(name) {
            self.recreations.fetch_add(1, Ordering::Relaxed);
        }
        let handle = Arc::new(self.new_handle(name));
        tenants.insert(Arc::clone(&handle.name), Arc::clone(&handle));
        view.map = self.install(tenants);
        handle
    }

    fn new_handle(&self, name: &str) -> TenantHandle {
        let engine = Engine::with_obs(self.config.workers, Session::new(), self.config.obs.clone());
        let quotas = self.config.quotas;
        engine.set_compaction(quotas.max_store_bytes, quotas.compact_interval);
        let now = self.now_ns();
        TenantHandle {
            name: Arc::from(name),
            engine,
            bucket: (quotas.rate_limit > 0)
                .then(|| TokenBucket::new(quotas.rate_limit, quotas.burst, now)),
            max_inflight: quotas.max_inflight,
            inflight: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            throttled: AtomicU64::new(0),
            last_active: AtomicU64::new(now),
        }
    }

    /// Installs `tenants` as the next snapshot generation. The map goes
    /// in under the write lock **before** the generation publishes with
    /// `Release`, so any reader that observes the new generation
    /// refetches at least this map.
    fn install(&self, tenants: HashMap<Arc<str>, Arc<TenantHandle>>) -> Arc<TenantMap> {
        let generation = self.generation.load(Ordering::Relaxed) + 1;
        let map = Arc::new(TenantMap {
            generation,
            tenants,
        });
        self.locks.fetch_add(1, Ordering::Relaxed);
        *self.current.write() = Arc::clone(&map);
        self.generation.store(generation, Ordering::Release);
        map
    }

    /// Evicts every tenant idle for at least the configured timeout;
    /// returns how many went. A no-op without an `idle_timeout`.
    pub fn sweep_idle(&self) -> usize {
        let Some(idle) = self.config.idle_timeout else {
            return 0;
        };
        let idle_ns = u64::try_from(idle.as_nanos()).unwrap_or(u64::MAX);
        let now = self.now_ns();
        let is_cold =
            |h: &TenantHandle| now.saturating_sub(h.last_active.load(Ordering::Relaxed)) >= idle_ns;
        // Cheap pre-check outside the writer mutex.
        if !self.read_current().tenants.values().any(|h| is_cold(h)) {
            return 0;
        }
        self.locks.fetch_add(1, Ordering::Relaxed);
        let mut writer = self.writer.lock();
        let current = self.read_current();
        let mut tenants = current.tenants.clone();
        let mut evicted = 0u64;
        tenants.retain(|name, handle| {
            if is_cold(handle) {
                writer.evicted.insert(name.to_string());
                evicted += 1;
                false
            } else {
                true
            }
        });
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
            self.install(tenants);
        }
        evicted as usize
    }

    /// Aggregate statistics (the `stats` op's tenancy fields).
    pub fn stats(&self) -> RegistryStats {
        RegistryStats {
            tenants: self.read_current().tenants.len() as u64,
            evictions: self.evictions.load(Ordering::Relaxed),
            recreations: self.recreations.load(Ordering::Relaxed),
            throttled: self.throttled.load(Ordering::Relaxed),
        }
    }

    /// Stamps the registry's tenancy aggregates into a snapshot (the
    /// routed front-end calls this on every outgoing `stats` response).
    pub fn patch_snapshot(&self, snapshot: &mut Snapshot) {
        let stats = self.stats();
        snapshot.tenancy = true;
        snapshot.tenants = stats.tenants;
        snapshot.tenant_evictions = stats.evictions;
        snapshot.tenant_recreations = stats.recreations;
        snapshot.tenant_throttled = stats.throttled;
    }

    /// Registry lock acquisitions so far (snapshot refetches, installs,
    /// admin reads). Flat across warm traffic on a stable tenant set.
    pub fn lock_acquisitions(&self) -> u64 {
        self.locks.load(Ordering::Relaxed)
    }

    /// Live tenant handles, sorted by name (admin listing, scrape).
    pub fn handles(&self) -> Vec<Arc<TenantHandle>> {
        let mut handles: Vec<Arc<TenantHandle>> =
            self.read_current().tenants.values().cloned().collect();
        handles.sort_by(|a, b| a.name.cmp(&b.name));
        handles
    }

    /// The `tenants` op's flat field list: registry aggregates first,
    /// then per-tenant counters under `tenant_<name>_*` keys, tenants
    /// in name order. Flat because the wire codec rejects nesting.
    pub fn tenants_fields(&self) -> Vec<(String, Value)> {
        let stats = self.stats();
        let handles = self.handles();
        let now = self.now_ns();
        let mut fields: Vec<(String, Value)> = Vec::with_capacity(4 + handles.len() * 6);
        fields.push(("tenants".into(), Value::Int(stats.tenants as i64)));
        fields.push((
            "tenant_evictions".into(),
            Value::Int(stats.evictions as i64),
        ));
        fields.push((
            "tenant_recreations".into(),
            Value::Int(stats.recreations as i64),
        ));
        fields.push((
            "tenant_throttled".into(),
            Value::Int(stats.throttled as i64),
        ));
        for handle in handles {
            let name = handle.name();
            let snapshot = handle.engine().snapshot();
            let idle_ms =
                now.saturating_sub(handle.last_active.load(Ordering::Relaxed)) / 1_000_000;
            for (key, value) in [
                ("requests", handle.requests()),
                ("throttled", handle.throttled()),
                ("inflight", handle.inflight()),
                ("store_bytes", snapshot.store_bytes),
                ("store_nodes", snapshot.nodes),
                ("idle_ms", idle_ms),
            ] {
                fields.push((format!("tenant_{name}_{key}"), Value::Int(value as i64)));
            }
        }
        fields
    }

    /// Tenant-labelled Prometheus series, appended to the scrape body
    /// by the routed metrics endpoint.
    pub fn prometheus(&self) -> String {
        let stats = self.stats();
        let handles = self.handles();
        let mut out = String::new();
        for (name, kind, value) in [
            ("tenants", "gauge", stats.tenants),
            ("tenant_evictions_total", "counter", stats.evictions),
            ("tenant_recreations_total", "counter", stats.recreations),
            ("tenant_throttled_total", "counter", stats.throttled),
        ] {
            out.push_str(&format!(
                "# TYPE algst_{name} {kind}\nalgst_{name} {value}\n"
            ));
        }
        type Series = (&'static str, &'static str, fn(&TenantHandle) -> u64);
        let series: [Series; 5] = [
            ("tenant_requests_total", "counter", TenantHandle::requests),
            (
                "tenant_throttled_requests_total",
                "counter",
                TenantHandle::throttled,
            ),
            ("tenant_inflight", "gauge", TenantHandle::inflight),
            ("tenant_store_bytes", "gauge", TenantHandle::store_bytes),
            ("tenant_store_nodes", "gauge", |h| {
                h.engine().store().stats().nodes
            }),
        ];
        for (name, kind, read) in series {
            out.push_str(&format!("# TYPE algst_{name} {kind}\n"));
            for handle in &handles {
                out.push_str(&format!(
                    "algst_{name}{{tenant=\"{}\"}} {}\n",
                    handle.name(),
                    read(handle)
                ));
            }
        }
        out
    }
}

impl Drop for TenantRegistry {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.sweeper.lock().take() {
            let _ = handle.join();
        }
    }
}

fn sweeper_loop(registry: &Weak<TenantRegistry>, stop: &AtomicBool, tick: Duration) {
    let mut waited = Duration::ZERO;
    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        std::thread::sleep(SWEEP_SLICE.min(tick));
        waited += SWEEP_SLICE;
        if waited < tick {
            continue;
        }
        waited = Duration::ZERO;
        let Some(registry) = registry.upgrade() else {
            return;
        };
        registry.sweep_idle();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::Op;

    fn equiv(id: u64, lhs: &str, rhs: &str) -> Request {
        Request {
            id,
            op: Op::Equiv {
                lhs: lhs.into(),
                rhs: rhs.into(),
            },
        }
    }

    fn config(quotas: TenantQuotas) -> TenantConfig {
        TenantConfig {
            quotas,
            ..TenantConfig::default()
        }
    }

    #[test]
    fn token_bucket_grants_burst_then_refills_over_time() {
        let bucket = TokenBucket::new(10, 5, 0);
        assert_eq!(bucket.spend(3), 3);
        assert_eq!(bucket.spend(5), 2, "only the remaining burst");
        assert_eq!(bucket.spend(1), 0, "empty until time passes");
        // 250 ms at 10/s refills 2.5 tokens → 2 whole grants.
        bucket.refill(250_000_000);
        assert_eq!(bucket.spend(5), 2);
        // A huge gap clamps at the burst capacity.
        bucket.refill(3_600_000_000_000);
        assert_eq!(bucket.spend(100), 5);
    }

    #[test]
    fn admission_grants_prefixes_and_reports_kinds() {
        let registry = TenantRegistry::new(config(TenantQuotas {
            rate_limit: 4,
            burst: 4,
            max_inflight: 3,
            ..TenantQuotas::default()
        }));
        let mut view = registry.view();
        let handle = registry.tenant(&mut view, "acme");
        // In-flight cap cuts first: 3 of 5 admitted (the 4-token burst
        // covers all 3 granted, so the cap is the reported reason).
        let admission = registry.admit(&handle, 5);
        assert_eq!(admission.granted, 3);
        assert_eq!(admission.kind, Some(ThrottleKind::QuotaExceeded));
        handle.complete(admission.granted as u64);
        // Bucket now has 1 token left of its burst of 4.
        let admission = registry.admit(&handle, 2);
        assert_eq!(admission.granted, 1);
        assert_eq!(admission.kind, Some(ThrottleKind::Throttled));
        handle.complete(1);
        assert_eq!(handle.requests(), 4);
        assert_eq!(handle.throttled(), 3);
        assert_eq!(registry.stats().throttled, 3);
        assert_eq!(handle.inflight(), 0);
    }

    #[test]
    fn inflight_cap_refuses_with_quota_exceeded() {
        let registry = TenantRegistry::new(config(TenantQuotas {
            max_inflight: 2,
            ..TenantQuotas::default()
        }));
        let mut view = registry.view();
        let handle = registry.tenant(&mut view, "acme");
        let first = registry.admit(&handle, 2);
        assert_eq!(first.granted, 2);
        assert_eq!(first.kind, None);
        // Exactly at the limit: the next request is refused outright.
        let second = registry.admit(&handle, 1);
        assert_eq!(second.granted, 0);
        assert_eq!(second.kind, Some(ThrottleKind::QuotaExceeded));
        handle.complete(2);
        let third = registry.admit(&handle, 1);
        assert_eq!(third.granted, 1);
        assert_eq!(third.kind, None);
    }

    #[test]
    fn process_answers_refused_suffix_with_throttled_errors() {
        let registry = TenantRegistry::new(config(TenantQuotas {
            rate_limit: 1,
            burst: 2,
            ..TenantQuotas::default()
        }));
        let mut view = registry.view();
        let out = registry.process(
            &mut view,
            "acme",
            vec![
                equiv(1, "!Int.End!", "Dual (?Int.End?)"),
                equiv(2, "!Int.End!", "Dual (?Int.End?)"),
                equiv(3, "!Int.End!", "Dual (?Int.End?)"),
            ],
        );
        assert_eq!(out.len(), 3);
        assert!(matches!(
            out[0],
            Response::Equiv {
                id: 1,
                verdict: true,
                ..
            }
        ));
        assert!(matches!(
            out[1],
            Response::Equiv {
                id: 2,
                verdict: true,
                ..
            }
        ));
        assert!(matches!(
            &out[2],
            Response::Throttled {
                id: 3,
                kind: ThrottleKind::Throttled,
                ..
            }
        ));
    }

    #[test]
    fn tenants_are_isolated_and_resolution_is_lock_flat_when_stable() {
        let registry = TenantRegistry::new(TenantConfig::default());
        let mut view = registry.view();
        let reqs = || vec![equiv(1, "!Int.End!", "Dual (?Int.End?)")];
        registry.process(&mut view, "a", reqs());
        registry.process(&mut view, "b", reqs());
        // Distinct stores entirely.
        let a = registry.resolve(&mut view, "a").unwrap();
        let b = registry.resolve(&mut view, "b").unwrap();
        assert!(!Arc::ptr_eq(a.engine().store(), b.engine().store()));
        // Warm both, then replay: no registry locks, no store locks.
        for _ in 0..2 {
            registry.process(&mut view, "a", reqs());
            registry.process(&mut view, "b", reqs());
        }
        let locks_before = registry.lock_acquisitions();
        let store_locks_before: u64 = [&a, &b]
            .iter()
            .map(|h| h.engine().snapshot().store_locks)
            .sum();
        for _ in 0..50 {
            registry.process(&mut view, "a", reqs());
            registry.process(&mut view, "b", reqs());
        }
        assert_eq!(registry.lock_acquisitions(), locks_before);
        let store_locks_after: u64 = [&a, &b]
            .iter()
            .map(|h| h.engine().snapshot().store_locks)
            .sum();
        assert_eq!(store_locks_after, store_locks_before);
    }

    #[test]
    fn max_tenants_lru_evicts_the_coldest_and_counts_recreation() {
        let registry = TenantRegistry::new(TenantConfig {
            max_tenants: 2,
            ..TenantConfig::default()
        });
        let mut view = registry.view();
        let handle_a = registry.tenant(&mut view, "a");
        std::thread::sleep(Duration::from_millis(2));
        // Touch "a" after creating "b" so "b" is the LRU victim.
        let _b = registry.tenant(&mut view, "b");
        std::thread::sleep(Duration::from_millis(2));
        registry.admit(&handle_a, 1);
        let _c = registry.tenant(&mut view, "c");
        assert_eq!(registry.stats().tenants, 2);
        assert_eq!(registry.stats().evictions, 1);
        assert!(registry.resolve(&mut view, "b").is_none(), "b was coldest");
        assert!(registry.resolve(&mut view, "a").is_some());
        // "b" comes back cold and is counted as a recreation.
        let _b = registry.tenant(&mut view, "b");
        assert_eq!(registry.stats().recreations, 1);
    }

    #[test]
    fn idle_sweep_evicts_and_recreation_is_cold() {
        let registry = TenantRegistry::new(TenantConfig {
            idle_timeout: Some(Duration::from_millis(10)),
            ..TenantConfig::default()
        });
        let mut view = registry.view();
        let reqs = || vec![equiv(1, "!Int.End!", "Dual (?Int.End?)")];
        let out = registry.process(&mut view, "acme", reqs());
        assert!(matches!(out[0], Response::Equiv { warm: false, .. }));
        let warm = registry.process(&mut view, "acme", reqs());
        assert!(matches!(warm[0], Response::Equiv { warm: true, .. }));
        assert_eq!(registry.sweep_idle(), 0, "not idle yet");
        std::thread::sleep(Duration::from_millis(15));
        assert_eq!(registry.sweep_idle(), 1);
        assert_eq!(registry.stats().tenants, 0);
        assert!(registry.resolve(&mut view, "acme").is_none());
        // Back it comes — cold: fresh store, nothing warm.
        let out = registry.process(&mut view, "acme", reqs());
        assert!(matches!(out[0], Response::Equiv { warm: false, .. }));
        assert_eq!(registry.stats().evictions, 1);
        assert_eq!(registry.stats().recreations, 1);
    }

    #[test]
    fn tenants_fields_are_flat_and_name_sorted() {
        let registry = TenantRegistry::new(TenantConfig::default());
        let mut view = registry.view();
        registry.process(&mut view, "beta", vec![equiv(1, "End!", "End!")]);
        registry.process(&mut view, "alpha", vec![equiv(1, "End!", "End!")]);
        let fields = registry.tenants_fields();
        let keys: Vec<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys[0], "tenants");
        let alpha = keys
            .iter()
            .position(|k| k.starts_with("tenant_alpha_"))
            .unwrap();
        let beta = keys
            .iter()
            .position(|k| k.starts_with("tenant_beta_"))
            .unwrap();
        assert!(alpha < beta, "tenants listed in name order");
        assert!(keys.contains(&"tenant_alpha_store_bytes"));
        assert!(keys.contains(&"tenant_beta_requests"));
    }

    #[test]
    fn prometheus_series_carry_tenant_labels() {
        let registry = TenantRegistry::new(TenantConfig::default());
        let mut view = registry.view();
        registry.process(&mut view, "acme", vec![equiv(1, "End!", "End!")]);
        let text = registry.prometheus();
        assert!(
            text.contains("algst_tenant_requests_total{tenant=\"acme\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("# TYPE algst_tenant_store_bytes gauge"),
            "{text}"
        );
        assert!(
            text.contains("algst_tenant_store_bytes{tenant=\"acme\"} "),
            "{text}"
        );
        assert!(text.contains("algst_tenants 1"), "{text}");
    }

    #[test]
    fn sweeper_thread_evicts_idle_tenants_on_its_own() {
        let registry = TenantRegistry::with_sweeper(TenantConfig {
            idle_timeout: Some(Duration::from_millis(30)),
            ..TenantConfig::default()
        });
        let mut view = registry.view();
        registry.process(&mut view, "acme", vec![equiv(1, "End!", "End!")]);
        assert_eq!(registry.stats().tenants, 1);
        let deadline = Instant::now() + Duration::from_secs(5);
        while registry.stats().tenants > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(registry.stats().tenants, 0, "sweeper should have evicted");
        assert_eq!(registry.stats().evictions, 1);
    }
}
