//! The hash-consed store's equivalence hot path, cold vs. warm.
//!
//! * `cold_store` — fresh [`TypeStore`] per query: intern both sides,
//!   normalize, compare. First-contact cost, linear in the type size.
//! * `cold_tree` — the pre-store reference implementation: tree
//!   normalization (`nrm⁺`) plus α-comparison. Kept as the baseline the
//!   store's cold path is measured against.
//! * `warm` — steady state on a primed store: both sides already
//!   normalized, so a query is two memo lookups and a `TypeId`
//!   comparison. This must be flat across sizes — if it starts scaling
//!   with `n`, the memoization invariant broke.

use algst_core::normalize::nrm_pos;
use algst_core::store::TypeStore;
use algst_core::types::Type;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

/// A session spine of `n` messages wrapped in an even stack of `Dual`s,
/// paired with a conversion-variant partner — equivalent but not
/// syntactically equal, so normalization has real work to do cold.
fn pair(n: usize) -> (Type, Type) {
    let mut t = Type::input(Type::int(), Type::var("endvar"));
    for i in 0..n {
        let payload = match i % 3 {
            0 => Type::int(),
            1 => Type::neg(Type::bool()),
            _ => Type::proto("EIBench", vec![Type::neg(Type::neg(Type::char()))]),
        };
        t = if i % 2 == 0 {
            Type::output(payload, t)
        } else {
            Type::input(payload, t)
        };
    }
    let u = Type::dual(Type::dual(t.clone()));
    (t, u)
}

fn bench_equiv_interned(c: &mut Criterion) {
    for n in [16usize, 64, 256, 1024] {
        let (t, u) = pair(n);
        let nodes = t.node_count() + u.node_count();

        let mut group = c.benchmark_group("equiv_interned");
        group.sample_size(30);
        group.throughput(Throughput::Elements(nodes as u64));

        group.bench_with_input(BenchmarkId::new("cold_store", nodes), &(&t, &u), |b, _| {
            b.iter(|| {
                let mut s = TypeStore::new();
                let a = s.intern(black_box(&t));
                let bb = s.intern(black_box(&u));
                black_box(s.equivalent_ids(a, bb))
            })
        });

        group.bench_with_input(BenchmarkId::new("cold_tree", nodes), &(&t, &u), |b, _| {
            b.iter(|| black_box(nrm_pos(black_box(&t)).alpha_eq(&nrm_pos(black_box(&u)))))
        });

        // Prime once outside the timed region, then measure steady state.
        let mut warm_store = TypeStore::new();
        let a = warm_store.intern(&t);
        let bb = warm_store.intern(&u);
        assert!(warm_store.equivalent_ids(a, bb));
        group.bench_with_input(BenchmarkId::new("warm", nodes), &(a, bb), |bench, _| {
            bench.iter(|| black_box(warm_store.equivalent_ids(black_box(a), black_box(bb))))
        });

        group.finish();
    }
}

criterion_group!(benches, bench_equiv_interned);
criterion_main!(benches);
