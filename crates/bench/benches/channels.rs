//! Ablation for the paper's Section 5 channel implementation choices:
//! synchronous rendezvous (MVar-pair analogue, capacity 0) versus
//! asynchronous bounded queues (TBQueue analogue) — raw channel
//! throughput and full interpreter round trips.

use algst_check::check_source;
use algst_runtime::value::Value;
use algst_runtime::{channel_pair, Interp};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::thread;
use std::time::Duration;

const ROUNDS: usize = 1_000;

fn bench_raw_channels(c: &mut Criterion) {
    let mut group = c.benchmark_group("channels/raw_pingpong");
    group.sample_size(20);
    group.throughput(Throughput::Elements(ROUNDS as u64));
    for (name, capacity) in [("sync", 0usize), ("async64", 64)] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &capacity, |b, &cap| {
            b.iter(|| {
                let (a, z) = channel_pair(cap);
                let t = thread::spawn(move || {
                    for _ in 0..ROUNDS {
                        let v = z.recv_val().expect("peer alive");
                        z.send_val(v).expect("peer alive");
                    }
                });
                for i in 0..ROUNDS {
                    a.send_val(Value::Int(i as i64)).expect("peer alive");
                    black_box(a.recv_val().expect("peer alive"));
                }
                t.join().expect("echo thread");
            })
        });
    }
    group.finish();

    // One-way streaming: here buffering should show an advantage.
    let mut group = c.benchmark_group("channels/raw_stream");
    group.sample_size(20);
    group.throughput(Throughput::Elements(ROUNDS as u64));
    for (name, capacity) in [("sync", 0usize), ("async64", 64)] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &capacity, |b, &cap| {
            b.iter(|| {
                let (a, z) = channel_pair(cap);
                let t = thread::spawn(move || {
                    for _ in 0..ROUNDS {
                        black_box(z.recv_val().expect("peer alive"));
                    }
                });
                for i in 0..ROUNDS {
                    a.send_val(Value::Int(i as i64)).expect("peer alive");
                }
                t.join().expect("consumer thread");
            })
        });
    }
    group.finish();
}

/// Interpreter-level counter stream: `n` ints sent over a recursive
/// protocol, sync vs. async.
fn counter_module() -> algst_check::Module {
    check_source(
        r#"
protocol CountB = MoreB Int CountB | DoneB

produce : Int -> !CountB.End! -> Unit
produce n c =
  if n == 0 then select DoneB [End!] c |> terminate
  else select MoreB [End!] c |> sendInt [!CountB.End!] n |> produce (n - 1)

consume : ?CountB.End? -> Unit
consume c = match c with {
  MoreB c -> let (x, c) = receiveInt [?CountB.End?] c in consume c,
  DoneB c -> wait c }

main : Unit
main =
  let (p, q) = new [!CountB.End!] in
  let _ = fork (\u -> produce 200 p) in
  consume q
"#,
    )
    .expect("counter program type checks")
}

fn bench_interp_channels(c: &mut Criterion) {
    let module = counter_module();
    let mut group = c.benchmark_group("channels/interp_counter200");
    group.sample_size(10);
    for (name, capacity) in [("sync", 0usize), ("async16", 16)] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &capacity, |b, &cap| {
            b.iter(|| {
                let interp = Interp::with_capacity(&module, cap);
                interp
                    .run_timeout("main", Duration::from_secs(30))
                    .expect("run succeeds")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_raw_channels, bench_interp_channels);
criterion_main!(benches);
