//! Ablation for Appendix A.6 ("Efficiency of generic servers"): the
//! toolbox encoding of the arithmetic server (Either/Seq/Repeat, §2.3)
//! performs extra tagging compared to the hand-written server (§2.2).
//! We run both over the interpreter for a fixed number of requests and
//! also report the message counts that explain the gap.

use algst_check::{check_source, Module};
use algst_runtime::Interp;
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

const REQUESTS: i64 = 50;

/// Hand-written server: per request, 1 protocol tag + 2 sends + 1 receive.
fn direct_module() -> Module {
    check_source(&format!(
        r#"
protocol RepD = MoreD ArithD RepD | QuitD
protocol ArithD = AddD Int Int -Int

serveArith : forall (s:S). ?ArithD.s -> s
serveArith [s] c = match c with {{
  AddD c -> let (x, c) = receiveInt [?Int.!Int.s] c in
            let (y, c) = receiveInt [!Int.s] c in
            sendInt [s] (x + y) c }}

server : ?RepD.End? -> Unit
server c = match c with {{
  QuitD c -> wait c,
  MoreD c -> serveArith [?RepD.End?] c |> server }}

client : Int -> !RepD.End! -> Unit
client n c =
  if n == 0 then select QuitD [End!] c |> terminate
  else let c = select MoreD [End!] c in
       let c = select AddD [!RepD.End!] c in
       let c = sendInt [!Int.?Int.!RepD.End!] n c in
       let c = sendInt [?Int.!RepD.End!] 1 c in
       let (r, c) = receiveInt [!RepD.End!] c in
       client (n - 1) c

main : Unit
main =
  let (p, q) = new [!RepD.End!] in
  let _ = fork (\u -> server q) in
  client {REQUESTS} p
"#
    ))
    .expect("direct program type checks")
}

/// Toolbox encoding (§2.3): Arith = Either Neg Add over Seq pairs — extra
/// Seq/Either tags per request.
fn toolbox_module() -> Module {
    check_source(&format!(
        r#"
protocol Seq2 a b = SeqT a b
protocol Either2 a b = LeftT a | RightT b
protocol Rep2 a = MoreT a (Rep2 a) | QuitT

type NegT = Seq2 Int -Int
type AddT = Seq2 Int (Seq2 Int -Int)
type ArithT = Either2 NegT AddT
type Service a = forall (s:S). ?a.s -> s

serveNeg : Service NegT
serveNeg [s] c = match c with {{
  SeqT c -> let (x, c) = receiveInt [!Int.s] c in
            sendInt [s] (0 - x) c }}

serveAdd : Service AddT
serveAdd [s] c = match c with {{
  SeqT c -> let (x, c) = receiveInt [?Seq2 Int -Int.s] c in
            match c with {{
              SeqT c -> let (y, c) = receiveInt [!Int.s] c in
                        sendInt [s] (x + y) c }}}}

serveArith : Service ArithT
serveArith [s] c = match c with {{
  LeftT c -> serveNeg [s] c,
  RightT c -> serveAdd [s] c }}

server : ?Rep2 ArithT.End? -> Unit
server c = match c with {{
  QuitT c -> wait c,
  MoreT c -> serveArith [?Rep2 ArithT.End?] c |> server }}

client : Int -> !Rep2 ArithT.End! -> Unit
client n c =
  if n == 0 then select QuitT [ArithT, End!] c |> terminate
  else let c = select MoreT [ArithT, End!] c in
       let c = select RightT [NegT, AddT, !Rep2 ArithT.End!] c in
       let c = select SeqT [Int, Seq2 Int -Int, !Rep2 ArithT.End!] c in
       let c = sendInt [!Seq2 Int -Int.!Rep2 ArithT.End!] n c in
       let c = select SeqT [Int, -Int, !Rep2 ArithT.End!] c in
       let c = sendInt [?Int.!Rep2 ArithT.End!] 1 c in
       let (r, c) = receiveInt [!Rep2 ArithT.End!] c in
       client (n - 1) c

main : Unit
main =
  let (p, q) = new [!Rep2 ArithT.End!] in
  let _ = fork (\u -> server q) in
  client {REQUESTS} p
"#
    ))
    .expect("toolbox program type checks")
}

fn run_and_count(module: &Module) -> (u64, u64) {
    let interp = Interp::new(module);
    interp
        .run_timeout("main", Duration::from_secs(30))
        .expect("run succeeds");
    let stats = interp.stats();
    (
        stats.messages(),
        stats.tags_sent.load(std::sync::atomic::Ordering::Relaxed),
    )
}

fn bench_server_overhead(c: &mut Criterion) {
    let direct = direct_module();
    let toolbox = toolbox_module();

    // Report message counts once — the structural result of App. A.6.
    let (dm, dt) = run_and_count(&direct);
    let (tm, tt) = run_and_count(&toolbox);
    eprintln!("server_overhead: direct   = {dm} messages ({dt} tags) for {REQUESTS} requests");
    eprintln!("server_overhead: toolbox  = {tm} messages ({tt} tags) for {REQUESTS} requests");
    assert!(
        tt > dt,
        "toolbox encoding must send strictly more tags than the direct server"
    );

    let mut group = c.benchmark_group("server_overhead");
    group.sample_size(10);
    group.bench_function("direct", |b| {
        b.iter(|| {
            let interp = Interp::new(&direct);
            interp
                .run_timeout("main", Duration::from_secs(30))
                .expect("run succeeds")
        })
    });
    group.bench_function("toolbox", |b| {
        b.iter(|| {
            let interp = Interp::new(&toolbox);
            interp
                .run_timeout("main", Duration::from_secs(30))
                .expect("run succeeds")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_server_overhead);
criterion_main!(benches);
