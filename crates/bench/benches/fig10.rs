//! Criterion companion to the `fig10` harness: AlgST vs. FreeST type
//! equivalence at fixed instance sizes (one group per size), on both the
//! equivalent and non-equivalent suites.
//!
//! The full, paper-shaped sweep with per-query timeouts lives in the
//! `fig10` binary; this bench gives statistically robust point samples
//! at sizes where FreeST still terminates.

use algst_core::store::TypeStore;
use algst_core::Session;
use algst_gen::generate::{generate_instance, GenConfig};
use algst_gen::instance::TestCase;
use algst_gen::mutate::{equivalent_variant, nonequivalent_mutant};
use algst_gen::to_grammar::to_grammar;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use freest::{bisimilar, BisimResult, Grammar};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn case_of_size(size: usize, equivalent_pair: bool, seed: u64) -> TestCase {
    let mut rng = StdRng::seed_from_u64(seed);
    // Point samples without the exponential-norm family — the timeout
    // behaviour is exercised by the `fig10` harness binary; Criterion
    // needs cases that terminate.
    let mut cfg = GenConfig::sized(size);
    cfg.deep_norms = 0.0;
    let instance = generate_instance(&mut rng, &cfg);
    let other = if equivalent_pair {
        equivalent_variant(
            &mut rng,
            &instance.decls,
            &instance.ty,
            algst_core::kind::Kind::Value,
            10,
        )
    } else {
        let m = nonequivalent_mutant(&mut rng, &instance.ty).expect("mutable");
        equivalent_variant(
            &mut rng,
            &instance.decls,
            &m,
            algst_core::kind::Kind::Value,
            6,
        )
    };
    TestCase {
        instance,
        other,
        equivalent: equivalent_pair,
    }
}

fn bench_fig10(c: &mut Criterion) {
    for (suite, is_eq) in [("equivalent", true), ("nonequivalent", false)] {
        let mut group = c.benchmark_group(format!("fig10/{suite}"));
        group.sample_size(20);
        for size in [10usize, 25, 45, 70, 100] {
            let case = case_of_size(size, is_eq, 40 + size as u64);
            let nodes = case.node_count();

            // Explicitly *cold*: a fresh store per query, so this stays
            // a first-contact measurement now that `equivalent()`
            // memoizes through the shared store. The warm (amortized)
            // path is benchmarked in `equiv_interned`.
            group.bench_with_input(BenchmarkId::new("algst", nodes), &case, |b, case| {
                b.iter(|| {
                    let mut store = TypeStore::new();
                    let a = store.intern(black_box(&case.instance.ty));
                    let bb = store.intern(black_box(&case.other));
                    black_box(store.equivalent_ids(a, bb))
                })
            });

            // Guard FreeST with a budget so a pathological case cannot
            // stall the whole bench run; budget exhaustion would show up
            // as suspiciously fast, so only bench decided cases.
            let budget: u64 = 30_000_000;
            let decided = {
                let mut s = Session::new();
                let mut g = Grammar::new();
                let w1 = to_grammar(&mut s, &case.instance.decls, &case.instance.ty, &mut g)
                    .expect("translatable");
                let w2 = to_grammar(&mut s, &case.instance.decls, &case.other, &mut g)
                    .expect("translatable");
                bisimilar(&mut g, &w1, &w2, budget) != BisimResult::Budget
            };
            if decided {
                // One session for all iterations: payload normalization
                // stays warm, matching how suite translation behaves.
                let mut s = Session::new();
                group.bench_with_input(BenchmarkId::new("freest", nodes), &case, |b, case| {
                    b.iter(|| {
                        let mut g = Grammar::new();
                        let w1 =
                            to_grammar(&mut s, &case.instance.decls, &case.instance.ty, &mut g)
                                .expect("translatable");
                        let w2 = to_grammar(&mut s, &case.instance.decls, &case.other, &mut g)
                            .expect("translatable");
                        black_box(bisimilar(&mut g, &w1, &w2, budget))
                    })
                });
            }
        }
        group.finish();
    }
}

criterion_group!(benches, bench_fig10);
criterion_main!(benches);
