//! Ablation for Theorem 3: AlgST normalization + α-comparison must scale
//! linearly in the number of nodes. We measure `nrm⁺` on synthetic types
//! at geometrically growing sizes and across the constructs normalization
//! treats specially (deep `Dual` nesting, negation chains, wide protocol
//! arguments).

use algst_core::normalize::nrm_pos;
use algst_core::types::Type;
use algst_core::Session;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

/// A session spine of `n` messages with alternating payloads and a Dual
/// wrapper every 8 messages — exercises all normalization paths.
fn spine(n: usize) -> Type {
    let mut t = Type::EndOut;
    for i in 0..n {
        let payload = match i % 4 {
            0 => Type::int(),
            1 => Type::neg(Type::bool()),
            2 => Type::proto("NBench", vec![Type::neg(Type::neg(Type::char()))]),
            _ => Type::pair(Type::char(), Type::EndOut),
        };
        t = if i % 2 == 0 {
            Type::input(payload, t)
        } else {
            Type::output(payload, t)
        };
        if i % 8 == 7 {
            t = Type::dual(t);
        }
    }
    t
}

/// `Dual (Dual (… S))` — n wrappers.
fn dual_tower(n: usize) -> Type {
    let mut t = Type::input(Type::int(), Type::var("s"));
    for _ in 0..n {
        t = Type::dual(t);
    }
    t
}

/// `-(-(-… Int))` — n negations in a protocol argument.
fn neg_tower(n: usize) -> Type {
    let mut t = Type::int();
    for _ in 0..n {
        t = Type::neg(t);
    }
    Type::proto("NBench", vec![t])
}

fn bench_normalization(c: &mut Criterion) {
    let mut group = c.benchmark_group("normalization/spine");
    group.sample_size(30);
    for n in [64usize, 256, 1024, 4096] {
        let t = spine(n);
        group.throughput(Throughput::Elements(t.node_count() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(t.node_count()), &t, |b, t| {
            b.iter(|| black_box(nrm_pos(black_box(t))))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("normalization/dual_tower");
    group.sample_size(30);
    for n in [64usize, 512, 4096] {
        let t = dual_tower(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &t, |b, t| {
            b.iter(|| black_box(nrm_pos(black_box(t))))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("normalization/neg_tower");
    group.sample_size(30);
    for n in [64usize, 512, 4096] {
        let t = neg_tower(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &t, |b, t| {
            b.iter(|| black_box(nrm_pos(black_box(t))))
        });
    }
    group.finish();

    // Full equivalence query (normalize both + α-compare).
    let mut group = c.benchmark_group("equivalence/spine");
    group.sample_size(30);
    for n in [64usize, 256, 1024, 4096] {
        let t = spine(n);
        let u = Type::dual(Type::dual(spine(n)));
        group.throughput(Throughput::Elements(
            (t.node_count() + u.node_count()) as u64,
        ));
        let mut session = Session::new();
        group.bench_with_input(
            BenchmarkId::from_parameter(t.node_count()),
            &(t, u),
            |b, (t, u)| b.iter(|| black_box(session.equivalent(black_box(t), black_box(u)))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_normalization);
criterion_main!(benches);
