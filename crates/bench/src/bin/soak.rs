//! Soak/endurance harness for the bounded-memory store: proves the
//! serving stack holds a **fixed memory footprint under adversarial
//! churn** (ISSUE 9), not just on warm replay.
//!
//! ```text
//! cargo run --release -p algst-bench --bin soak -- \
//!     [--requests 2000000] [--window 50000] [--warmup-windows 3] \
//!     [--cases 24] [--tenants 4] [--fresh-permille 400] [--seed 1] \
//!     [--workers 4] [--batch 256] \
//!     [--max-store-bytes 33554432] [--compact-interval 0] \
//!     [--shadow-requests 100000] [--json SOAK_report.json]
//! ```
//!
//! **Endurance phase**: a `cold_heavy_workload` over `--tenants`
//! independently-seeded suite pairs (tenant diversity) with
//! `--fresh-permille` of requests querying never-seen-before pairs
//! (fresh-type churn) replays through one engine with compaction
//! enabled. Every verdict is checked against the generator's ground
//! truth. After each `--window` requests the harness samples the
//! process RSS (`/proc/self/status` `VmRSS`), the store's live bytes,
//! and the compaction counters. The run **fails** when:
//!
//! * any verdict mismatches ground truth;
//! * no compaction ever ran (the churn must actually trip the bound);
//! * a post-warmup sample's store bytes exceed the fixed bound
//!   `2 × --max-store-bytes` (the factor absorbs the per-batch
//!   overshoot between trigger checks — the trigger is tested after
//!   each batch publish, so the store can briefly exceed the bound by
//!   what one round of batches interns);
//! * post-warmup store bytes grow **monotonically** — every window
//!   strictly above the last means compaction is not reclaiming;
//! * post-warmup RSS grows monotonically (same signal, process-level).
//!
//! **Shadow phase**: the same differently-seeded stream replays through
//! two fresh engines — one compacting aggressively, one unbounded
//! (compaction off) — and every verdict pair must agree (**0
//! mismatches**): bounding memory must be invisible to answers.
//!
//! The JSON report records the per-window samples, both phases'
//! verdicts, and the pass/fail reasons, so CI can archive one artifact
//! per run.

use algst_core::Session;
use algst_gen::suite::Suite;
use algst_gen::workload::{cold_heavy_workload, tenant_suites, Workload};
use algst_server::engine::BatchReply;
use algst_server::{Engine, Op, Request, Response};
use crossbeam::channel::bounded;
use std::io::Write as _;

struct Args {
    requests: usize,
    window: usize,
    warmup_windows: usize,
    cases: usize,
    tenants: usize,
    fresh_permille: u32,
    seed: u64,
    workers: usize,
    batch: usize,
    max_store_bytes: u64,
    compact_interval: u64,
    shadow_requests: usize,
    json_path: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        requests: 2_000_000,
        window: 50_000,
        warmup_windows: 3,
        cases: 24,
        tenants: 4,
        fresh_permille: 400,
        seed: 1,
        workers: 4,
        batch: 256,
        max_store_bytes: 32 << 20,
        compact_interval: 0,
        shadow_requests: 100_000,
        json_path: Some("SOAK_report.json".to_owned()),
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let value = |i: &mut usize| -> String {
            *i += 1;
            argv.get(*i)
                .unwrap_or_else(|| {
                    eprintln!("missing value for {}", argv[*i - 1]);
                    std::process::exit(2);
                })
                .clone()
        };
        match argv[i].as_str() {
            "--requests" => args.requests = value(&mut i).parse().expect("--requests number"),
            "--window" => args.window = value(&mut i).parse().expect("--window number"),
            "--warmup-windows" => {
                args.warmup_windows = value(&mut i).parse().expect("--warmup-windows number")
            }
            "--cases" => args.cases = value(&mut i).parse().expect("--cases number"),
            "--tenants" => args.tenants = value(&mut i).parse().expect("--tenants number"),
            "--fresh-permille" => {
                args.fresh_permille = value(&mut i).parse().expect("--fresh-permille number");
                assert!(args.fresh_permille <= 1000, "--fresh-permille is ‰");
            }
            "--seed" => args.seed = value(&mut i).parse().expect("--seed number"),
            "--workers" => args.workers = value(&mut i).parse().expect("--workers number"),
            "--batch" => args.batch = value(&mut i).parse().expect("--batch number"),
            "--max-store-bytes" => {
                args.max_store_bytes = value(&mut i).parse().expect("--max-store-bytes number")
            }
            "--compact-interval" => {
                args.compact_interval = value(&mut i).parse().expect("--compact-interval number")
            }
            "--shadow-requests" => {
                args.shadow_requests = value(&mut i).parse().expect("--shadow-requests number")
            }
            "--json" => args.json_path = Some(value(&mut i)),
            "--no-json" => args.json_path = None,
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    assert!(args.window >= args.batch, "--window must cover one batch");
    assert!(args.tenants >= 1, "--tenants must be at least 1");
    args
}

/// Resident set size in KiB from `/proc/self/status`; 0 where absent
/// (non-Linux), which disables the RSS checks but not the store ones.
fn rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmRSS:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or(0)
}

/// One per-window sample of the endurance run.
struct Window {
    index: usize,
    requests_done: usize,
    store_bytes: u64,
    store_nodes: u64,
    store_epoch: u64,
    compactions: u64,
    reclaimed_bytes: u64,
    rss_kb: u64,
    mismatches: u64,
}

/// The churn workload: `tenants` independently-seeded suite pairs
/// (each its own protocol universe, via the shared
/// `workload::tenant_suites` generator) under one fresh-pair sampler.
fn churn_workload(args: &Args, requests: usize, seed: u64) -> Workload {
    let universes = tenant_suites(args.tenants, args.cases, seed);
    let refs: Vec<&Suite> = universes.iter().flatten().collect();
    cold_heavy_workload(&refs, requests, args.fresh_permille, seed)
}

/// Replays `range` of `workload` through `engine` in batches, checking
/// verdicts against ground truth; returns (mismatches, verdicts by
/// in-range request index) — the verdict vector feeds the shadow diff.
fn replay(
    engine: &Engine,
    workload: &Workload,
    range: std::ops::Range<usize>,
    batch: usize,
    first_id: u64,
    collect_verdicts: bool,
) -> (u64, Vec<bool>) {
    let len = range.len();
    let n_batches = len.div_ceil(batch.max(1));
    let (reply_tx, reply_rx) = bounded::<BatchReply>(n_batches.max(1));
    let expected: Vec<bool> = range.clone().map(|i| workload.request(i).2).collect();
    let mut next_id = first_id;
    for chunk_start in (0..len).step_by(batch) {
        let chunk_end = (chunk_start + batch).min(len);
        let items: Vec<Request> = (chunk_start..chunk_end)
            .map(|j| {
                let (lhs, rhs, _) = workload.request(range.start + j);
                let req = Request {
                    id: next_id,
                    op: Op::Equiv {
                        lhs: lhs.to_string(),
                        rhs: rhs.to_string(),
                    },
                };
                next_id += 1;
                req
            })
            .collect();
        engine.submit(next_id, items, reply_tx.clone());
    }
    drop(reply_tx);
    let mut mismatches = 0u64;
    let mut verdicts = vec![false; if collect_verdicts { len } else { 0 }];
    while let Ok((_, responses)) = reply_rx.recv() {
        for r in &responses {
            match r {
                Response::Equiv { id, verdict, .. } => {
                    let j = (*id - first_id) as usize;
                    if *verdict != expected[j] {
                        mismatches += 1;
                    }
                    if collect_verdicts {
                        verdicts[j] = *verdict;
                    }
                }
                other => panic!("unexpected response {other:?}"),
            }
        }
    }
    (mismatches, verdicts)
}

fn main() {
    let args = parse_args();
    let windows_total = args.requests.div_ceil(args.window.max(1));
    assert!(
        args.warmup_windows < windows_total,
        "--warmup-windows must leave post-warmup windows to judge"
    );
    eprintln!(
        "soak: {} requests in {} windows of {} ({} tenants × 2×{} cases, {}‰ fresh, seed {})",
        args.requests,
        windows_total,
        args.window,
        args.tenants,
        args.cases,
        args.fresh_permille,
        args.seed
    );
    eprintln!(
        "compaction: max-store-bytes {} interval {}",
        args.max_store_bytes, args.compact_interval
    );
    let workload = churn_workload(&args, args.requests, args.seed);

    // ------------------------------------------------ endurance phase
    let engine = Engine::with_session(args.workers, Session::new());
    engine.set_compaction(args.max_store_bytes, args.compact_interval);
    let mut windows: Vec<Window> = Vec::with_capacity(windows_total);
    let mut next_id = 1u64;
    let mut mismatches_total = 0u64;
    for w in 0..windows_total {
        let start = w * args.window;
        let end = ((w + 1) * args.window).min(args.requests);
        let (mismatches, _) = replay(&engine, &workload, start..end, args.batch, next_id, false);
        next_id += (end - start) as u64;
        mismatches_total += mismatches;
        let snap = engine.snapshot();
        let sample = Window {
            index: w,
            requests_done: end,
            store_bytes: snap.store_bytes,
            store_nodes: snap.nodes,
            store_epoch: snap.store_epoch,
            compactions: snap.compactions,
            reclaimed_bytes: snap.reclaimed_bytes,
            rss_kb: rss_kb(),
            mismatches,
        };
        eprintln!(
            "window {:>3}/{}: store {:>12} B  nodes {:>9}  epoch {:>4}  \
             compactions {:>4}  reclaimed {:>12} B  rss {:>9} KiB  mismatches {}",
            w + 1,
            windows_total,
            sample.store_bytes,
            sample.store_nodes,
            sample.store_epoch,
            sample.compactions,
            sample.reclaimed_bytes,
            sample.rss_kb,
            sample.mismatches,
        );
        windows.push(sample);
    }
    let final_snap = engine.snapshot();
    engine.shutdown();

    // Post-warmup judgments. `strictly_monotone` needs at least two
    // post-warmup samples to mean anything; the arg check above
    // guarantees one, short runs simply skip that check.
    let post = &windows[args.warmup_windows..];
    let bound = 2 * args.max_store_bytes;
    let over_bound: Vec<usize> = post
        .iter()
        .filter(|s| s.store_bytes > bound)
        .map(|s| s.index)
        .collect();
    let strictly_monotone = |f: &dyn Fn(&Window) -> u64| -> bool {
        post.len() >= 2 && post.windows(2).all(|p| f(&p[1]) > f(&p[0]))
    };
    let store_monotone = strictly_monotone(&|s| s.store_bytes);
    let rss_monotone = post.iter().all(|s| s.rss_kb > 0) && strictly_monotone(&|s| s.rss_kb);
    let compacted = final_snap.compactions >= 1;

    // --------------------------------------------------- shadow phase
    // A differently-seeded stream through a bounded and an unbounded
    // engine; answers must be indistinguishable.
    eprintln!(
        "shadow: {} requests, bounded vs unbounded reference…",
        args.shadow_requests
    );
    let shadow = churn_workload(&args, args.shadow_requests, args.seed + 7919);
    let bounded_engine = Engine::with_session(args.workers, Session::new());
    bounded_engine.set_compaction(args.max_store_bytes / 4, args.compact_interval);
    let (shadow_bounded_misses, shadow_verdicts) = replay(
        &bounded_engine,
        &shadow,
        0..shadow.len(),
        args.batch,
        1,
        true,
    );
    let shadow_compactions = bounded_engine.snapshot().compactions;
    bounded_engine.shutdown();
    let reference = Engine::with_session(args.workers, Session::new());
    let (shadow_reference_misses, reference_verdicts) =
        replay(&reference, &shadow, 0..shadow.len(), args.batch, 1, true);
    reference.shutdown();
    let shadow_diffs = shadow_verdicts
        .iter()
        .zip(&reference_verdicts)
        .filter(|(a, b)| a != b)
        .count() as u64;

    // ------------------------------------------------------- verdict
    let mut failures: Vec<String> = Vec::new();
    if mismatches_total > 0 {
        failures.push(format!(
            "{mismatches_total} endurance verdicts mismatched ground truth"
        ));
    }
    if !compacted {
        failures.push("no compaction ran — churn never tripped the bound".to_owned());
    }
    if !over_bound.is_empty() {
        failures.push(format!(
            "store bytes exceeded the fixed bound {bound} in post-warmup windows {over_bound:?}"
        ));
    }
    if store_monotone {
        failures.push("post-warmup store bytes grew monotonically".to_owned());
    }
    if rss_monotone {
        failures.push("post-warmup RSS grew monotonically".to_owned());
    }
    if shadow_bounded_misses > 0 || shadow_reference_misses > 0 {
        failures.push(format!(
            "shadow verdicts mismatched ground truth (bounded {shadow_bounded_misses}, \
             reference {shadow_reference_misses})"
        ));
    }
    if shadow_diffs > 0 {
        failures.push(format!(
            "{shadow_diffs} shadow verdicts differ between bounded and unbounded engines"
        ));
    }

    if let Some(path) = &args.json_path {
        write_report(
            path,
            &args,
            &windows,
            &final_snap,
            bound,
            store_monotone,
            rss_monotone,
            shadow_compactions,
            shadow_diffs,
            &failures,
        );
    }

    if failures.is_empty() {
        eprintln!(
            "soak PASS: {} requests, {} compactions, {} B reclaimed, 0 mismatches, \
             shadow agrees on {} requests",
            args.requests,
            final_snap.compactions,
            final_snap.reclaimed_bytes,
            shadow.len()
        );
    } else {
        for f in &failures {
            eprintln!("soak FAIL: {f}");
        }
        std::process::exit(1);
    }
}

#[allow(clippy::too_many_arguments)]
fn write_report(
    path: &str,
    args: &Args,
    windows: &[Window],
    final_snap: &algst_server::Snapshot,
    bound: u64,
    store_monotone: bool,
    rss_monotone: bool,
    shadow_compactions: u64,
    shadow_diffs: u64,
    failures: &[String],
) {
    let mut f = std::fs::File::create(path).expect("create report");
    writeln!(f, "{{").expect("write");
    writeln!(f, "  \"bench\": \"soak\",").expect("write");
    writeln!(f, "  \"requests\": {},", args.requests).expect("write");
    writeln!(f, "  \"window\": {},", args.window).expect("write");
    writeln!(f, "  \"warmup_windows\": {},", args.warmup_windows).expect("write");
    writeln!(f, "  \"tenants\": {},", args.tenants).expect("write");
    writeln!(f, "  \"cases_per_suite\": {},", args.cases).expect("write");
    writeln!(f, "  \"fresh_permille\": {},", args.fresh_permille).expect("write");
    writeln!(f, "  \"seed\": {},", args.seed).expect("write");
    writeln!(f, "  \"workers\": {},", args.workers).expect("write");
    writeln!(f, "  \"batch\": {},", args.batch).expect("write");
    writeln!(f, "  \"max_store_bytes\": {},", args.max_store_bytes).expect("write");
    writeln!(f, "  \"compact_interval\": {},", args.compact_interval).expect("write");
    writeln!(f, "  \"store_bytes_bound\": {bound},").expect("write");
    writeln!(f, "  \"windows\": [").expect("write");
    for (i, w) in windows.iter().enumerate() {
        let comma = if i + 1 < windows.len() { "," } else { "" };
        writeln!(
            f,
            "    {{\"window\": {}, \"requests_done\": {}, \"store_bytes\": {}, \
             \"store_nodes\": {}, \"store_epoch\": {}, \"compactions\": {}, \
             \"reclaimed_bytes\": {}, \"rss_kb\": {}, \"mismatches\": {}}}{comma}",
            w.index,
            w.requests_done,
            w.store_bytes,
            w.store_nodes,
            w.store_epoch,
            w.compactions,
            w.reclaimed_bytes,
            w.rss_kb,
            w.mismatches,
        )
        .expect("write");
    }
    writeln!(f, "  ],").expect("write");
    writeln!(f, "  \"compactions\": {},", final_snap.compactions).expect("write");
    writeln!(f, "  \"reclaimed_bytes\": {},", final_snap.reclaimed_bytes).expect("write");
    writeln!(f, "  \"store_epoch\": {},", final_snap.store_epoch).expect("write");
    writeln!(f, "  \"post_warmup_store_monotone\": {store_monotone},").expect("write");
    writeln!(f, "  \"post_warmup_rss_monotone\": {rss_monotone},").expect("write");
    writeln!(f, "  \"shadow\": {{").expect("write");
    writeln!(f, "    \"requests\": {},", args.shadow_requests).expect("write");
    writeln!(f, "    \"bounded_compactions\": {shadow_compactions},").expect("write");
    writeln!(f, "    \"verdict_diffs\": {shadow_diffs}").expect("write");
    writeln!(f, "  }},").expect("write");
    writeln!(f, "  \"failures\": [").expect("write");
    for (i, msg) in failures.iter().enumerate() {
        let comma = if i + 1 < failures.len() { "," } else { "" };
        writeln!(f, "    \"{}\"{comma}", msg.replace('"', "'")).expect("write");
    }
    writeln!(f, "  ],").expect("write");
    writeln!(f, "  \"pass\": {}", failures.is_empty()).expect("write");
    writeln!(f, "}}").expect("write");
    eprintln!("wrote {path}");
}
