//! Regenerates the paper's **Figure 10**: execution time of the AlgST and
//! FreeST type-equivalence algorithms on generated equivalent (10a) and
//! non-equivalent (10b) test cases, as a function of AlgST AST node count.
//!
//! ```text
//! cargo run --release -p algst-bench --bin fig10 -- \
//!     [--suite equivalent|nonequivalent|both] [--cases 324] \
//!     [--timeout-ms 2000] [--seed 1] [--csv-dir target] \
//!     [--json BENCH_fig10.json]
//! ```
//!
//! Prints a binned summary per suite (median times, timeout counts),
//! writes one CSV row per test case for plotting, and emits a
//! `BENCH_fig10.json` with every per-case AlgST vs. FreeST timing — the
//! record later performance PRs are measured against. (`--count` is
//! accepted as an alias of `--cases`.)

use algst_bench::{measure_case, ms, Measurement};
use algst_gen::suite::{build_suite, SuiteKind, PAPER_SUITE_SIZE};
use std::io::Write;
use std::time::Duration;

struct Args {
    suites: Vec<SuiteKind>,
    count: usize,
    timeout: Duration,
    seed: u64,
    csv_dir: Option<String>,
    json_path: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        suites: vec![SuiteKind::Equivalent, SuiteKind::NonEquivalent],
        count: PAPER_SUITE_SIZE,
        timeout: Duration::from_millis(2000),
        seed: 1,
        csv_dir: Some("target".to_owned()),
        json_path: Some("BENCH_fig10.json".to_owned()),
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let value = |i: &mut usize| -> String {
            *i += 1;
            argv.get(*i)
                .unwrap_or_else(|| {
                    eprintln!("missing value for {}", argv[*i - 1]);
                    std::process::exit(2);
                })
                .clone()
        };
        match argv[i].as_str() {
            "--suite" => {
                args.suites = match value(&mut i).as_str() {
                    "equivalent" => vec![SuiteKind::Equivalent],
                    "nonequivalent" => vec![SuiteKind::NonEquivalent],
                    "both" => vec![SuiteKind::Equivalent, SuiteKind::NonEquivalent],
                    other => {
                        eprintln!("unknown suite {other}");
                        std::process::exit(2);
                    }
                }
            }
            "--cases" | "--count" => {
                args.count = value(&mut i).parse().expect("--cases takes a number")
            }
            "--timeout-ms" => {
                args.timeout =
                    Duration::from_millis(value(&mut i).parse().expect("--timeout-ms number"))
            }
            "--seed" => args.seed = value(&mut i).parse().expect("--seed takes a number"),
            "--csv-dir" => args.csv_dir = Some(value(&mut i)),
            "--no-csv" => args.csv_dir = None,
            "--json" => args.json_path = Some(value(&mut i)),
            "--no-json" => args.json_path = None,
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    args
}

fn main() {
    let args = parse_args();
    let mut suites: Vec<(SuiteKind, Vec<Measurement>)> = Vec::new();
    for kind in &args.suites {
        suites.push((*kind, run_suite(*kind, &args)));
    }
    if let Some(path) = &args.json_path {
        write_json(path, &args, &suites);
    }
}

/// Writes the whole run as one JSON document: run parameters plus one row
/// per case with both checkers' timings. Hand-rolled (every value is a
/// number, bool or known-safe string), so no serde dependency is needed.
fn write_json(path: &str, args: &Args, suites: &[(SuiteKind, Vec<Measurement>)]) {
    let mut f = std::fs::File::create(path).expect("create json");
    let total: usize = suites.iter().map(|(_, rows)| rows.len()).sum();
    writeln!(f, "{{").expect("write");
    writeln!(f, "  \"bench\": \"fig10\",").expect("write");
    writeln!(f, "  \"seed\": {},", args.seed).expect("write");
    writeln!(f, "  \"freest_timeout_ms\": {},", args.timeout.as_millis()).expect("write");
    writeln!(f, "  \"cases\": {total},").expect("write");
    writeln!(f, "  \"rows\": [").expect("write");
    let mut first = true;
    for (kind, rows) in suites {
        let suite = match kind {
            SuiteKind::Equivalent => "equivalent",
            SuiteKind::NonEquivalent => "nonequivalent",
        };
        for r in rows {
            if !first {
                writeln!(f, ",").expect("write");
            }
            first = false;
            let freest_ms = match r.freest {
                Some(d) => format!("{:.6}", ms(d)),
                None => "null".to_owned(),
            };
            write!(
                f,
                "    {{\"suite\": \"{suite}\", \"case\": {}, \"nodes\": {}, \
                 \"algst_ms\": {:.6}, \"freest_ms\": {freest_ms}, \
                 \"freest_timeout\": {}, \"agreed\": {}}}",
                r.case_id,
                r.nodes,
                ms(r.algst),
                r.freest.is_none(),
                r.agreed,
            )
            .expect("write");
        }
    }
    writeln!(f, "\n  ]").expect("write");
    writeln!(f, "}}").expect("write");
    eprintln!("wrote {path}");
}

fn run_suite(kind: SuiteKind, args: &Args) -> Vec<Measurement> {
    let (title, figure, csv_name) = match kind {
        SuiteKind::Equivalent => ("equivalent test cases", "Figure 10(a)", "fig10a.csv"),
        SuiteKind::NonEquivalent => ("non-equivalent test cases", "Figure 10(b)", "fig10b.csv"),
    };
    eprintln!(
        "building {} suite: {} cases (seed {})…",
        title, args.count, args.seed
    );
    let suite = build_suite(kind, args.count, args.seed);

    let mut rows: Vec<Measurement> = Vec::with_capacity(suite.cases.len());
    for (i, case) in suite.cases.iter().enumerate() {
        let m = measure_case(i, case, args.timeout);
        if !m.agreed {
            eprintln!("!! case {i}: verdict disagreement (see EXPERIMENTS.md)");
        }
        rows.push(m);
        if (i + 1) % 50 == 0 {
            eprintln!("  …{}/{}", i + 1, suite.cases.len());
        }
    }

    println!("\n== {figure}: {title} ==");
    println!(
        "{} cases; per-query FreeST timeout {} ms (paper: 120000 ms)",
        rows.len(),
        args.timeout.as_millis()
    );
    println!(
        "{:>12} | {:>6} | {:>14} | {:>14} | {:>9}",
        "nodes", "cases", "AlgST med (ms)", "FreeST med (ms)", "timeouts"
    );
    println!("{}", "-".repeat(68));
    let max_nodes = rows.iter().map(|r| r.nodes).max().unwrap_or(1);
    let bin_width = (max_nodes / 8).max(1);
    let mut bin_start = 0;
    while bin_start <= max_nodes {
        let bin: Vec<&Measurement> = rows
            .iter()
            .filter(|r| r.nodes >= bin_start && r.nodes < bin_start + bin_width)
            .collect();
        if !bin.is_empty() {
            let mut algst: Vec<f64> = bin.iter().map(|r| ms(r.algst)).collect();
            algst.sort_by(|a, b| a.total_cmp(b));
            let mut freest: Vec<f64> = bin.iter().filter_map(|r| r.freest.map(ms)).collect();
            freest.sort_by(|a, b| a.total_cmp(b));
            let timeouts = bin.iter().filter(|r| r.freest.is_none()).count();
            println!(
                "{:>5}-{:<6} | {:>6} | {:>14.4} | {:>14} | {:>9}",
                bin_start,
                bin_start + bin_width - 1,
                bin.len(),
                algst[algst.len() / 2],
                if freest.is_empty() {
                    "all t/o".to_owned()
                } else {
                    format!("{:.4}", freest[freest.len() / 2])
                },
                timeouts,
            );
        }
        bin_start += bin_width;
    }
    let total_timeouts = rows.iter().filter(|r| r.freest.is_none()).count();
    let agreements = rows.iter().filter(|r| r.agreed).count();
    println!(
        "totals: {} FreeST timeouts / {} cases (paper: {} / 324); {} verdict agreements",
        total_timeouts,
        rows.len(),
        match kind {
            SuiteKind::Equivalent => 69,
            SuiteKind::NonEquivalent => 77,
        },
        agreements,
    );
    // Shape check mirrored in EXPERIMENTS.md: AlgST should not grow much
    // faster than linearly; report the ratio of per-node costs.
    let small: Vec<&Measurement> = rows.iter().filter(|r| r.nodes <= max_nodes / 4).collect();
    let large: Vec<&Measurement> = rows
        .iter()
        .filter(|r| r.nodes >= 3 * max_nodes / 4)
        .collect();
    if !small.is_empty() && !large.is_empty() {
        let per_node = |ms_: &Vec<&Measurement>| {
            ms_.iter()
                .map(|r| ms(r.algst) / r.nodes as f64)
                .sum::<f64>()
                / ms_.len() as f64
        };
        println!(
            "AlgST cost per node: small {:.6} ms, large {:.6} ms (linear ⇒ ratio ≈ 1)",
            per_node(&small),
            per_node(&large)
        );
    }

    if let Some(dir) = &args.csv_dir {
        std::fs::create_dir_all(dir).expect("create csv dir");
        let path = format!("{dir}/{csv_name}");
        let mut f = std::fs::File::create(&path).expect("create csv");
        writeln!(f, "case,nodes,algst_ms,freest_ms,freest_timeout,agreed").expect("write");
        for r in &rows {
            writeln!(
                f,
                "{},{},{:.6},{},{},{}",
                r.case_id,
                r.nodes,
                ms(r.algst),
                r.freest
                    .map(|d| format!("{:.6}", ms(d)))
                    .unwrap_or_default(),
                r.freest.is_none(),
                r.agreed,
            )
            .expect("write");
        }
        eprintln!("wrote {path}");
    }
    rows
}
