//! Regenerates the paper's **Figure 10**: execution time of the AlgST and
//! FreeST type-equivalence algorithms on generated equivalent (10a) and
//! non-equivalent (10b) test cases, as a function of AlgST AST node count.
//!
//! ```text
//! cargo run --release -p algst-bench --bin fig10 -- \
//!     [--suite equivalent|nonequivalent|both] [--cases 324] \
//!     [--timeout-ms 2000] [--seed 1] [--csv-dir target] \
//!     [--json BENCH_fig10.json] [--check-warm]
//! ```
//!
//! Prints a binned summary per suite (median times, timeout counts),
//! writes one CSV row per test case for plotting, and emits a
//! `BENCH_fig10.json` with every per-case AlgST vs. FreeST timing — the
//! record later performance PRs are measured against. Since the
//! hash-consed type store landed, each row carries **two** AlgST
//! timings: `algst_ms` (cold: fresh store, intern + normalize + compare)
//! and `algst_warm_ms` (steady state: memoized normal forms, a `TypeId`
//! comparison), and the JSON gains per-suite aggregate stats (median,
//! p95, least-squares ns-per-node slope) so the perf trajectory is one
//! number per PR. `--check-warm` exits non-zero unless
//! `warm ≤ cold + 500 ns` on every case — the CI smoke guard for the
//! memoization invariant. The 500 ns epsilon absorbs clock granularity:
//! on sub-microsecond cold cases the two measurements are within timer
//! noise of each other, and a strict `warm ≤ cold` intermittently
//! flaked. The observed margin (max over cases of `warm − cold`) is
//! reported per suite in the JSON as `warm_margin_ns`, so a drifting
//! warm path is visible long before it trips the gate.
//! (`--count` is accepted as an alias of `--cases`.)

use algst_bench::{measure_case, ms, suite_stats, Measurement, SuiteStats};
use algst_gen::suite::{build_suite, SuiteKind, PAPER_SUITE_SIZE};
use std::io::Write;
use std::time::Duration;

struct Args {
    suites: Vec<SuiteKind>,
    count: usize,
    timeout: Duration,
    seed: u64,
    csv_dir: Option<String>,
    json_path: Option<String>,
    check_warm: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        suites: vec![SuiteKind::Equivalent, SuiteKind::NonEquivalent],
        count: PAPER_SUITE_SIZE,
        timeout: Duration::from_millis(2000),
        seed: 1,
        csv_dir: Some("target".to_owned()),
        json_path: Some("BENCH_fig10.json".to_owned()),
        check_warm: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let value = |i: &mut usize| -> String {
            *i += 1;
            argv.get(*i)
                .unwrap_or_else(|| {
                    eprintln!("missing value for {}", argv[*i - 1]);
                    std::process::exit(2);
                })
                .clone()
        };
        match argv[i].as_str() {
            "--suite" => {
                args.suites = match value(&mut i).as_str() {
                    "equivalent" => vec![SuiteKind::Equivalent],
                    "nonequivalent" => vec![SuiteKind::NonEquivalent],
                    "both" => vec![SuiteKind::Equivalent, SuiteKind::NonEquivalent],
                    other => {
                        eprintln!("unknown suite {other}");
                        std::process::exit(2);
                    }
                }
            }
            "--cases" | "--count" => {
                args.count = value(&mut i).parse().expect("--cases takes a number")
            }
            "--timeout-ms" => {
                args.timeout =
                    Duration::from_millis(value(&mut i).parse().expect("--timeout-ms number"))
            }
            "--seed" => args.seed = value(&mut i).parse().expect("--seed takes a number"),
            "--csv-dir" => args.csv_dir = Some(value(&mut i)),
            "--no-csv" => args.csv_dir = None,
            "--json" => args.json_path = Some(value(&mut i)),
            "--no-json" => args.json_path = None,
            "--check-warm" => args.check_warm = true,
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    args
}

fn main() {
    let args = parse_args();
    let mut suites: Vec<(SuiteKind, Vec<Measurement>)> = Vec::new();
    for kind in &args.suites {
        suites.push((*kind, run_suite(*kind, &args)));
    }
    if let Some(path) = &args.json_path {
        write_json(path, &args, &suites);
    }
    if args.check_warm {
        let mut violations = 0usize;
        let mut max_margin_ns = i64::MIN;
        for (kind, rows) in &suites {
            for r in rows {
                let margin = warm_margin_ns(r);
                max_margin_ns = max_margin_ns.max(margin);
                if margin > WARM_EPSILON_NS {
                    violations += 1;
                    eprintln!(
                        "!! {kind:?} case {}: warm {} ms > cold {} ms + {} ns",
                        r.case_id,
                        ms(r.algst_warm),
                        ms(r.algst),
                        WARM_EPSILON_NS,
                    );
                }
            }
        }
        if violations > 0 {
            eprintln!(
                "--check-warm: {violations} case(s) violate warm <= cold + {WARM_EPSILON_NS} ns"
            );
            std::process::exit(1);
        }
        eprintln!(
            "--check-warm: ok (warm <= cold + {WARM_EPSILON_NS} ns on every case; \
             max observed margin {max_margin_ns} ns)"
        );
    }
}

/// Absolute slack for the warm-vs-cold gate: cold cases can be
/// sub-microsecond, where the two adaptive measurements differ by clock
/// granularity alone.
const WARM_EPSILON_NS: i64 = 500;

/// `warm − cold` for one case, in nanoseconds (positive = warm slower).
fn warm_margin_ns(r: &Measurement) -> i64 {
    r.algst_warm.as_nanos() as i64 - r.algst.as_nanos() as i64
}

/// Writes the whole run as one JSON document: run parameters, per-suite
/// aggregates, plus one row per case with all three timings. Hand-rolled
/// (every value is a number, bool or known-safe string), so no serde
/// dependency is needed.
fn write_json(path: &str, args: &Args, suites: &[(SuiteKind, Vec<Measurement>)]) {
    let mut f = std::fs::File::create(path).expect("create json");
    let total: usize = suites.iter().map(|(_, rows)| rows.len()).sum();
    writeln!(f, "{{").expect("write");
    writeln!(f, "  \"bench\": \"fig10\",").expect("write");
    writeln!(f, "  \"seed\": {},", args.seed).expect("write");
    writeln!(f, "  \"freest_timeout_ms\": {},", args.timeout.as_millis()).expect("write");
    writeln!(f, "  \"cases\": {total},").expect("write");
    writeln!(f, "  \"warm_epsilon_ns\": {WARM_EPSILON_NS},").expect("write");
    writeln!(f, "  \"aggregates\": [").expect("write");
    for (i, (kind, rows)) in suites.iter().enumerate() {
        let s = suite_stats(rows);
        let comma = if i + 1 < suites.len() { "," } else { "" };
        let freest_median = s
            .freest_median_ms
            .map(|v| format!("{v:.6}"))
            .unwrap_or_else(|| "null".to_owned());
        // Worst warm-vs-cold margin of the suite (negative = warm always
        // faster): the number the --check-warm epsilon is judged against.
        let warm_margin = rows.iter().map(warm_margin_ns).max().unwrap_or(0);
        writeln!(
            f,
            "    {{\"suite\": \"{}\", \"cases\": {}, \
             \"algst_median_ms\": {:.6}, \"algst_p95_ms\": {:.6}, \
             \"algst_warm_median_ms\": {:.6}, \"algst_warm_p95_ms\": {:.6}, \
             \"warm_margin_ns\": {warm_margin}, \
             \"algst_ns_per_node\": {:.3}, \
             \"freest_median_ms\": {freest_median}, \"freest_timeouts\": {}, \
             \"agreements\": {}}}{comma}",
            suite_name(*kind),
            s.cases,
            s.algst_median_ms,
            s.algst_p95_ms,
            s.warm_median_ms,
            s.warm_p95_ms,
            s.algst_ns_per_node,
            s.freest_timeouts,
            s.agreements,
        )
        .expect("write");
    }
    writeln!(f, "  ],").expect("write");
    writeln!(f, "  \"rows\": [").expect("write");
    let mut first = true;
    for (kind, rows) in suites {
        for r in rows {
            if !first {
                writeln!(f, ",").expect("write");
            }
            first = false;
            let freest_ms = match r.freest {
                Some(d) => format!("{:.6}", ms(d)),
                None => "null".to_owned(),
            };
            write!(
                f,
                "    {{\"suite\": \"{}\", \"case\": {}, \"nodes\": {}, \
                 \"algst_ms\": {:.6}, \"algst_warm_ms\": {:.6}, \
                 \"freest_ms\": {freest_ms}, \
                 \"freest_timeout\": {}, \"agreed\": {}}}",
                suite_name(*kind),
                r.case_id,
                r.nodes,
                ms(r.algst),
                ms(r.algst_warm),
                r.freest.is_none(),
                r.agreed,
            )
            .expect("write");
        }
    }
    writeln!(f, "\n  ]").expect("write");
    writeln!(f, "}}").expect("write");
    eprintln!("wrote {path}");
}

fn suite_name(kind: SuiteKind) -> &'static str {
    match kind {
        SuiteKind::Equivalent => "equivalent",
        SuiteKind::NonEquivalent => "nonequivalent",
    }
}

fn run_suite(kind: SuiteKind, args: &Args) -> Vec<Measurement> {
    let (title, figure, csv_name) = match kind {
        SuiteKind::Equivalent => ("equivalent test cases", "Figure 10(a)", "fig10a.csv"),
        SuiteKind::NonEquivalent => ("non-equivalent test cases", "Figure 10(b)", "fig10b.csv"),
    };
    eprintln!(
        "building {} suite: {} cases (seed {})…",
        title, args.count, args.seed
    );
    let mut suite = build_suite(kind, args.count, args.seed);
    let ids = suite.ids.clone();

    let mut rows: Vec<Measurement> = Vec::with_capacity(suite.cases.len());
    for (i, case) in suite.cases.iter().enumerate() {
        let m = measure_case(i, case, ids[i], &mut suite.session, args.timeout);
        if !m.agreed {
            eprintln!("!! case {i}: verdict disagreement (see EXPERIMENTS.md)");
        }
        rows.push(m);
        if (i + 1) % 50 == 0 {
            eprintln!("  …{}/{}", i + 1, suite.cases.len());
        }
    }

    println!("\n== {figure}: {title} ==");
    println!(
        "{} cases; per-query FreeST timeout {} ms (paper: 120000 ms)",
        rows.len(),
        args.timeout.as_millis()
    );
    println!(
        "{:>12} | {:>6} | {:>14} | {:>14} | {:>14} | {:>9}",
        "nodes", "cases", "AlgST med (ms)", "warm med (ms)", "FreeST med (ms)", "timeouts"
    );
    println!("{}", "-".repeat(86));
    let max_nodes = rows.iter().map(|r| r.nodes).max().unwrap_or(1);
    let bin_width = (max_nodes / 8).max(1);
    let mut bin_start = 0;
    while bin_start <= max_nodes {
        let bin: Vec<&Measurement> = rows
            .iter()
            .filter(|r| r.nodes >= bin_start && r.nodes < bin_start + bin_width)
            .collect();
        if !bin.is_empty() {
            let mut algst: Vec<f64> = bin.iter().map(|r| ms(r.algst)).collect();
            algst.sort_by(|a, b| a.total_cmp(b));
            let mut warm: Vec<f64> = bin.iter().map(|r| ms(r.algst_warm)).collect();
            warm.sort_by(|a, b| a.total_cmp(b));
            let mut freest: Vec<f64> = bin.iter().filter_map(|r| r.freest.map(ms)).collect();
            freest.sort_by(|a, b| a.total_cmp(b));
            let timeouts = bin.iter().filter(|r| r.freest.is_none()).count();
            println!(
                "{:>5}-{:<6} | {:>6} | {:>14.4} | {:>14.6} | {:>14} | {:>9}",
                bin_start,
                bin_start + bin_width - 1,
                bin.len(),
                algst[algst.len() / 2],
                warm[warm.len() / 2],
                if freest.is_empty() {
                    "all t/o".to_owned()
                } else {
                    format!("{:.4}", freest[freest.len() / 2])
                },
                timeouts,
            );
        }
        bin_start += bin_width;
    }
    let stats: SuiteStats = suite_stats(&rows);
    println!(
        "totals: {} FreeST timeouts / {} cases (paper: {} / 324); {} verdict agreements",
        stats.freest_timeouts,
        rows.len(),
        match kind {
            SuiteKind::Equivalent => 69,
            SuiteKind::NonEquivalent => 77,
        },
        stats.agreements,
    );
    println!(
        "aggregates: AlgST cold median {:.4} ms (p95 {:.4}), warm median {:.6} ms (p95 {:.6}), \
         slope {:.1} ns/node",
        stats.algst_median_ms,
        stats.algst_p95_ms,
        stats.warm_median_ms,
        stats.warm_p95_ms,
        stats.algst_ns_per_node,
    );
    // Shape check mirrored in EXPERIMENTS.md: AlgST should not grow much
    // faster than linearly; report the ratio of per-node costs.
    let small: Vec<&Measurement> = rows.iter().filter(|r| r.nodes <= max_nodes / 4).collect();
    let large: Vec<&Measurement> = rows
        .iter()
        .filter(|r| r.nodes >= 3 * max_nodes / 4)
        .collect();
    if !small.is_empty() && !large.is_empty() {
        let per_node = |ms_: &Vec<&Measurement>| {
            ms_.iter()
                .map(|r| ms(r.algst) / r.nodes as f64)
                .sum::<f64>()
                / ms_.len() as f64
        };
        println!(
            "AlgST cost per node: small {:.6} ms, large {:.6} ms (linear ⇒ ratio ≈ 1)",
            per_node(&small),
            per_node(&large)
        );
    }

    if let Some(dir) = &args.csv_dir {
        std::fs::create_dir_all(dir).expect("create csv dir");
        let path = format!("{dir}/{csv_name}");
        let mut f = std::fs::File::create(&path).expect("create csv");
        writeln!(
            f,
            "case,nodes,algst_ms,algst_warm_ms,freest_ms,freest_timeout,agreed"
        )
        .expect("write");
        for r in &rows {
            writeln!(
                f,
                "{},{},{:.6},{:.6},{},{},{}",
                r.case_id,
                r.nodes,
                ms(r.algst),
                ms(r.algst_warm),
                r.freest
                    .map(|d| format!("{:.6}", ms(d)))
                    .unwrap_or_default(),
                r.freest.is_none(),
                r.agreed,
            )
            .expect("write");
        }
        eprintln!("wrote {path}");
    }
    rows
}
