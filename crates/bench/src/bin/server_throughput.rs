//! Throughput/latency benchmark for `algst-server`: the gen-suite
//! workload pushed through the batch engine at several worker counts.
//!
//! ```text
//! cargo run --release -p algst-bench --bin server_throughput -- \
//!     [--requests 200000] [--cases 60] [--seed 1] [--batch 256] \
//!     [--workers 1,4,8] [--json BENCH_server.json]
//! ```
//!
//! For each worker count the engine starts **cold** (fresh
//! `SharedStore`), replays the same reproducible request stream
//! (`algst_gen::workload`: every suite pair once, then uniform re-sampling
//! with random orientation — the warm-dominated shape of real traffic),
//! checks every verdict against the generator's ground truth, and
//! reports requests/second plus per-request sojourn latency percentiles
//! (p50/p95/p99, measured submit→response per batch).
//!
//! Two baselines anchor the numbers:
//! * `cold_baseline` — a single thread paying the **full cold cost** per
//!   request (fresh store: intern + normalize + compare), i.e. what
//!   each thread paid before the store was lifted to a shared one;
//! * the 1-worker config — the same engine, serialized.
//!
//! The JSON records `host_cpus`; the worker-scaling ratio
//! (`speedup_8w_vs_1w`) is only meaningful when the host actually has
//! cores to scale onto, while `speedup_8w_vs_cold_single_thread` shows
//! what sharing warm state buys regardless.

use algst_core::store::TypeStore;
use algst_core::Session;
use algst_gen::suite::{build_suite, SuiteKind};
use algst_gen::workload::{equiv_workload, Workload};
use algst_server::{Engine, Op, Request, Response};
use crossbeam::channel::bounded;
use std::io::Write as _;
use std::time::{Duration, Instant};

struct Args {
    requests: usize,
    cases: usize,
    seed: u64,
    batch: usize,
    workers: Vec<usize>,
    json_path: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        requests: 200_000,
        cases: 60,
        seed: 1,
        batch: 256,
        workers: vec![1, 4, 8],
        json_path: Some("BENCH_server.json".to_owned()),
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let value = |i: &mut usize| -> String {
            *i += 1;
            argv.get(*i)
                .unwrap_or_else(|| {
                    eprintln!("missing value for {}", argv[*i - 1]);
                    std::process::exit(2);
                })
                .clone()
        };
        match argv[i].as_str() {
            "--requests" => args.requests = value(&mut i).parse().expect("--requests number"),
            "--cases" => args.cases = value(&mut i).parse().expect("--cases number"),
            "--seed" => args.seed = value(&mut i).parse().expect("--seed number"),
            "--batch" => args.batch = value(&mut i).parse().expect("--batch number"),
            "--workers" => {
                args.workers = value(&mut i)
                    .split(',')
                    .map(|w| w.parse().expect("--workers comma-separated numbers"))
                    .collect()
            }
            "--json" => args.json_path = Some(value(&mut i)),
            "--no-json" => args.json_path = None,
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    args
}

/// Results of one engine configuration.
struct ConfigRun {
    workers: usize,
    elapsed: Duration,
    req_per_s: f64,
    p50_us: f64,
    p95_us: f64,
    p99_us: f64,
    mismatches: u64,
    warm_hits: u64,
    nodes: u64,
    nrm_hit_rate: f64,
    equiv_hit_rate: f64,
}

fn main() {
    let args = parse_args();
    eprintln!(
        "building workload: 2×{} cases, {} requests (seed {})…",
        args.cases, args.requests, args.seed
    );
    let eq = build_suite(SuiteKind::Equivalent, args.cases, args.seed);
    let ne = build_suite(SuiteKind::NonEquivalent, args.cases, args.seed + 1);
    let workload = equiv_workload(&[&eq, &ne], args.requests, args.seed);

    // Pre-render every request to protocol strings once: all configs
    // replay exactly the same byte stream.
    let rendered: Vec<(String, String, bool)> = (0..workload.len())
        .map(|i| {
            let (lhs, rhs, expected) = workload.request(i);
            (lhs.to_string(), rhs.to_string(), expected)
        })
        .collect();

    let host_cpus = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);

    let cold = cold_baseline(&workload, args.requests.min(2_000));
    eprintln!(
        "cold single-thread baseline: {:.0} req/s ({} requests sampled)",
        cold.1, cold.0
    );

    let mut runs: Vec<ConfigRun> = Vec::new();
    for &workers in &args.workers {
        let run = run_config(workers, args.batch, &rendered);
        eprintln!(
            "workers {:>2}: {:>10.0} req/s   p50 {:>8.2} µs   p95 {:>8.2} µs   p99 {:>8.2} µs   \
             warm {:>5.1}%   mismatches {}",
            run.workers,
            run.req_per_s,
            run.p50_us,
            run.p95_us,
            run.p99_us,
            100.0 * run.warm_hits as f64 / rendered.len() as f64,
            run.mismatches,
        );
        runs.push(run);
    }

    let mismatches: u64 = runs.iter().map(|r| r.mismatches).sum();
    if let Some(path) = &args.json_path {
        write_json(path, &args, host_cpus, cold, &runs);
    }
    if mismatches > 0 {
        eprintln!("!! {mismatches} verdict mismatches against ground truth");
        std::process::exit(1);
    }
    eprintln!("all verdicts identical to the ground truth");
}

/// One thread, fresh store per request: full cold cost per query.
/// Returns (requests measured, req/s).
fn cold_baseline(workload: &Workload, sample: usize) -> (usize, f64) {
    let sample = sample.max(1).min(workload.len());
    let start = Instant::now();
    for i in 0..sample {
        let (lhs, rhs, expected) = workload.request(i);
        let mut store = TypeStore::new();
        let a = store.intern(lhs);
        let b = store.intern(rhs);
        assert_eq!(
            store.equivalent_ids(a, b),
            expected,
            "cold baseline verdict"
        );
    }
    let elapsed = start.elapsed();
    (sample, sample as f64 / elapsed.as_secs_f64())
}

fn run_config(workers: usize, batch_size: usize, rendered: &[(String, String, bool)]) -> ConfigRun {
    // Every config gets a fresh injected session: cold starts are
    // reproducible and configs cannot warm each other.
    let engine = Engine::with_session(workers, Session::new());
    // Expected verdict per request id (ids are 1-based arrival order).
    let expected: Vec<bool> = rendered.iter().map(|(_, _, e)| *e).collect();

    let (reply_tx, reply_rx) = bounded::<Vec<Response>>(workers.max(1) * 4);
    let start = Instant::now();

    // Collector: records per-batch completion instants and checks
    // verdicts; joined after all batches are submitted.
    let collector = std::thread::spawn({
        let expected = expected.clone();
        move || {
            let mut completions: Vec<(u64, Instant, usize)> = Vec::new();
            let mut mismatches = 0u64;
            let mut warm_hits = 0u64;
            while let Ok(responses) = reply_rx.recv() {
                let now = Instant::now();
                let first_id = responses.first().map(Response::id).unwrap_or(0);
                for r in &responses {
                    match r {
                        Response::Equiv {
                            id, verdict, warm, ..
                        } => {
                            if *verdict != expected[(*id - 1) as usize] {
                                mismatches += 1;
                            }
                            if *warm {
                                warm_hits += 1;
                            }
                        }
                        other => panic!("unexpected response {other:?}"),
                    }
                }
                completions.push((first_id, now, responses.len()));
            }
            (completions, mismatches, warm_hits)
        }
    });

    // Submitter: contiguous ids per batch, one submit-instant per batch.
    let mut submit_times: Vec<(u64, Instant)> = Vec::new();
    let mut next_id = 1u64;
    for chunk in rendered.chunks(batch_size) {
        let first_id = next_id;
        let items: Vec<Request> = chunk
            .iter()
            .map(|(lhs, rhs, _)| {
                let req = Request {
                    id: next_id,
                    op: Op::Equiv {
                        lhs: lhs.clone(),
                        rhs: rhs.clone(),
                    },
                };
                next_id += 1;
                req
            })
            .collect();
        submit_times.push((first_id, Instant::now()));
        engine.submit(items, reply_tx.clone());
    }
    drop(reply_tx);
    let (completions, mismatches, warm_hits) = collector.join().expect("collector");
    let end = completions
        .iter()
        .map(|&(_, t, _)| t)
        .max()
        .unwrap_or(start);
    let elapsed = end.duration_since(start);

    // Per-request sojourn latency: batch completion − batch submission,
    // attributed to each request of the batch.
    let mut latencies_us: Vec<f64> = Vec::with_capacity(rendered.len());
    let submit_by_id: std::collections::HashMap<u64, Instant> =
        submit_times.iter().copied().collect();
    for (first_id, done, len) in &completions {
        let submitted = submit_by_id[first_id];
        let us = done.duration_since(submitted).as_secs_f64() * 1e6;
        latencies_us.extend(std::iter::repeat(us).take(*len));
    }
    latencies_us.sort_by(|a, b| a.total_cmp(b));
    let pct = |p: f64| -> f64 {
        if latencies_us.is_empty() {
            return 0.0;
        }
        latencies_us[((latencies_us.len() - 1) as f64 * p).round() as usize]
    };

    let snapshot = engine.snapshot();
    ConfigRun {
        workers,
        elapsed,
        req_per_s: rendered.len() as f64 / elapsed.as_secs_f64(),
        p50_us: pct(0.50),
        p95_us: pct(0.95),
        p99_us: pct(0.99),
        mismatches,
        warm_hits,
        nodes: snapshot.nodes,
        nrm_hit_rate: snapshot.nrm_hit_rate(),
        equiv_hit_rate: snapshot.equiv_hit_rate(),
    }
}

fn write_json(path: &str, args: &Args, host_cpus: usize, cold: (usize, f64), runs: &[ConfigRun]) {
    let mut f = std::fs::File::create(path).expect("create json");
    writeln!(f, "{{").expect("write");
    writeln!(f, "  \"bench\": \"server_throughput\",").expect("write");
    writeln!(f, "  \"requests\": {},", args.requests).expect("write");
    writeln!(f, "  \"cases_per_suite\": {},", args.cases).expect("write");
    writeln!(f, "  \"batch\": {},", args.batch).expect("write");
    writeln!(f, "  \"seed\": {},", args.seed).expect("write");
    writeln!(f, "  \"host_cpus\": {host_cpus},").expect("write");
    writeln!(
        f,
        "  \"cold_baseline\": {{\"requests\": {}, \"req_per_s\": {:.1}}},",
        cold.0, cold.1
    )
    .expect("write");
    writeln!(f, "  \"configs\": [").expect("write");
    for (i, r) in runs.iter().enumerate() {
        let comma = if i + 1 < runs.len() { "," } else { "" };
        writeln!(
            f,
            "    {{\"workers\": {}, \"elapsed_ms\": {:.3}, \"req_per_s\": {:.1}, \
             \"p50_us\": {:.3}, \"p95_us\": {:.3}, \"p99_us\": {:.3}, \
             \"verdict_mismatches\": {}, \"warm_hits\": {}, \"nodes\": {}, \
             \"nrm_hit_rate\": {:.4}, \"equiv_hit_rate\": {:.4}}}{comma}",
            r.workers,
            r.elapsed.as_secs_f64() * 1e3,
            r.req_per_s,
            r.p50_us,
            r.p95_us,
            r.p99_us,
            r.mismatches,
            r.warm_hits,
            r.nodes,
            r.nrm_hit_rate,
            r.equiv_hit_rate,
        )
        .expect("write");
    }
    writeln!(f, "  ],").expect("write");
    let by_workers = |n: usize| runs.iter().find(|r| r.workers == n);
    let best = runs
        .iter()
        .max_by(|a, b| a.req_per_s.total_cmp(&b.req_per_s));
    let one = by_workers(1).or(runs.first());
    if let (Some(best), Some(one)) = (best, one) {
        writeln!(
            f,
            "  \"speedup_best_vs_1w\": {:.2},",
            best.req_per_s / one.req_per_s
        )
        .expect("write");
        if let Some(eight) = by_workers(8) {
            writeln!(
                f,
                "  \"speedup_8w_vs_1w\": {:.2},",
                eight.req_per_s / one.req_per_s
            )
            .expect("write");
            writeln!(
                f,
                "  \"speedup_8w_vs_cold_single_thread\": {:.2},",
                eight.req_per_s / cold.1
            )
            .expect("write");
        }
    }
    let mismatches: u64 = runs.iter().map(|r| r.mismatches).sum();
    writeln!(f, "  \"verdict_mismatches_total\": {mismatches}").expect("write");
    writeln!(f, "}}").expect("write");
    eprintln!("wrote {path}");
}
